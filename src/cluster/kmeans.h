#ifndef GEA_CLUSTER_KMEANS_H_
#define GEA_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace gea::cluster {

/// Parameters for Lloyd's k-means with k-means++ seeding — one of the
/// "top-down" methods the thesis surveys (Section 2.3.1, [BFR98]) and a
/// baseline GEA can host as an alternative mine() operator.
struct KMeansParams {
  int k = 2;
  int max_iterations = 100;
  uint64_t seed = 1;
};

struct KMeansResult {
  /// points.size() entries in [0, k).
  std::vector<int> assignments;
  /// k centroids.
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances from points to their centroids.
  double inertia = 0.0;
  int iterations = 0;
};

/// Runs k-means on `points` (all the same dimension). Fails when k < 1 or
/// k > points.size().
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansParams& params);

}  // namespace gea::cluster

#endif  // GEA_CLUSTER_KMEANS_H_
