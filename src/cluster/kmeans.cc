#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "cluster/distance.h"
#include "common/rng.h"

namespace gea::cluster {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansParams& params) {
  if (params.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (points.empty() || static_cast<size_t>(params.k) > points.size()) {
    return Status::InvalidArgument(
        "k must not exceed the number of points");
  }
  const size_t n = points.size();
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points must share one dimension");
    }
  }

  Rng rng(params.seed);
  KMeansResult result;

  // k-means++ seeding.
  result.centroids.push_back(
      points[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> min_sq(n, std::numeric_limits<double>::max());
  while (result.centroids.size() < static_cast<size_t>(params.k)) {
    for (size_t i = 0; i < n; ++i) {
      double d = SquaredDistance(points[i], result.centroids.back());
      if (d < min_sq[i]) min_sq[i] = d;
    }
    double total = 0.0;
    for (double d : min_sq) total += d;
    size_t chosen = 0;
    if (total > 0.0) {
      double draw = rng.UniformDouble(0.0, total);
      double cumulative = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cumulative += min_sq[i];
        if (draw < cumulative) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignments.assign(n, -1);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < params.k; ++c) {
        double d =
            SquaredDistance(points[i], result.centroids[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(params.k), std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(static_cast<size_t>(params.k), 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(result.assignments[i]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (int c = 0; c < params.k; ++c) {
      size_t cc = static_cast<size_t>(c);
      if (counts[cc] == 0) continue;  // empty cluster keeps its centroid
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[cc][d] =
            sums[cc][d] / static_cast<double>(counts[cc]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        points[i],
        result.centroids[static_cast<size_t>(result.assignments[i])]);
  }
  return result;
}

}  // namespace gea::cluster
