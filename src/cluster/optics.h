#ifndef GEA_CLUSTER_OPTICS_H_
#define GEA_CLUSTER_OPTICS_H_

#include <vector>

#include "cluster/distance.h"
#include "common/result.h"

namespace gea::cluster {

/// Parameters of OPTICS (Ankerst et al., SIGMOD 1999) — the hierarchical
/// density-based algorithm Ng, Sander and Sleumer applied to the SAGE data
/// (Section 2.3.3, [NSS01]).
struct OpticsParams {
  /// Generating distance: neighborhoods are balls of this radius.
  double epsilon = 1.0;
  /// Minimum neighborhood size for a core point.
  int min_pts = 3;
  DistanceKind distance = DistanceKind::kPearson;
};

/// OPTICS output: the cluster ordering with per-point reachability
/// distances (infinite reachability is represented by `kUnreachable`).
struct OpticsResult {
  static constexpr double kUnreachable = -1.0;

  /// Point indices in OPTICS visiting order.
  std::vector<size_t> ordering;
  /// reachability[i] is the reachability distance of point i
  /// (kUnreachable where undefined).
  std::vector<double> reachability;
  /// core_distance[i] (kUnreachable where undefined).
  std::vector<double> core_distance;

  /// DBSCAN-equivalent flat clustering at threshold `eps_prime` <=
  /// epsilon: walks the ordering, starting a new cluster whenever
  /// reachability exceeds the threshold at a core point. Noise points get
  /// label -1.
  std::vector<int> ExtractClusters(double eps_prime) const;
};

/// Runs OPTICS over `points`.
Result<OpticsResult> Optics(const std::vector<std::vector<double>>& points,
                            const OpticsParams& params);

}  // namespace gea::cluster

#endif  // GEA_CLUSTER_OPTICS_H_
