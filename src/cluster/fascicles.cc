#include "cluster/fascicles.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::cluster {

namespace {

/// Candidate extensions scored (CompactCountWith / Extended calls) across
/// both mining algorithms.
obs::Counter& CandidatesEvaluatedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "gea.fascicles.candidates_evaluated");
  return counter;
}

/// Candidates dropped by subsumption (prune / KeepMaximal).
obs::Counter& CandidatesPrunedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "gea.fascicles.candidates_pruned");
  return counter;
}

/// Working state of one candidate row set: members plus per-column value
/// ranges, so extending by one row is O(cols).
struct Candidate {
  std::vector<size_t> members;      // sorted
  std::vector<double> col_min;
  std::vector<double> col_max;
  size_t compact_count = 0;

  static Candidate Singleton(const FascicleMiner& miner, size_t row) {
    Candidate c;
    c.members = {row};
    c.col_min.resize(miner.cols());
    c.col_max.resize(miner.cols());
    for (size_t col = 0; col < miner.cols(); ++col) {
      double v = miner.At(row, col);
      c.col_min[col] = v;
      c.col_max[col] = v;
    }
    c.compact_count = miner.cols();
    return c;
  }

  /// Candidate state after adding `row`; `tol` recomputes compactness.
  Candidate Extended(const FascicleMiner& miner, size_t row,
                     const std::vector<double>& tol) const {
    Candidate c;
    c.members = members;
    c.members.insert(
        std::lower_bound(c.members.begin(), c.members.end(), row), row);
    c.col_min.resize(col_min.size());
    c.col_max.resize(col_max.size());
    c.compact_count = 0;
    for (size_t col = 0; col < col_min.size(); ++col) {
      double v = miner.At(row, col);
      c.col_min[col] = std::min(col_min[col], v);
      c.col_max[col] = std::max(col_max[col], v);
      if (c.col_max[col] - c.col_min[col] <= tol[col]) ++c.compact_count;
    }
    return c;
  }

  /// Compact count if `row` were added, without materializing the state.
  size_t CompactCountWith(const FascicleMiner& miner, size_t row,
                          const std::vector<double>& tol) const {
    size_t count = 0;
    for (size_t col = 0; col < col_min.size(); ++col) {
      double v = miner.At(row, col);
      double lo = std::min(col_min[col], v);
      double hi = std::max(col_max[col], v);
      if (hi - lo <= tol[col]) ++count;
    }
    return count;
  }

  /// Adds `row` to this candidate in place (no allocation beyond the
  /// member insertion).
  void AddRowInPlace(const FascicleMiner& miner, size_t row,
                     const std::vector<double>& tol) {
    members.insert(
        std::lower_bound(members.begin(), members.end(), row), row);
    compact_count = 0;
    for (size_t col = 0; col < col_min.size(); ++col) {
      double v = miner.At(row, col);
      col_min[col] = std::min(col_min[col], v);
      col_max[col] = std::max(col_max[col], v);
      if (col_max[col] - col_min[col] <= tol[col]) ++compact_count;
    }
  }

  Fascicle ToFascicle(const std::vector<double>& tol) const {
    Fascicle f;
    f.members = members;
    for (size_t col = 0; col < col_min.size(); ++col) {
      if (col_max[col] - col_min[col] <= tol[col]) {
        f.compact_columns.push_back(col);
        f.compact_ranges.emplace_back(col_min[col], col_max[col]);
      }
    }
    return f;
  }
};

Status ValidateParams(const FascicleMiner& miner,
                      const FascicleParams& params) {
  if (params.tolerances.size() != miner.cols()) {
    return Status::InvalidArgument(
        "tolerance vector has " + std::to_string(params.tolerances.size()) +
        " entries, matrix has " + std::to_string(miner.cols()) + " columns");
  }
  if (params.min_compact_tags > miner.cols()) {
    return Status::InvalidArgument(
        "min_compact_tags exceeds the number of columns");
  }
  if (params.min_size == 0) {
    return Status::InvalidArgument("min_size must be >= 1");
  }
  if (params.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  for (double t : params.tolerances) {
    if (t < 0.0) {
      return Status::InvalidArgument("tolerances must be non-negative");
    }
  }
  return Status::OK();
}

/// Removes fascicles whose member set is a subset of another's; sorts the
/// survivors largest first.
std::vector<Fascicle> KeepMaximal(std::vector<Fascicle> fascicles) {
  std::sort(fascicles.begin(), fascicles.end(),
            [](const Fascicle& a, const Fascicle& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              if (a.compact_columns.size() != b.compact_columns.size()) {
                return a.compact_columns.size() > b.compact_columns.size();
              }
              return a.members < b.members;
            });
  std::vector<Fascicle> out;
  uint64_t pruned = 0;
  for (Fascicle& f : fascicles) {
    bool subsumed = false;
    for (const Fascicle& kept : out) {
      if (std::includes(kept.members.begin(), kept.members.end(),
                        f.members.begin(), f.members.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) {
      out.push_back(std::move(f));
    } else {
      ++pruned;
    }
  }
  CandidatesPrunedCounter().Add(pruned);
  return out;
}

}  // namespace

std::string Fascicle::ToString() const {
  std::string out = "fascicle{members=[";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(members[i]);
  }
  out += "], compact=" + std::to_string(compact_columns.size()) + "}";
  return out;
}

size_t FascicleMiner::CountCompactColumns(
    const std::vector<size_t>& members,
    const std::vector<double>& tolerances) const {
  if (members.empty()) return 0;
  size_t count = 0;
  for (size_t col = 0; col < cols_; ++col) {
    double lo = At(members[0], col);
    double hi = lo;
    for (size_t m = 1; m < members.size(); ++m) {
      double v = At(members[m], col);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo <= tolerances[col]) ++count;
  }
  return count;
}

bool FascicleMiner::Verify(const Fascicle& fascicle,
                           const std::vector<double>& tolerances) const {
  if (fascicle.members.empty()) return false;
  if (fascicle.compact_columns.size() != fascicle.compact_ranges.size()) {
    return false;
  }
  size_t listed = 0;
  for (size_t col = 0; col < cols_; ++col) {
    double lo = At(fascicle.members[0], col);
    double hi = lo;
    for (size_t m = 1; m < fascicle.members.size(); ++m) {
      double v = At(fascicle.members[m], col);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    bool compact = hi - lo <= tolerances[col];
    bool is_listed =
        listed < fascicle.compact_columns.size() &&
        fascicle.compact_columns[listed] == col;
    if (compact != is_listed) return false;
    if (is_listed) {
      if (fascicle.compact_ranges[listed].first != lo ||
          fascicle.compact_ranges[listed].second != hi) {
        return false;
      }
      ++listed;
    }
  }
  return listed == fascicle.compact_columns.size();
}

Result<std::vector<Fascicle>> FascicleMiner::Mine(
    const FascicleParams& params) const {
  GEA_RETURN_IF_ERROR(ValidateParams(*this, params));
  switch (params.algorithm) {
    case FascicleParams::Algorithm::kExact:
      return MineExact(params);
    case FascicleParams::Algorithm::kGreedy:
      return MineGreedy(params);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<std::vector<Fascicle>> FascicleMiner::MineExact(
    const FascicleParams& params) const {
  obs::TraceSpan span("mine.exact");
  const std::vector<double>& tol = params.tolerances;

  // Level-wise lattice walk over row sets. Compactness is anti-monotone in
  // the member set (adding a row can only widen column ranges), so every
  // qualifying L+1-set extends a qualifying L-set; extending only by rows
  // greater than the current maximum enumerates each set exactly once.
  std::vector<Candidate> frontier;
  for (size_t row = 0; row < rows_; ++row) {
    frontier.push_back(Candidate::Singleton(*this, row));
  }

  std::vector<Candidate> qualifying;  // all sets with >= k compact columns
  const Status overflow = Status::FailedPrecondition(
      "exact fascicle search exceeded max_candidates (" +
      std::to_string(params.max_candidates) +
      "); use the greedy algorithm or tighten tolerances");
  while (!frontier.empty()) {
    // Each frontier candidate's extensions are independent, so they are
    // evaluated in parallel into per-candidate buckets and merged in
    // candidate order — the merge replays the serial loop's accounting,
    // so the candidate list (and the max_candidates overflow decision)
    // is identical at any thread count. `generated` lets chunks stop
    // early once overflow is certain: it only exceeds max_candidates if
    // the full extension count would, and extensions alone overflowing
    // implies the serial walk would also have tripped the guard.
    std::vector<std::vector<Candidate>> extensions(frontier.size());
    std::atomic<size_t> generated{0};
    ParallelFor(0, frontier.size(), 1, [&](size_t begin, size_t end) {
      uint64_t evaluated = 0;
      for (size_t i = begin; i < end; ++i) {
        const Candidate& c = frontier[i];
        for (size_t row = c.members.back() + 1; row < rows_; ++row) {
          if (generated.load(std::memory_order_relaxed) >
              params.max_candidates) {
            CandidatesEvaluatedCounter().Add(evaluated);
            return;
          }
          Candidate e = c.Extended(*this, row, tol);
          ++evaluated;
          if (e.compact_count >= params.min_compact_tags) {
            extensions[i].push_back(std::move(e));
            generated.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      CandidatesEvaluatedCounter().Add(evaluated);
    });
    if (generated.load(std::memory_order_relaxed) > params.max_candidates) {
      return overflow;
    }
    std::vector<Candidate> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (Candidate& e : extensions[i]) {
        next.push_back(std::move(e));
        if (next.size() + qualifying.size() > params.max_candidates) {
          return overflow;
        }
      }
      if (frontier[i].members.size() >= params.min_size) {
        qualifying.push_back(std::move(frontier[i]));
      }
    }
    frontier = std::move(next);
  }

  // A qualifying set is maximal when no single-row extension qualifies
  // (including extensions by rows below its minimum, which the
  // enumeration order skipped).
  std::vector<char> is_maximal(qualifying.size(), 0);
  ParallelFor(0, qualifying.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Candidate& c = qualifying[i];
      bool maximal = true;
      for (size_t row = 0; row < rows_ && maximal; ++row) {
        if (std::binary_search(c.members.begin(), c.members.end(), row)) {
          continue;
        }
        if (c.CompactCountWith(*this, row, tol) >= params.min_compact_tags) {
          maximal = false;
        }
      }
      is_maximal[i] = maximal ? 1 : 0;
    }
  });
  std::vector<Fascicle> maximal;
  for (size_t i = 0; i < qualifying.size(); ++i) {
    if (is_maximal[i]) maximal.push_back(qualifying[i].ToFascicle(tol));
  }
  return KeepMaximal(std::move(maximal));
}

Result<std::vector<Fascicle>> FascicleMiner::MineGreedy(
    const FascicleParams& params) const {
  obs::TraceSpan span("mine.greedy");
  const std::vector<double>& tol = params.tolerances;

  // Phase 1 (batched candidate growth): every row seeds one candidate,
  // and each arriving row is absorbed *in place* by every live candidate
  // it keeps at k compact columns. This makes one pass linear in the
  // number of rows per candidate and keeps the live set at most one
  // candidate per seed row. At batch boundaries candidates subsumed by a
  // larger candidate are pruned, and the live set is capped.
  std::vector<Candidate> live;

  auto prune = [&]() {
    std::sort(live.begin(), live.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.members.size() != b.members.size()) {
                  return a.members.size() > b.members.size();
                }
                return a.compact_count > b.compact_count;
              });
    std::vector<Candidate> kept;
    for (Candidate& c : live) {
      bool subsumed = false;
      for (const Candidate& k : kept) {
        if (std::includes(k.members.begin(), k.members.end(),
                          c.members.begin(), c.members.end())) {
          subsumed = true;
          break;
        }
      }
      if (!subsumed) kept.push_back(std::move(c));
      if (kept.size() >= params.max_candidates) break;
    }
    CandidatesPrunedCounter().Add(live.size() - kept.size());
    live = std::move(kept);
  };

  // The serial formulation interleaves "absorb row into every candidate"
  // with "seed a singleton at the row", but a candidate's evolution over a
  // batch depends only on its own state and the row order — candidates
  // never interact until prune(). So the batch is restructured for
  // parallelism: all of the batch's singletons are seeded up front, then
  // every candidate (pre-existing ones from the batch start, seeds from
  // the row after their seed row) replays the batch's rows in order. The
  // per-candidate work partitions across the pool and the resulting live
  // set is element-for-element identical to the serial walk.
  size_t row = 0;
  while (row < rows_) {
    const size_t batch_begin = row;
    const size_t batch_end = std::min(rows_, row + params.batch_size);
    const size_t old_live = live.size();
    for (size_t r = batch_begin; r < batch_end; ++r) {
      live.push_back(Candidate::Singleton(*this, r));
    }
    ParallelFor(0, live.size(), 1, [&](size_t begin, size_t end) {
      uint64_t evaluated = 0;
      for (size_t i = begin; i < end; ++i) {
        Candidate& c = live[i];
        const size_t first_row = i < old_live
                                     ? batch_begin
                                     : batch_begin + (i - old_live) + 1;
        for (size_t r = first_row; r < batch_end; ++r) {
          if (std::binary_search(c.members.begin(), c.members.end(), r)) {
            continue;
          }
          ++evaluated;
          if (c.CompactCountWith(*this, r, tol) >= params.min_compact_tags) {
            c.AddRowInPlace(*this, r, tol);
          }
        }
      }
      CandidatesEvaluatedCounter().Add(evaluated);
    });
    row = batch_end;
    prune();
  }

  // Phase 2: close each qualifying candidate under single-row extension
  // so reported fascicles are locally maximal, then drop subsets.
  //
  // Candidates are processed largest first, and a candidate already
  // contained in a previously computed closure is skipped — its own
  // closure would almost always retrace the same set, and skipping keeps
  // this phase near-linear in practice.
  std::sort(live.begin(), live.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.compact_count > b.compact_count;
            });
  std::vector<std::vector<size_t>> closures;
  std::vector<Fascicle> results;
  for (Candidate& c : live) {
    if (c.compact_count < params.min_compact_tags) continue;
    bool subsumed = false;
    for (const std::vector<size_t>& closure : closures) {
      if (std::includes(closure.begin(), closure.end(), c.members.begin(),
                        c.members.end())) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    bool grew = true;
    while (grew) {
      grew = false;
      for (size_t r = 0; r < rows_; ++r) {
        if (std::binary_search(c.members.begin(), c.members.end(), r)) {
          continue;
        }
        if (c.CompactCountWith(*this, r, tol) >= params.min_compact_tags) {
          c.AddRowInPlace(*this, r, tol);
          grew = true;
        }
      }
    }
    closures.push_back(c.members);
    if (c.members.size() >= params.min_size) {
      results.push_back(c.ToFascicle(tol));
    }
  }

  // Deduplicate identical member sets produced by different growth paths.
  std::set<std::vector<size_t>> emitted;
  std::vector<Fascicle> unique;
  for (Fascicle& f : results) {
    if (emitted.insert(f.members).second) unique.push_back(std::move(f));
  }
  return KeepMaximal(std::move(unique));
}

std::vector<double> TolerancesFromWidthPercent(const double* data,
                                               size_t rows, size_t cols,
                                               double percent) {
  std::vector<double> tol(cols, 0.0);
  if (rows == 0) return tol;
  // Column widths are independent; each chunk owns a disjoint slice.
  ParallelFor(0, cols, 128, [&](size_t col_begin, size_t col_end) {
    for (size_t col = col_begin; col < col_end; ++col) {
      double lo = data[col];
      double hi = data[col];
      for (size_t row = 1; row < rows; ++row) {
        double v = data[row * cols + col];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      tol[col] = (hi - lo) * percent / 100.0;
    }
  });
  return tol;
}

}  // namespace gea::cluster
