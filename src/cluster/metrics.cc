#include "cluster/metrics.h"

#include <map>

namespace gea::cluster {

namespace {

Status CheckLengths(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("label vectors differ in length");
  }
  if (a.empty()) {
    return Status::InvalidArgument("label vectors must be non-empty");
  }
  return Status::OK();
}

}  // namespace

Result<double> Purity(const std::vector<int>& assignments,
                      const std::vector<int>& truth) {
  GEA_RETURN_IF_ERROR(CheckLengths(assignments, truth));
  // Contingency counts; noise points become unique singleton clusters.
  std::map<int, std::map<int, size_t>> cluster_label_counts;
  int next_noise_cluster = -2;
  for (size_t i = 0; i < assignments.size(); ++i) {
    int cluster = assignments[i];
    if (cluster < 0) cluster = next_noise_cluster--;
    cluster_label_counts[cluster][truth[i]]++;
  }
  size_t correct = 0;
  for (const auto& [cluster, counts] : cluster_label_counts) {
    size_t best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) /
         static_cast<double>(assignments.size());
}

Result<double> RandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  GEA_RETURN_IF_ERROR(CheckLengths(a, b));
  size_t n = a.size();
  if (n < 2) return 1.0;
  size_t agreements = 0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool same_a = a[i] == a[j];
      bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agreements;
      ++pairs;
    }
  }
  return static_cast<double>(agreements) / static_cast<double>(pairs);
}

Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  GEA_RETURN_IF_ERROR(CheckLengths(a, b));
  // Contingency table.
  std::map<int, std::map<int, double>> table;
  std::map<int, double> row_sums;
  std::map<int, double> col_sums;
  double n = static_cast<double>(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    table[a[i]][b[i]] += 1.0;
    row_sums[a[i]] += 1.0;
    col_sums[b[i]] += 1.0;
  }
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& [r, cols] : table) {
    for (const auto& [c, count] : cols) sum_cells += choose2(count);
  }
  double sum_rows = 0.0;
  for (const auto& [r, count] : row_sums) sum_rows += choose2(count);
  double sum_cols = 0.0;
  for (const auto& [c, count] : col_sums) sum_cols += choose2(count);
  double total_pairs = choose2(n);
  double expected = sum_rows * sum_cols / total_pairs;
  double max_index = (sum_rows + sum_cols) / 2.0;
  if (max_index == expected) return 1.0;
  return (sum_cells - expected) / (max_index - expected);
}

}  // namespace gea::cluster
