#ifndef GEA_CLUSTER_HIERARCHICAL_H_
#define GEA_CLUSTER_HIERARCHICAL_H_

#include <vector>

#include "cluster/distance.h"
#include "common/result.h"

namespace gea::cluster {

/// One agglomeration step of the dendrogram: clusters `left` and `right`
/// merged at `height` into node id `id`. Leaf nodes are 0..n-1; internal
/// nodes are n..2n-2 in merge order.
struct DendrogramMerge {
  size_t id = 0;
  size_t left = 0;
  size_t right = 0;
  double height = 0.0;
};

/// Result of hierarchical agglomerative clustering.
struct Dendrogram {
  size_t num_points = 0;
  std::vector<DendrogramMerge> merges;  // n-1 merges, ascending height

  /// Flat clustering with exactly `k` clusters obtained by undoing the
  /// last k-1 merges. Returns one label in [0,k) per point. Requires
  /// 1 <= k <= num_points.
  Result<std::vector<int>> Cut(size_t k) const;

  /// Serializes the tree in Newick format — the interchange format for
  /// the Eisen-style cluster trees of Section 2.3.2. `labels` names the
  /// leaves (empty = "p<i>"); branch lengths carry the merge heights.
  /// Example for three points: "((p0:0.5,p1:0.5):1.2,p2:1.7);".
  Result<std::string> ToNewick(
      const std::vector<std::string>& labels = {}) const;
};

/// Linkage criteria. The thesis's reference method (Eisen et al.) is
/// pairwise average linkage.
enum class Linkage {
  kSingle = 0,
  kComplete,
  kAverage,
};

const char* LinkageName(Linkage linkage);

/// Agglomerative clustering of `points` under `kind` distance and
/// `linkage` (the "bottom-up" family of Section 2.3.1). O(n^3), intended
/// for the library-count scales of SAGE analysis (~100 points).
Result<Dendrogram> HierarchicalCluster(
    const std::vector<std::vector<double>>& points, DistanceKind kind,
    Linkage linkage);

}  // namespace gea::cluster

#endif  // GEA_CLUSTER_HIERARCHICAL_H_
