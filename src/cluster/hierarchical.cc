#include "cluster/hierarchical.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

namespace gea::cluster {

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
  }
  return "?";
}

Result<std::vector<int>> Dendrogram::Cut(size_t k) const {
  if (k < 1 || k > num_points) {
    return Status::InvalidArgument("cut requires 1 <= k <= num_points");
  }
  // Union-find over the first (n - k) merges.
  size_t total_nodes = 2 * num_points - 1;
  std::vector<size_t> parent(total_nodes);
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  size_t merges_to_apply = num_points - k;
  for (size_t m = 0; m < merges_to_apply; ++m) {
    const DendrogramMerge& merge = merges[m];
    parent[find(merge.left)] = merge.id;
    parent[find(merge.right)] = merge.id;
  }
  std::vector<int> labels(num_points, -1);
  std::vector<int> label_of_root(total_nodes, -1);
  int next_label = 0;
  for (size_t i = 0; i < num_points; ++i) {
    size_t root = find(i);
    if (label_of_root[root] < 0) label_of_root[root] = next_label++;
    labels[i] = label_of_root[root];
  }
  return labels;
}

Result<std::string> Dendrogram::ToNewick(
    const std::vector<std::string>& labels) const {
  if (!labels.empty() && labels.size() != num_points) {
    return Status::InvalidArgument(
        "label count does not match the number of points");
  }
  if (num_points == 0) {
    return Status::InvalidArgument("empty dendrogram");
  }
  auto leaf_name = [&](size_t i) {
    return labels.empty() ? "p" + std::to_string(i) : labels[i];
  };
  if (num_points == 1) {
    return leaf_name(0) + ";";
  }
  // height_of[node] = merge height at which the node was created (leaves
  // sit at height 0); branch length = parent height - child height.
  size_t total_nodes = 2 * num_points - 1;
  std::vector<double> height_of(total_nodes, 0.0);
  for (const DendrogramMerge& m : merges) height_of[m.id] = m.height;

  std::function<std::string(size_t, double)> render =
      [&](size_t node, double parent_height) -> std::string {
    double branch = parent_height - height_of[node];
    std::string length = ":" + std::to_string(branch);
    if (node < num_points) {
      return leaf_name(node) + length;
    }
    const DendrogramMerge& m = merges[node - num_points];
    return "(" + render(m.left, m.height) + "," +
           render(m.right, m.height) + ")" + length;
  };
  const DendrogramMerge& root = merges.back();
  return "(" + render(root.left, root.height) + "," +
         render(root.right, root.height) + ");";
}

Result<Dendrogram> HierarchicalCluster(
    const std::vector<std::vector<double>>& points, DistanceKind kind,
    Linkage linkage) {
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("need at least one point");
  }
  Dendrogram dendro;
  dendro.num_points = n;
  if (n == 1) return dendro;

  // Active cluster list; each holds its node id and member leaf ids.
  struct Cluster {
    size_t node_id;
    std::vector<size_t> members;
  };
  std::vector<Cluster> active;
  active.reserve(n);
  for (size_t i = 0; i < n; ++i) active.push_back({i, {i}});

  std::vector<double> dist = DistanceMatrix(kind, points);
  auto leaf_dist = [&](size_t a, size_t b) { return dist[a * n + b]; };

  auto cluster_distance = [&](const Cluster& a, const Cluster& b) {
    double best = linkage == Linkage::kSingle
                      ? std::numeric_limits<double>::max()
                      : std::numeric_limits<double>::lowest();
    double sum = 0.0;
    for (size_t x : a.members) {
      for (size_t y : b.members) {
        double d = leaf_dist(x, y);
        sum += d;
        if (linkage == Linkage::kSingle) {
          best = std::min(best, d);
        } else {
          best = std::max(best, d);
        }
      }
    }
    switch (linkage) {
      case Linkage::kSingle:
      case Linkage::kComplete:
        return best;
      case Linkage::kAverage:
        return sum / static_cast<double>(a.members.size() *
                                         b.members.size());
    }
    return best;
  };

  size_t next_node = n;
  while (active.size() > 1) {
    size_t best_i = 0;
    size_t best_j = 1;
    double best_d = std::numeric_limits<double>::max();
    for (size_t i = 0; i < active.size(); ++i) {
      for (size_t j = i + 1; j < active.size(); ++j) {
        double d = cluster_distance(active[i], active[j]);
        if (d < best_d) {
          best_d = d;
          best_i = i;
          best_j = j;
        }
      }
    }
    DendrogramMerge merge;
    merge.id = next_node++;
    merge.left = active[best_i].node_id;
    merge.right = active[best_j].node_id;
    merge.height = best_d;
    dendro.merges.push_back(merge);

    Cluster merged;
    merged.node_id = merge.id;
    merged.members = active[best_i].members;
    merged.members.insert(merged.members.end(),
                          active[best_j].members.begin(),
                          active[best_j].members.end());
    active.erase(active.begin() + static_cast<ptrdiff_t>(best_j));
    active.erase(active.begin() + static_cast<ptrdiff_t>(best_i));
    active.push_back(std::move(merged));
  }
  return dendro;
}

}  // namespace gea::cluster
