#include "cluster/distance.h"

#include <cassert>
#include <cmath>

namespace gea::cluster {

const char* DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return "euclidean";
    case DistanceKind::kPearson:
      return "pearson";
  }
  return "?";
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - mean_a;
    double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double PearsonDistance(std::span<const double> a, std::span<const double> b) {
  return 1.0 - PearsonCorrelation(a, b);
}

double Distance(DistanceKind kind, std::span<const double> a,
                std::span<const double> b) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return EuclideanDistance(a, b);
    case DistanceKind::kPearson:
      return PearsonDistance(a, b);
  }
  return 0.0;
}

std::vector<double> DistanceMatrix(
    DistanceKind kind, const std::vector<std::vector<double>>& points) {
  size_t n = points.size();
  std::vector<double> matrix(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = Distance(kind, points[i], points[j]);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  }
  return matrix;
}

}  // namespace gea::cluster
