#ifndef GEA_CLUSTER_FASCICLES_H_
#define GEA_CLUSTER_FASCICLES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace gea::cluster {

/// The Fascicles algorithm (Jagadish, Madar, Ng, VLDB 1999), the clustering
/// method Section 2.5 builds GEA around.
///
/// Input: a rows-by-columns matrix (rows = SAGE libraries, columns = tags)
/// and a tolerance vector `t`. A column is *compact* for a set of rows when
/// the spread (max - min) of its values over those rows is at most the
/// column's tolerance. A *fascicle* is a set of at least `min_size` rows
/// with at least `k` compact columns (Section 2.5.1).

/// Mining parameters — the six inputs of the thesis's Fig. 4.6 window.
struct FascicleParams {
  /// k: minimum number of compact columns ("No. of Compact Attribute").
  size_t min_compact_tags = 1;

  /// Per-column compactness tolerances (the "metadata" of Fig. 4.5). Must
  /// have exactly one entry per matrix column.
  std::vector<double> tolerances;

  /// Minimum number of rows for a fascicle to be reported ("Minimum
  /// Size"; the thesis uses 3).
  size_t min_size = 3;

  /// Phase-1 chunk: how many rows the miner ingests at a time ("Batch
  /// Size"; the thesis uses 6). Affects only the greedy algorithm.
  size_t batch_size = 6;

  enum class Algorithm {
    /// Exhaustive level-wise lattice search returning every maximal
    /// fascicle. Exponential in the worst case; guarded by
    /// `max_candidates`.
    kExact,
    /// The batched candidate-growth heuristic; linear in the number of
    /// rows and compact columns per pass (Section 3.3.1).
    kGreedy,
  };
  Algorithm algorithm = Algorithm::kGreedy;

  /// Exact algorithm: abort with FailedPrecondition when the candidate
  /// frontier exceeds this. Greedy algorithm: live-candidate cap.
  size_t max_candidates = 20000;
};

/// One mined fascicle.
struct Fascicle {
  /// Row indices of the member libraries, ascending.
  std::vector<size_t> members;
  /// Column indices of the compact tags, ascending.
  std::vector<size_t> compact_columns;
  /// [min, max] of each compact column over the members, aligned with
  /// `compact_columns`.
  std::vector<std::pair<double, double>> compact_ranges;

  std::string ToString() const;
};

/// Mines fascicles from a row-major `rows` x `cols` matrix.
class FascicleMiner {
 public:
  /// `data` must stay alive for the miner's lifetime.
  FascicleMiner(const double* data, size_t rows, size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double At(size_t row, size_t col) const { return data_[row * cols_ + col]; }

  /// Runs the mining algorithm selected in `params`. Fascicles are
  /// returned largest-membership first; within equal size, more compact
  /// columns first.
  Result<std::vector<Fascicle>> Mine(const FascicleParams& params) const;

  /// Number of columns compact over `members` under `tolerances` — the
  /// invariant checker used by tests.
  size_t CountCompactColumns(const std::vector<size_t>& members,
                             const std::vector<double>& tolerances) const;

  /// True when `fascicle` is internally consistent: every listed compact
  /// column really is compact with the listed range, and no unlisted
  /// column is compact.
  bool Verify(const Fascicle& fascicle,
              const std::vector<double>& tolerances) const;

 private:
  Result<std::vector<Fascicle>> MineExact(const FascicleParams& params) const;
  Result<std::vector<Fascicle>> MineGreedy(const FascicleParams& params) const;

  const double* data_;
  size_t rows_;
  size_t cols_;
};

/// Builds the Fig. 4.5 "metadata": per-column tolerance = `percent`% of
/// the column's value width (max - min over all rows). Columns with zero
/// width get tolerance 0 (they are compact in any row set).
std::vector<double> TolerancesFromWidthPercent(const double* data,
                                               size_t rows, size_t cols,
                                               double percent);

}  // namespace gea::cluster

#endif  // GEA_CLUSTER_FASCICLES_H_
