#include "cluster/optics.h"

#include <algorithm>
#include <limits>

namespace gea::cluster {

std::vector<int> OpticsResult::ExtractClusters(double eps_prime) const {
  std::vector<int> labels(reachability.size(), -1);
  int current = -1;
  for (size_t idx : ordering) {
    double r = reachability[idx];
    if (r == kUnreachable || r > eps_prime) {
      double core = core_distance[idx];
      if (core != kUnreachable && core <= eps_prime) {
        ++current;  // start a new cluster at this core point
        labels[idx] = current;
      } else {
        labels[idx] = -1;  // noise
      }
    } else {
      labels[idx] = current;
    }
  }
  return labels;
}

Result<OpticsResult> Optics(const std::vector<std::vector<double>>& points,
                            const OpticsParams& params) {
  if (params.min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  const size_t n = points.size();
  OpticsResult result;
  result.reachability.assign(n, OpticsResult::kUnreachable);
  result.core_distance.assign(n, OpticsResult::kUnreachable);
  if (n == 0) return result;

  std::vector<double> dist = DistanceMatrix(params.distance, points);
  auto d = [&](size_t a, size_t b) { return dist[a * n + b]; };

  // Core distance: distance to the min_pts-th neighbor (counting the
  // point itself), defined when the epsilon-neighborhood is big enough.
  std::vector<std::vector<size_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (d(i, j) <= params.epsilon) neighbors[i].push_back(j);
    }
    if (neighbors[i].size() >= static_cast<size_t>(params.min_pts)) {
      std::vector<double> ds;
      ds.reserve(neighbors[i].size());
      for (size_t j : neighbors[i]) ds.push_back(d(i, j));
      std::nth_element(ds.begin(),
                       ds.begin() + (params.min_pts - 1), ds.end());
      result.core_distance[i] = ds[static_cast<size_t>(params.min_pts - 1)];
    }
  }

  std::vector<bool> processed(n, false);
  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    // Expand from `start` using a naive priority queue (seed list).
    processed[start] = true;
    result.ordering.push_back(start);
    if (result.core_distance[start] == OpticsResult::kUnreachable) continue;

    std::vector<size_t> seeds;
    auto update_seeds = [&](size_t center) {
      double core = result.core_distance[center];
      if (core == OpticsResult::kUnreachable) return;
      for (size_t nb : neighbors[center]) {
        if (processed[nb]) continue;
        double new_reach = std::max(core, d(center, nb));
        double old = result.reachability[nb];
        if (old == OpticsResult::kUnreachable) {
          result.reachability[nb] = new_reach;
          seeds.push_back(nb);
        } else if (new_reach < old) {
          result.reachability[nb] = new_reach;
        }
      }
    };
    update_seeds(start);
    while (!seeds.empty()) {
      // Pop the unprocessed seed with the smallest reachability.
      size_t best_pos = 0;
      for (size_t s = 1; s < seeds.size(); ++s) {
        if (result.reachability[seeds[s]] <
            result.reachability[seeds[best_pos]]) {
          best_pos = s;
        }
      }
      size_t next = seeds[best_pos];
      seeds.erase(seeds.begin() + static_cast<ptrdiff_t>(best_pos));
      if (processed[next]) continue;
      processed[next] = true;
      result.ordering.push_back(next);
      update_seeds(next);
    }
  }
  return result;
}

}  // namespace gea::cluster
