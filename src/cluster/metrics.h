#ifndef GEA_CLUSTER_METRICS_H_
#define GEA_CLUSTER_METRICS_H_

#include <vector>

#include "common/result.h"

namespace gea::cluster {

/// External cluster-quality measures used by the clustering benchmarks to
/// quantify the thesis's qualitative claims (clusters group libraries by
/// tissue type and neoplastic state; cleaning improves clusters —
/// Section 2.3.3).

/// Purity: each cluster votes for its majority true label; purity is the
/// fraction of points whose cluster voted for their label. Noise points
/// (label < 0 in `assignments`) count as singleton clusters of their own.
/// Requires equal lengths; in [0, 1].
Result<double> Purity(const std::vector<int>& assignments,
                      const std::vector<int>& truth);

/// Rand index: fraction of point pairs on which the two clusterings agree
/// (same-same or different-different). In [0, 1].
Result<double> RandIndex(const std::vector<int>& a,
                         const std::vector<int>& b);

/// Adjusted Rand index (chance-corrected); 1 = identical, ~0 = random.
Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                 const std::vector<int>& b);

}  // namespace gea::cluster

#endif  // GEA_CLUSTER_METRICS_H_
