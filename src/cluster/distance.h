#ifndef GEA_CLUSTER_DISTANCE_H_
#define GEA_CLUSTER_DISTANCE_H_

#include <span>
#include <vector>

namespace gea::cluster {

/// Distance functions used by the clustering algorithms GEA hosts
/// (Section 2.3.1). The gene-expression literature the thesis surveys
/// (Eisen et al., Alon et al., Ng et al.) uses the correlation coefficient
/// as the distance measure; Euclidean distance is the conventional
/// alternative.
enum class DistanceKind {
  kEuclidean = 0,
  kPearson,  // 1 - Pearson correlation coefficient, in [0, 2]
};

const char* DistanceKindName(DistanceKind kind);

/// Euclidean (L2) distance. Requires equal lengths.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient in [-1, 1]; returns 0 when either
/// vector has zero variance.
double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b);

/// 1 - Pearson correlation, so identical profiles are at distance 0 and
/// anti-correlated profiles at distance 2.
double PearsonDistance(std::span<const double> a, std::span<const double> b);

/// Dispatches on `kind`.
double Distance(DistanceKind kind, std::span<const double> a,
                std::span<const double> b);

/// Full symmetric pairwise distance matrix of `points` (row-major n×n).
std::vector<double> DistanceMatrix(
    DistanceKind kind, const std::vector<std::vector<double>>& points);

}  // namespace gea::cluster

#endif  // GEA_CLUSTER_DISTANCE_H_
