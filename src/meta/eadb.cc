#include "meta/eadb.h"

namespace gea::meta {

Result<std::string> EadbSearch::TagToGene(sage::TagId tag) const {
  const rel::Table& unigene = db_->unigene();
  size_t tagno_col = *unigene.schema().FindColumn("TagNo");
  size_t gene_col = *unigene.schema().FindColumn("Gene");
  for (size_t r1_ = 0; r1_ < unigene.NumRows(); ++r1_) {
    const rel::Row row = unigene.GetRow(r1_);
    if (row[tagno_col].AsInt() == static_cast<int64_t>(tag)) {
      return row[gene_col].AsString();
    }
  }
  return Status::NotFound("no gene is known for tag " + sage::TagLabel(tag));
}

std::vector<sage::TagId> EadbSearch::GeneToTags(
    const std::string& gene) const {
  const rel::Table& unigene = db_->unigene();
  size_t tagno_col = *unigene.schema().FindColumn("TagNo");
  size_t gene_col = *unigene.schema().FindColumn("Gene");
  std::vector<sage::TagId> out;
  for (size_t r2_ = 0; r2_ < unigene.NumRows(); ++r2_) {
    const rel::Row row = unigene.GetRow(r2_);
    if (row[gene_col].AsString() == gene) {
      out.push_back(static_cast<sage::TagId>(row[tagno_col].AsInt()));
    }
  }
  return out;
}

Result<ProteinRecord> EadbSearch::GeneToProtein(
    const std::string& gene) const {
  const rel::Table& swissprot = db_->swissprot();
  size_t gene_col = *swissprot.schema().FindColumn("Gene");
  size_t protein_col = *swissprot.schema().FindColumn("Protein");
  size_t seq_col = *swissprot.schema().FindColumn("Sequence");
  for (size_t r3_ = 0; r3_ < swissprot.NumRows(); ++r3_) {
    const rel::Row row = swissprot.GetRow(r3_);
    if (row[gene_col].AsString() == gene) {
      return ProteinRecord{row[protein_col].AsString(),
                           row[seq_col].AsString()};
    }
  }
  return Status::NotFound("no protein is known for gene " + gene);
}

std::vector<Publication> EadbSearch::GeneToPublications(
    const std::string& gene) const {
  const rel::Table& pubmed = db_->pubmed();
  size_t gene_col = *pubmed.schema().FindColumn("Gene");
  size_t title_col = *pubmed.schema().FindColumn("Title");
  size_t journal_col = *pubmed.schema().FindColumn("Journal");
  size_t year_col = *pubmed.schema().FindColumn("Year");
  std::vector<Publication> out;
  for (size_t r4_ = 0; r4_ < pubmed.NumRows(); ++r4_) {
    const rel::Row row = pubmed.GetRow(r4_);
    if (row[gene_col].AsString() == gene) {
      out.push_back({row[title_col].AsString(), row[journal_col].AsString(),
                     static_cast<int>(row[year_col].AsInt())});
    }
  }
  return out;
}

std::vector<std::string> EadbSearch::GeneToPathways(
    const std::string& gene) const {
  const rel::Table& kegg = db_->kegg();
  size_t gene_col = *kegg.schema().FindColumn("Gene");
  size_t pathway_col = *kegg.schema().FindColumn("Pathway");
  std::vector<std::string> out;
  for (size_t r5_ = 0; r5_ < kegg.NumRows(); ++r5_) {
    const rel::Row row = kegg.GetRow(r5_);
    if (row[gene_col].AsString() == gene) {
      out.push_back(row[pathway_col].AsString());
    }
  }
  return out;
}

Result<std::string> EadbSearch::ProteinToFamily(
    const std::string& protein) const {
  const rel::Table& pfam = db_->pfam();
  size_t protein_col = *pfam.schema().FindColumn("Protein");
  size_t family_col = *pfam.schema().FindColumn("Family");
  for (size_t r6_ = 0; r6_ < pfam.NumRows(); ++r6_) {
    const rel::Row row = pfam.GetRow(r6_);
    if (row[protein_col].AsString() == protein) {
      return row[family_col].AsString();
    }
  }
  return Status::NotFound("no family is known for protein " + protein);
}

std::vector<std::string> EadbSearch::GeneToDiseases(
    const std::string& gene) const {
  const rel::Table& omim = db_->omim();
  size_t gene_col = *omim.schema().FindColumn("Gene");
  size_t disease_col = *omim.schema().FindColumn("Disease");
  std::vector<std::string> out;
  for (size_t r7_ = 0; r7_ < omim.NumRows(); ++r7_) {
    const rel::Row row = omim.GetRow(r7_);
    if (row[gene_col].AsString() == gene) {
      out.push_back(row[disease_col].AsString());
    }
  }
  return out;
}

std::vector<std::string> EadbSearch::GenesForDisease(
    const std::string& disease, int chromosome) const {
  const rel::Table& omim = db_->omim();
  size_t gene_col = *omim.schema().FindColumn("Gene");
  size_t disease_col = *omim.schema().FindColumn("Disease");
  size_t chrom_col = *omim.schema().FindColumn("Chromosome");
  std::vector<std::string> out;
  for (size_t r8_ = 0; r8_ < omim.NumRows(); ++r8_) {
    const rel::Row row = omim.GetRow(r8_);
    if (row[disease_col].AsString() != disease) continue;
    if (chromosome != 0 && row[chrom_col].AsInt() != chromosome) continue;
    out.push_back(row[gene_col].AsString());
  }
  return out;
}

}  // namespace gea::meta
