#ifndef GEA_META_EADB_H_
#define GEA_META_EADB_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "meta/annotation.h"
#include "sage/tag_codec.h"

namespace gea::meta {

/// A protein record returned by the gene -> protein mapper.
struct ProteinRecord {
  std::string protein;
  std::string sequence;
};

/// One publication returned by the gene -> publications mapper.
struct Publication {
  std::string title;
  std::string journal;
  int year = 0;
};

/// The Expression Analysis Database search facade of Section 4.4.4.1 /
/// Fig. 4.22: tag-to-gene, gene-to-protein-sequence, and
/// gene-to-publications lookups, plus the pathway / family / disease
/// searches of Sections 5.2.3-5.2.6. All lookups run over an
/// AnnotationDatabase, which must outlive the search object.
class EadbSearch {
 public:
  explicit EadbSearch(const AnnotationDatabase& db) : db_(&db) {}

  /// The tag-to-gene mapper. NotFound for unmapped tags.
  Result<std::string> TagToGene(sage::TagId tag) const;

  /// Every tag mapping to `gene` (the gene-to-tag mapper mentioned in
  /// Section 2.3.3).
  std::vector<sage::TagId> GeneToTags(const std::string& gene) const;

  /// The gene-to-protein-sequence mapper.
  Result<ProteinRecord> GeneToProtein(const std::string& gene) const;

  /// Publications studying `gene` (possibly empty).
  std::vector<Publication> GeneToPublications(const std::string& gene) const;

  /// KEGG pathways `gene` participates in (Section 5.2.4).
  std::vector<std::string> GeneToPathways(const std::string& gene) const;

  /// PFAM family of `protein` (Section 5.2.3).
  Result<std::string> ProteinToFamily(const std::string& protein) const;

  /// OMIM diseases linked to `gene` (Section 5.2.6).
  std::vector<std::string> GeneToDiseases(const std::string& gene) const;

  /// The OMIM-style question of Section 5.2.6: genes related to `disease`
  /// restricted to `chromosome` (pass 0 for any chromosome).
  std::vector<std::string> GenesForDisease(const std::string& disease,
                                           int chromosome = 0) const;

 private:
  const AnnotationDatabase* db_;
};

}  // namespace gea::meta

#endif  // GEA_META_EADB_H_
