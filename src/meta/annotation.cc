#include "meta/annotation.h"

#include <algorithm>

#include "common/rng.h"
#include "rel/ops.h"

namespace gea::meta {

namespace {

constexpr const char* kFamilies[] = {
    "globin",     "kinase",     "tubulin",  "ribosomal protein",
    "protease",   "receptor",   "channel",  "transcription factor",
    "heat shock", "cytokine",
};

constexpr const char* kPathways[] = {
    "glycolysis",
    "citrate cycle",
    "oxidative phosphorylation",
    "cell cycle",
    "apoptosis",
    "MAPK signaling",
    "p53 signaling",
    "DNA replication",
};

constexpr const char* kDiseases[] = {
    "glioblastoma",        "breast carcinoma", "colorectal cancer",
    "renal cell carcinoma", "ovarian cancer",  "pancreatic cancer",
    "prostate cancer",      "melanoma",        "hypertension",
};

constexpr const char* kJournals[] = {
    "Science", "Nature", "Cell", "PNAS", "Genome Research",
};

constexpr char kAminoAcids[] = "ACDEFGHIKLMNPQRSTVWY";

std::string RandomProteinSequence(Rng& rng) {
  int length = static_cast<int>(rng.UniformInt(80, 240));
  std::string seq;
  seq.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    seq += kAminoAcids[rng.UniformInt(0, 19)];
  }
  return seq;
}

}  // namespace

AnnotationDatabase AnnotationDatabase::Generate(
    const std::vector<sage::TagId>& tags, const AnnotationConfig& config) {
  Rng rng(config.seed);

  rel::Table unigene("Unigene",
                     rel::Schema({{"Tag", rel::ValueType::kString},
                                  {"TagNo", rel::ValueType::kInt},
                                  {"Gene", rel::ValueType::kString}}));
  rel::Table swissprot("Swissprot",
                       rel::Schema({{"Gene", rel::ValueType::kString},
                                    {"Protein", rel::ValueType::kString},
                                    {"Sequence", rel::ValueType::kString}}));
  rel::Table pfam("Pfam",
                  rel::Schema({{"Protein", rel::ValueType::kString},
                               {"Family", rel::ValueType::kString},
                               {"Function", rel::ValueType::kString}}));
  rel::Table kegg("Kegg", rel::Schema({{"Gene", rel::ValueType::kString},
                                       {"Pathway", rel::ValueType::kString}}));
  rel::Table omim("Omim",
                  rel::Schema({{"Gene", rel::ValueType::kString},
                               {"Disease", rel::ValueType::kString},
                               {"Chromosome", rel::ValueType::kInt}}));
  rel::Table pubmed("Pubmed",
                    rel::Schema({{"Gene", rel::ValueType::kString},
                                 {"Title", rel::ValueType::kString},
                                 {"Journal", rel::ValueType::kString},
                                 {"Year", rel::ValueType::kInt}}));

  // Assign tags to genes: pinned first, then random grouping.
  std::vector<std::pair<sage::TagId, std::string>> tag_gene;
  std::vector<std::string> genes;
  for (const auto& [tag, gene] : config.pinned_genes) {
    tag_gene.emplace_back(tag, gene);
    genes.push_back(gene);
  }
  int gene_serial = 0;
  size_t tags_in_current_gene = 0;
  size_t current_quota = 0;
  std::string current_gene;
  for (sage::TagId tag : tags) {
    if (config.pinned_genes.count(tag) > 0) continue;
    if (!rng.Bernoulli(config.mapped_fraction)) continue;  // unmapped tag
    if (tags_in_current_gene >= current_quota) {
      current_gene = "GENE_" + std::to_string(++gene_serial);
      genes.push_back(current_gene);
      tags_in_current_gene = 0;
      current_quota = std::max<size_t>(
          1, static_cast<size_t>(
                 std::lround(rng.Normal(config.tags_per_gene, 0.8))));
    }
    tag_gene.emplace_back(tag, current_gene);
    ++tags_in_current_gene;
  }
  std::sort(tag_gene.begin(), tag_gene.end());
  for (const auto& [tag, gene] : tag_gene) {
    unigene.AppendRowUnchecked(
        {rel::Value::String(sage::DecodeTag(tag)),
         rel::Value::Int(static_cast<int64_t>(tag)),
         rel::Value::String(gene)});
  }

  std::sort(genes.begin(), genes.end());
  genes.erase(std::unique(genes.begin(), genes.end()), genes.end());
  for (const std::string& gene : genes) {
    std::string protein = gene + " protein";
    swissprot.AppendRowUnchecked(
        {rel::Value::String(gene), rel::Value::String(protein),
         rel::Value::String(RandomProteinSequence(rng))});
    const char* family = kFamilies[rng.UniformInt(0, 9)];
    pfam.AppendRowUnchecked(
        {rel::Value::String(protein), rel::Value::String(family),
         rel::Value::String(std::string("member of the ") + family +
                            " family")});
    kegg.AppendRowUnchecked(
        {rel::Value::String(gene),
         rel::Value::String(kPathways[rng.UniformInt(0, 7)])});
    if (rng.Bernoulli(0.4)) {
      omim.AppendRowUnchecked(
          {rel::Value::String(gene),
           rel::Value::String(kDiseases[rng.UniformInt(0, 8)]),
           rel::Value::Int(rng.UniformInt(1, 22))});
    }
    int pubs = static_cast<int>(
        rng.UniformInt(config.min_publications, config.max_publications));
    for (int p = 0; p < pubs; ++p) {
      pubmed.AppendRowUnchecked(
          {rel::Value::String(gene),
           rel::Value::String("Expression and function of " + gene +
                              " (study " + std::to_string(p + 1) + ")"),
           rel::Value::String(kJournals[rng.UniformInt(0, 4)]),
           rel::Value::Int(rng.UniformInt(1995, 2001))});
    }
  }

  return AnnotationDatabase(std::move(unigene), std::move(swissprot),
                            std::move(pfam), std::move(kegg),
                            std::move(omim), std::move(pubmed));
}

std::vector<std::string> AnnotationDatabase::GeneNames() const {
  std::vector<std::string> genes;
  size_t gene_col = *unigene_.schema().FindColumn("Gene");
  for (size_t r1_ = 0; r1_ < unigene_.NumRows(); ++r1_) {
    const rel::Row row = unigene_.GetRow(r1_);
    genes.push_back(row[gene_col].AsString());
  }
  std::sort(genes.begin(), genes.end());
  genes.erase(std::unique(genes.begin(), genes.end()), genes.end());
  return genes;
}

Result<rel::Table> GeneRelFromTagRel(const rel::Table& tag_rel,
                                     const rel::Table& unigene,
                                     const std::string& out_name) {
  GEA_ASSIGN_OR_RETURN(
      rel::Table joined,
      rel::HashJoin(tag_rel, unigene, "TagNo", "TagNo", out_name + "_join"));
  GEA_ASSIGN_OR_RETURN(rel::Table genes,
                       rel::Project(joined, {"Gene"}, out_name));
  return rel::Distinct(genes, out_name);
}

Result<rel::Table> ProtRelFromGeneRel(const rel::Table& gene_rel,
                                      const rel::Table& swissprot,
                                      const std::string& out_name) {
  GEA_ASSIGN_OR_RETURN(
      rel::Table joined,
      rel::HashJoin(gene_rel, swissprot, "Gene", "Gene", out_name + "_join"));
  GEA_ASSIGN_OR_RETURN(
      rel::Table sequences,
      rel::Project(joined, {"Protein", "Sequence"}, out_name));
  return rel::Distinct(sequences, out_name);
}

}  // namespace gea::meta
