#include "meta/annotate.h"

#include "meta/eadb.h"

namespace gea::meta {

Result<rel::Table> AnnotateGapTable(const core::GapTable& gap,
                                    const AnnotationDatabase& db,
                                    const std::string& out_name) {
  if (gap.NumColumns() < 1) {
    return Status::InvalidArgument("GAP table has no gap columns");
  }
  EadbSearch search(db);
  rel::Table out(out_name,
                 rel::Schema({{"TagName", rel::ValueType::kString},
                              {"TagNo", rel::ValueType::kInt},
                              {"Gap", rel::ValueType::kDouble},
                              {"Gene", rel::ValueType::kString},
                              {"Protein", rel::ValueType::kString},
                              {"Family", rel::ValueType::kString},
                              {"Pathway", rel::ValueType::kString},
                              {"Publications", rel::ValueType::kInt}}));
  for (const core::GapEntry& e : gap.entries()) {
    rel::Row row = {rel::Value::String(sage::DecodeTag(e.tag)),
                    rel::Value::Int(static_cast<int64_t>(e.tag)),
                    e.gaps[0].has_value() ? rel::Value::Double(*e.gaps[0])
                                          : rel::Value::Null()};
    Result<std::string> gene = search.TagToGene(e.tag);
    if (!gene.ok()) {
      row.push_back(rel::Value::Null());  // Gene
      row.push_back(rel::Value::Null());  // Protein
      row.push_back(rel::Value::Null());  // Family
      row.push_back(rel::Value::Null());  // Pathway
      row.push_back(rel::Value::Int(0));  // Publications
      out.AppendRowUnchecked(std::move(row));
      continue;
    }
    row.push_back(rel::Value::String(*gene));
    Result<ProteinRecord> protein = search.GeneToProtein(*gene);
    if (protein.ok()) {
      row.push_back(rel::Value::String(protein->protein));
      Result<std::string> family = search.ProteinToFamily(protein->protein);
      row.push_back(family.ok() ? rel::Value::String(*family)
                                : rel::Value::Null());
    } else {
      row.push_back(rel::Value::Null());
      row.push_back(rel::Value::Null());
    }
    std::vector<std::string> pathways = search.GeneToPathways(*gene);
    row.push_back(pathways.empty() ? rel::Value::Null()
                                   : rel::Value::String(pathways.front()));
    row.push_back(rel::Value::Int(static_cast<int64_t>(
        search.GeneToPublications(*gene).size())));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace gea::meta
