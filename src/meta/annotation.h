#ifndef GEA_META_ANNOTATION_H_
#define GEA_META_ANNOTATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "sage/tag_codec.h"

namespace gea::meta {

/// The auxiliary genomic databases of Section 5.2 as synthetic relational
/// tables. The real UNIGENE / SWISSPROT / PFAM / KEGG / OMIM / PUBMED
/// dumps are not available offline; these generators build internally
/// consistent relations over the same schemas so that every join pipeline
/// the thesis describes runs unchanged.
///
/// Schemas:
///   Unigene  (Tag:string, TagNo:int, Gene:string)        tag -> gene
///   SwissProt(Gene:string, Protein:string, Sequence:string)
///   Pfam     (Protein:string, Family:string, Function:string)
///   Kegg     (Gene:string, Pathway:string)
///   Omim     (Gene:string, Disease:string, Chromosome:int)
///   Pubmed   (Gene:string, Title:string, Journal:string, Year:int)
struct AnnotationConfig {
  uint64_t seed = 7;

  /// Fraction of the supplied tags that map to a known gene ("a tag
  /// corresponds to one gene at the most, but there are tags with no
  /// known corresponding genes", Section 2.2.3).
  double mapped_fraction = 0.7;

  /// Average number of tags per gene (a gene can have several tags).
  double tags_per_gene = 1.5;

  /// Publications per gene range.
  int min_publications = 0;
  int max_publications = 4;

  /// Explicit tag -> gene-name pins, applied before random assignment.
  /// Used to plant the thesis's named genes (aldolase C, alpha tubulin,
  /// ribosomal protein L12, ...) on chosen tags.
  std::map<sage::TagId, std::string> pinned_genes;
};

/// The generated database bundle.
class AnnotationDatabase {
 public:
  /// Builds annotations covering `tags`.
  static AnnotationDatabase Generate(const std::vector<sage::TagId>& tags,
                                     const AnnotationConfig& config);

  const rel::Table& unigene() const { return unigene_; }
  const rel::Table& swissprot() const { return swissprot_; }
  const rel::Table& pfam() const { return pfam_; }
  const rel::Table& kegg() const { return kegg_; }
  const rel::Table& omim() const { return omim_; }
  const rel::Table& pubmed() const { return pubmed_; }

  /// All gene names present in Unigene, sorted.
  std::vector<std::string> GeneNames() const;

 private:
  AnnotationDatabase(rel::Table unigene, rel::Table swissprot,
                     rel::Table pfam, rel::Table kegg, rel::Table omim,
                     rel::Table pubmed)
      : unigene_(std::move(unigene)),
        swissprot_(std::move(swissprot)),
        pfam_(std::move(pfam)),
        kegg_(std::move(kegg)),
        omim_(std::move(omim)),
        pubmed_(std::move(pubmed)) {}

  rel::Table unigene_;
  rel::Table swissprot_;
  rel::Table pfam_;
  rel::Table kegg_;
  rel::Table omim_;
  rel::Table pubmed_;
};

/// The Section 5.2.1 pipeline: GeneRel = pi_gene sigma (TagRel |x|
/// Unigene). `tag_rel` must carry a TagNo:int column (every SUMY / GAP /
/// top-gap relational rendering does).
Result<rel::Table> GeneRelFromTagRel(const rel::Table& tag_rel,
                                     const rel::Table& unigene,
                                     const std::string& out_name);

/// The Section 5.2.2 pipeline: ProtRel = pi_sequence sigma (GeneRel |x|
/// Swissprot). `gene_rel` must carry a Gene:string column.
Result<rel::Table> ProtRelFromGeneRel(const rel::Table& gene_rel,
                                      const rel::Table& swissprot,
                                      const std::string& out_name);

}  // namespace gea::meta

#endif  // GEA_META_ANNOTATION_H_
