#ifndef GEA_META_ANNOTATE_H_
#define GEA_META_ANNOTATE_H_

#include <string>

#include "common/result.h"
#include "core/gap.h"
#include "meta/annotation.h"
#include "rel/table.h"

namespace gea::meta {

/// Annotates a GAP (or top-gap) table with the integrated genomic
/// databases — the end-to-end "candidate tag to biological meaning" step
/// the thesis's Section 5.2 sketches. For every tag in `gap` the report
/// carries its gene (via UNIGENE), protein and family (via SWISSPROT and
/// PFAM), one KEGG pathway, and the publication count; unmapped tags get
/// NULLs. Output schema:
///
///   TagName:string, TagNo:int, Gap:double, Gene:string, Protein:string,
///   Family:string, Pathway:string, Publications:int
///
/// Only the first gap column of `gap` is reported.
Result<rel::Table> AnnotateGapTable(const core::GapTable& gap,
                                    const AnnotationDatabase& db,
                                    const std::string& out_name);

}  // namespace gea::meta

#endif  // GEA_META_ANNOTATE_H_
