#include "lineage/lineage.h"

#include <algorithm>
#include <set>

namespace gea::lineage {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDataSet:
      return "dataset";
    case NodeKind::kFascicle:
      return "fascicle";
    case NodeKind::kSumy:
      return "sumy";
    case NodeKind::kEnum:
      return "enum";
    case NodeKind::kGap:
      return "gap";
    case NodeKind::kTopGap:
      return "top_gap";
    case NodeKind::kCompareGap:
      return "compare_gap";
  }
  return "?";
}

Result<LineageGraph::NodeId> LineageGraph::AddNode(
    const std::string& name, NodeKind kind, const std::string& operation,
    std::map<std::string, std::string> parameters,
    const std::vector<NodeId>& parents) {
  if (name.empty()) {
    return Status::InvalidArgument("lineage node name must be non-empty");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("lineage node already exists: " + name);
  }
  for (NodeId parent : parents) {
    if (nodes_.count(parent) == 0) {
      return Status::NotFound("no such parent node: " +
                              std::to_string(parent));
    }
  }
  Node node;
  node.id = next_id_++;
  node.name = name;
  node.kind = kind;
  node.operation = operation;
  node.parameters = std::move(parameters);
  node.parents = parents;
  for (NodeId parent : parents) {
    nodes_[parent].children.push_back(node.id);
  }
  NodeId id = node.id;
  by_name_.emplace(name, id);
  nodes_.emplace(id, std::move(node));
  return id;
}

Result<const LineageGraph::Node*> LineageGraph::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no such lineage node: " + std::to_string(id));
  }
  return &it->second;
}

Result<LineageGraph::NodeId> LineageGraph::FindByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no lineage node named " + name);
  }
  return it->second;
}

Status LineageGraph::SetComment(NodeId id, const std::string& comment) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no such lineage node: " + std::to_string(id));
  }
  it->second.comment = comment;
  return Status::OK();
}

Status LineageGraph::DeleteContents(
    NodeId id, const std::function<void(const std::string&)>& on_drop) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no such lineage node: " + std::to_string(id));
  }
  if (it->second.has_contents && on_drop) on_drop(it->second.name);
  it->second.has_contents = false;
  return Status::OK();
}

Status LineageGraph::DeleteCascade(
    NodeId id, const std::function<void(const std::string&)>& on_drop) {
  if (nodes_.count(id) == 0) {
    return Status::NotFound("no such lineage node: " + std::to_string(id));
  }
  // Collect the subtree (DAG-safe: a node reachable through two parents is
  // visited once).
  std::set<NodeId> doomed;
  std::vector<NodeId> frontier = {id};
  while (!frontier.empty()) {
    NodeId cur = frontier.back();
    frontier.pop_back();
    if (!doomed.insert(cur).second) continue;
    for (NodeId child : nodes_[cur].children) frontier.push_back(child);
  }
  for (NodeId victim : doomed) {
    const Node& node = nodes_[victim];
    if (on_drop) on_drop(node.name);
    by_name_.erase(node.name);
    // Unlink from surviving parents.
    for (NodeId parent : node.parents) {
      if (doomed.count(parent) > 0) continue;
      auto pit = nodes_.find(parent);
      if (pit == nodes_.end()) continue;
      auto& kids = pit->second.children;
      kids.erase(std::remove(kids.begin(), kids.end(), victim), kids.end());
    }
  }
  for (NodeId victim : doomed) nodes_.erase(victim);
  return Status::OK();
}

Result<std::vector<LineageGraph::NodeId>> LineageGraph::Children(
    NodeId id) const {
  GEA_ASSIGN_OR_RETURN(const Node* node, GetNode(id));
  return node->children;
}

Result<std::string> LineageGraph::RenderTree(NodeId id) const {
  GEA_ASSIGN_OR_RETURN(const Node* root, GetNode(id));
  std::string out;
  // Iterative DFS with depth markers; nodes with multiple parents print
  // under each (like the thesis: a GAP table appears under both of its
  // SUMY parents).
  std::function<void(const Node&, int)> walk = [&](const Node& node,
                                                   int depth) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += node.name;
    out += " [";
    out += NodeKindName(node.kind);
    if (!node.operation.empty()) {
      out += ": ";
      out += node.operation;
    }
    if (!node.has_contents) out += ", contents dropped";
    out += "]\n";
    for (NodeId child : node.children) {
      auto it = nodes_.find(child);
      if (it != nodes_.end()) walk(it->second, depth + 1);
    }
  };
  walk(*root, 0);
  return out;
}

std::vector<LineageGraph::NodeId> LineageGraph::Roots() const {
  std::vector<NodeId> roots;
  for (const auto& [id, node] : nodes_) {
    if (node.parents.empty()) roots.push_back(id);
  }
  return roots;
}

namespace {

Result<NodeKind> ParseNodeKind(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(NodeKind::kCompareGap); ++k) {
    NodeKind kind = static_cast<NodeKind>(k);
    if (name == NodeKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown lineage node kind: " + name);
}

}  // namespace

LineageGraph::RelExport LineageGraph::Export() const {
  rel::Table nodes("LineageNodes",
                   rel::Schema({{"Id", rel::ValueType::kInt},
                                {"Name", rel::ValueType::kString},
                                {"Kind", rel::ValueType::kString},
                                {"Operation", rel::ValueType::kString},
                                {"Comment", rel::ValueType::kString},
                                {"HasContents", rel::ValueType::kInt}}));
  rel::Table params("LineageParams",
                    rel::Schema({{"Id", rel::ValueType::kInt},
                                 {"Key", rel::ValueType::kString},
                                 {"Value", rel::ValueType::kString}}));
  rel::Table edges("LineageEdges",
                   rel::Schema({{"Parent", rel::ValueType::kInt},
                                {"Child", rel::ValueType::kInt}}));
  for (const auto& [id, node] : nodes_) {
    nodes.AppendRowUnchecked(
        {rel::Value::Int(static_cast<int64_t>(id)),
         rel::Value::String(node.name),
         rel::Value::String(NodeKindName(node.kind)),
         rel::Value::String(node.operation),
         rel::Value::String(node.comment),
         rel::Value::Int(node.has_contents ? 1 : 0)});
    for (const auto& [key, value] : node.parameters) {
      params.AppendRowUnchecked({rel::Value::Int(static_cast<int64_t>(id)),
                                 rel::Value::String(key),
                                 rel::Value::String(value)});
    }
    for (NodeId parent : node.parents) {
      edges.AppendRowUnchecked(
          {rel::Value::Int(static_cast<int64_t>(parent)),
           rel::Value::Int(static_cast<int64_t>(id))});
    }
  }
  return {std::move(nodes), std::move(params), std::move(edges)};
}

Result<LineageGraph> LineageGraph::Import(const rel::Table& nodes,
                                          const rel::Table& params,
                                          const rel::Table& edges) {
  LineageGraph graph;
  for (size_t r1_ = 0; r1_ < nodes.NumRows(); ++r1_) {
    const rel::Row row = nodes.GetRow(r1_);
    if (row.size() != 6) {
      return Status::InvalidArgument("bad LineageNodes row arity");
    }
    Node node;
    node.id = static_cast<NodeId>(row[0].AsInt());
    node.name = row[1].AsString();
    GEA_ASSIGN_OR_RETURN(node.kind, ParseNodeKind(row[2].AsString()));
    node.operation = row[3].AsString();
    node.comment = row[4].AsString();
    node.has_contents = row[5].AsInt() != 0;
    if (node.name.empty()) {
      return Status::InvalidArgument("lineage node with empty name");
    }
    if (!graph.by_name_.emplace(node.name, node.id).second) {
      return Status::InvalidArgument("duplicate lineage node name: " +
                                     node.name);
    }
    NodeId id = node.id;
    if (!graph.nodes_.emplace(id, std::move(node)).second) {
      return Status::InvalidArgument("duplicate lineage node id: " +
                                     std::to_string(id));
    }
    graph.next_id_ = std::max(graph.next_id_, id + 1);
  }
  for (size_t r2_ = 0; r2_ < params.NumRows(); ++r2_) {
    const rel::Row row = params.GetRow(r2_);
    auto it = graph.nodes_.find(static_cast<NodeId>(row[0].AsInt()));
    if (it == graph.nodes_.end()) {
      return Status::InvalidArgument("LineageParams references unknown id");
    }
    it->second.parameters[row[1].AsString()] = row[2].AsString();
  }
  for (size_t r3_ = 0; r3_ < edges.NumRows(); ++r3_) {
    const rel::Row row = edges.GetRow(r3_);
    NodeId parent = static_cast<NodeId>(row[0].AsInt());
    NodeId child = static_cast<NodeId>(row[1].AsInt());
    auto pit = graph.nodes_.find(parent);
    auto cit = graph.nodes_.find(child);
    if (pit == graph.nodes_.end() || cit == graph.nodes_.end()) {
      return Status::InvalidArgument("LineageEdges references unknown id");
    }
    pit->second.children.push_back(child);
    cit->second.parents.push_back(parent);
  }
  return graph;
}

}  // namespace gea::lineage
