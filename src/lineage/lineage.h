#ifndef GEA_LINEAGE_LINEAGE_H_
#define GEA_LINEAGE_LINEAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"

namespace gea::lineage {

/// Kind of derived object a lineage node describes (the folders of
/// Fig. 4.18).
enum class NodeKind {
  kDataSet = 0,  // a tissue-type or user-defined ENUM data set
  kFascicle,     // one mined fascicle
  kSumy,
  kEnum,
  kGap,
  kTopGap,
  kCompareGap,
};

const char* NodeKindName(NodeKind kind);

/// The lineage feature of Section 4.4.2: a provenance DAG recording, for
/// every derived table, which operation created it, with what parameters,
/// from which inputs, plus free-form user comments. It supports the
/// Fig. 4.18 interactions: viewing a node's metadata, deleting only a
/// node's contents (keeping the metadata for regeneration), and deleting
/// a node together with everything derived from it.
class LineageGraph {
 public:
  using NodeId = uint64_t;

  struct Node {
    NodeId id = 0;
    std::string name;           // e.g. "brain25k_3CancerFasTbl"
    NodeKind kind = NodeKind::kDataSet;
    std::string operation;      // e.g. "fascicles", "diff", "top_gap"
    /// Operation parameters, e.g. {"compact_dimension","25000"},
    /// {"metadata","brainfile.meta"}.
    std::map<std::string, std::string> parameters;
    std::string comment;        // the Fig. 4.18 "User Comment"
    std::vector<NodeId> parents;
    std::vector<NodeId> children;
    /// False after a contents-only delete; the metadata stays usable for
    /// regeneration.
    bool has_contents = true;
  };

  LineageGraph() = default;

  /// Records a new derived object. Unknown parent ids fail with NotFound;
  /// duplicate names fail with AlreadyExists (names identify tables).
  Result<NodeId> AddNode(const std::string& name, NodeKind kind,
                         const std::string& operation,
                         std::map<std::string, std::string> parameters,
                         const std::vector<NodeId>& parents);

  Result<const Node*> GetNode(NodeId id) const;
  Result<NodeId> FindByName(const std::string& name) const;

  /// Attaches / replaces the user comment.
  Status SetComment(NodeId id, const std::string& comment);

  /// First deletion option of Section 4.4.2: drop the node's contents but
  /// keep its metadata so it can be regenerated. `on_drop` (optional) is
  /// called with the node's name so the caller can free the actual table.
  Status DeleteContents(NodeId id,
                        const std::function<void(const std::string&)>&
                            on_drop = nullptr);

  /// Second deletion option: remove the node, its metadata, and every
  /// node derived from it (transitively). `on_drop` is called for each
  /// removed node's name.
  Status DeleteCascade(NodeId id,
                       const std::function<void(const std::string&)>&
                           on_drop = nullptr);

  /// Children of `id` (the tables generated from it).
  Result<std::vector<NodeId>> Children(NodeId id) const;

  /// Formats the subtree under `id` like the Fig. 4.18 explorer panel.
  Result<std::string> RenderTree(NodeId id) const;

  size_t NumNodes() const { return nodes_.size(); }

  /// Ids of all root nodes (no parents), in creation order.
  std::vector<NodeId> Roots() const;

  /// Relational serialization (the thesis stores the operation history in
  /// the database; see Appendix IV tables FasFile/GapInfo/TopRec etc.).
  struct RelExport {
    rel::Table nodes;   // Id:int, Name, Kind, Operation, Comment,
                        // HasContents:int
    rel::Table params;  // Id:int, Key, Value
    rel::Table edges;   // Parent:int, Child:int
  };

  /// Exports the whole graph as three relations.
  RelExport Export() const;

  /// Rebuilds a graph from an Export()'s relations. Node ids are
  /// preserved; the next fresh id continues after the maximum.
  static Result<LineageGraph> Import(const rel::Table& nodes,
                                     const rel::Table& params,
                                     const rel::Table& edges);

 private:
  std::map<NodeId, Node> nodes_;
  std::map<std::string, NodeId> by_name_;
  NodeId next_id_ = 1;
};

}  // namespace gea::lineage

#endif  // GEA_LINEAGE_LINEAGE_H_
