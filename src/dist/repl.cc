#include "dist/repl.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/statviews.h"
#include "rel/schema.h"
#include "rel/table.h"
#include "serve/protocol.h"
#include "store/format.h"

namespace gea::dist {

namespace {

/// The view name; mirrors the obs::kStat*View constants. Declared here
/// rather than in obs so the view only exists in binaries linking dist.
constexpr const char* kStatReplicationView = "gea_stat_replication";

obs::Counter& FramesShipped() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.repl.frames_shipped");
  return c;
}
obs::Counter& BytesShipped() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.repl.bytes_shipped");
  return c;
}
obs::Counter& SnapshotsServed() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.repl.snapshots_served");
  return c;
}

// ---- The gea_stat_replication view ----
// Same static-registration idiom as gea_stat_serve: live sources register
// while they exist; the provider materializes one row per source. The
// view only registers in binaries that reference this object file (i.e.
// link gea_dist), so binaries without replication keep their view count.

std::mutex g_sources_mu;
std::map<const void*, std::function<ReplicationStatRow()>>& Sources() {
  static auto* sources =
      new std::map<const void*, std::function<ReplicationStatRow()>>();
  return *sources;
}

rel::Table ReplicationStatTable() {
  rel::Table table(
      kStatReplicationView,
      rel::Schema({{"role", rel::ValueType::kString},
                   {"port", rel::ValueType::kInt},
                   {"shipped_lsn", rel::ValueType::kInt},
                   {"applied_lsn", rel::ValueType::kInt},
                   {"lag_records", rel::ValueType::kInt},
                   {"lag_bytes", rel::ValueType::kInt},
                   {"lag_ms", rel::ValueType::kInt}}));
  std::lock_guard<std::mutex> lock(g_sources_mu);
  for (const auto& [token, source] : Sources()) {
    const ReplicationStatRow row = source();
    table.AppendRowUnchecked(
        {rel::Value::String(row.role), rel::Value::Int(row.port),
         rel::Value::Int(static_cast<int64_t>(row.shipped_lsn)),
         rel::Value::Int(static_cast<int64_t>(row.applied_lsn)),
         rel::Value::Int(static_cast<int64_t>(row.lag_records)),
         rel::Value::Int(static_cast<int64_t>(row.lag_bytes)),
         rel::Value::Int(static_cast<int64_t>(row.lag_ms))});
  }
  return table;
}

const bool g_replication_view_registered = [] {
  obs::RegisterStatViewProvider(kStatReplicationView, ReplicationStatTable);
  return true;
}();

Result<uint64_t> GetU64Param(const serve::Request& request,
                             const std::string& key, uint64_t fallback,
                             bool required) {
  auto it = request.params.find(key);
  if (it == request.params.end()) {
    if (required) {
      return Status::InvalidArgument("missing parameter: " + key);
    }
    return fallback;
  }
  char* end = nullptr;
  const uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("parameter " + key +
                                   " is not an unsigned integer");
  }
  return value;
}

}  // namespace

void RegisterReplicationStatSource(const void* token,
                                   std::function<ReplicationStatRow()> source) {
  std::lock_guard<std::mutex> lock(g_sources_mu);
  Sources()[token] = std::move(source);
}

void UnregisterReplicationStatSource(const void* token) {
  std::lock_guard<std::mutex> lock(g_sources_mu);
  Sources().erase(token);
}

// ---- Blob codecs ----

std::string EncodeFrameBatch(const FrameBatch& batch) {
  std::string blob;
  store::PutU64(&blob, batch.durable_lsn);
  store::PutU32(&blob, static_cast<uint32_t>(batch.frames.size()));
  for (const ShippedFrame& frame : batch.frames) {
    store::PutU64(&blob, frame.lsn);
    store::PutString(&blob, store::EncodeWalRecord(frame.record));
  }
  return blob;
}

Result<FrameBatch> DecodeFrameBatch(std::string_view blob) {
  store::ByteReader reader(blob);
  FrameBatch batch;
  GEA_ASSIGN_OR_RETURN(batch.durable_lsn, reader.ReadU64());
  GEA_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  batch.frames.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShippedFrame frame;
    GEA_ASSIGN_OR_RETURN(frame.lsn, reader.ReadU64());
    GEA_ASSIGN_OR_RETURN(std::string framed, reader.ReadString());
    store::ByteReader frame_reader(framed);
    GEA_ASSIGN_OR_RETURN(uint32_t length, frame_reader.ReadU32());
    GEA_ASSIGN_OR_RETURN(uint32_t crc, frame_reader.ReadU32());
    if (frame_reader.remaining() != length) {
      return Status::IoError("shipped WAL frame length mismatch");
    }
    const std::string_view body(framed.data() + frame_reader.position(),
                                length);
    if (Crc32(body) != crc) {
      return Status::IoError("shipped WAL frame failed its CRC check");
    }
    GEA_ASSIGN_OR_RETURN(frame.record, store::DecodeWalRecordBody(body));
    batch.frames.push_back(std::move(frame));
  }
  if (!reader.Done()) {
    return Status::IoError("trailing bytes after frame batch");
  }
  return batch;
}

std::string EncodeSnapshotLsnBlob(uint64_t lsn, std::string_view snapshot) {
  std::string blob;
  store::PutU64(&blob, lsn);
  store::PutString(&blob, snapshot);
  return blob;
}

Result<std::pair<uint64_t, std::string>> DecodeSnapshotLsnBlob(
    std::string_view blob) {
  store::ByteReader reader(blob);
  GEA_ASSIGN_OR_RETURN(uint64_t lsn, reader.ReadU64());
  GEA_ASSIGN_OR_RETURN(std::string snapshot, reader.ReadString());
  if (!reader.Done()) {
    return Status::IoError("trailing bytes after snapshot blob");
  }
  return std::make_pair(lsn, std::move(snapshot));
}

// ---- ReplicationHub ----

ReplicationHub::ReplicationHub(workbench::AnalysisSession* session,
                               serve::QueryServer* server, Options options)
    : session_(session), server_(server), options_(options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Records appended before the hub attached were never buffered, so
    // every follower starting below the current LSN must snapshot first.
    shipped_lsn_ = session_->DurableLsn();
    floor_lsn_ = shipped_lsn_;
  }
  session_->SetWalObserver(
      [this](uint64_t lsn, const store::WalRecord& record) {
        OnWalAppend(lsn, record);
      });
  const serve::QueryServer::HandlerSpec control{
      /*mutating=*/false, /*needs_auth=*/true, /*admin_only=*/true,
      /*allow_on_replica=*/false, /*needs_session_lock=*/true};
  serve::QueryServer::HandlerSpec poll = control;
  // The long-poll must not hold the session lock: it waits for an append
  // that needs the exclusive lock.
  poll.needs_session_lock = false;
  server_->RegisterHandler(
      "repl_subscribe", control,
      [this](const serve::Request& r) { return HandleSubscribe(r); });
  server_->RegisterHandler(
      "repl_frames", poll,
      [this](const serve::Request& r) { return HandleFrames(r); });
  server_->RegisterHandler(
      "repl_snapshot", control,
      [this](const serve::Request& r) { return HandleSnapshot(r); });
  RegisterReplicationStatSource(this, [this] {
    ReplicationStatRow row;
    row.role = "primary";
    row.port = server_->Port();
    std::lock_guard<std::mutex> lock(mu_);
    row.shipped_lsn = shipped_lsn_;
    row.lag_bytes = buffered_bytes_;
    return row;
  });
}

ReplicationHub::~ReplicationHub() {
  UnregisterReplicationStatSource(this);
  session_->SetWalObserver({});
  cv_.notify_all();
}

uint64_t ReplicationHub::FloorLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return floor_lsn_;
}

uint64_t ReplicationHub::ShippedLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shipped_lsn_;
}

uint64_t ReplicationHub::BufferedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_bytes_;
}

void ReplicationHub::OnWalAppend(uint64_t lsn,
                                 const store::WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.type == store::WalRecord::Type::kCheckpoint &&
      record.op == "state_reset") {
    // The session's state was bulk-replaced outside the WAL: nothing a
    // follower applied so far is still valid, and nothing buffered here
    // can bridge the gap. Raise the floor so everyone re-snapshots.
    buffer_.clear();
    buffered_bytes_ = 0;
    floor_lsn_ = lsn;
    if (lsn > shipped_lsn_) shipped_lsn_ = lsn;
    cv_.notify_all();
    return;
  }
  BufferedFrame frame{lsn, store::EncodeWalRecord(record)};
  buffered_bytes_ += frame.framed.size();
  BytesShipped().Add(static_cast<int64_t>(frame.framed.size()));
  FramesShipped().Add(1);
  buffer_.push_back(std::move(frame));
  shipped_lsn_ = lsn;
  while (buffered_bytes_ > options_.max_buffer_bytes && !buffer_.empty()) {
    // Evicting a frame puts its LSN out of reach: followers behind the
    // evicted prefix fall back to snapshot catch-up.
    buffered_bytes_ -= buffer_.front().framed.size();
    floor_lsn_ = buffer_.front().lsn;
    buffer_.pop_front();
  }
  cv_.notify_all();
}

serve::Response ReplicationHub::HandleSubscribe(
    const serve::Request& request) {
  (void)request;
  serve::Response response;
  rel::Table table("repl_subscribe",
                   rel::Schema({{"name", rel::ValueType::kString},
                                {"value", rel::ValueType::kString}}));
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t buffer_first = buffer_.empty() ? 0 : buffer_.front().lsn;
  table.AppendRowUnchecked({rel::Value::String("durable_lsn"),
                            rel::Value::String(std::to_string(shipped_lsn_))});
  table.AppendRowUnchecked({rel::Value::String("floor_lsn"),
                            rel::Value::String(std::to_string(floor_lsn_))});
  table.AppendRowUnchecked({rel::Value::String("buffer_first_lsn"),
                            rel::Value::String(std::to_string(buffer_first))});
  response.table = std::move(table);
  return response;
}

serve::Response ReplicationHub::HandleFrames(const serve::Request& request) {
  auto fail = [&](const Status& status) {
    return serve::ErrorResponse(request.request_id, status);
  };
  Result<uint64_t> from = GetU64Param(request, "from_lsn", 0, true);
  if (!from.ok()) return fail(from.status());
  Result<uint64_t> wait_ms = GetU64Param(request, "wait_ms", 500, false);
  if (!wait_ms.ok()) return fail(wait_ms.status());

  std::unique_lock<std::mutex> lock(mu_);
  auto covered = [&] {
    if (*from < floor_lsn_) return false;
    if (buffer_.empty()) return *from >= shipped_lsn_;
    return *from + 1 >= buffer_.front().lsn;
  };
  if (!covered()) {
    return fail(Status::FailedPrecondition(
        "snapshot catch-up required: follower at lsn " +
        std::to_string(*from) + ", shippable history starts after lsn " +
        std::to_string(floor_lsn_)));
  }
  if (shipped_lsn_ <= *from) {
    // Long-poll: bounded wait for the next acknowledged append. The
    // handler holds no session lock (see HandlerSpec), so the append can
    // proceed and wake us.
    cv_.wait_for(lock, std::chrono::milliseconds(
                           std::min<uint64_t>(*wait_ms, 60'000)),
                 [&] { return shipped_lsn_ > *from; });
    if (!covered()) {
      return fail(Status::FailedPrecondition(
          "snapshot catch-up required: follower at lsn " +
          std::to_string(*from) + ", shippable history starts after lsn " +
          std::to_string(floor_lsn_)));
    }
  }
  // Cut the batch straight from the buffered framed bytes — the blob
  // layout matches EncodeFrameBatch, without a decode/re-encode round.
  std::vector<const BufferedFrame*> picked;
  size_t bytes = 0;
  for (const BufferedFrame& frame : buffer_) {
    if (frame.lsn <= *from) continue;
    if (!picked.empty() &&
        bytes + frame.framed.size() > options_.max_batch_bytes) {
      break;
    }
    bytes += frame.framed.size();
    picked.push_back(&frame);
  }
  std::string blob;
  store::PutU64(&blob, shipped_lsn_);
  store::PutU32(&blob, static_cast<uint32_t>(picked.size()));
  for (const BufferedFrame* frame : picked) {
    store::PutU64(&blob, frame->lsn);
    store::PutString(&blob, frame->framed);
  }
  serve::Response response;
  response.text = std::move(blob);
  return response;
}

serve::Response ReplicationHub::HandleSnapshot(const serve::Request& request) {
  (void)request;
  // Runs under the shared session lock (HandlerSpec), so the exported
  // catalog and its LSN are mutually consistent: mutations take the
  // exclusive lock.
  SnapshotsServed().Add(1);
  serve::Response response;
  response.text =
      EncodeSnapshotLsnBlob(session_->DurableLsn(),
                            session_->ExportSnapshotBlob());
  return response;
}

}  // namespace gea::dist
