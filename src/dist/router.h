#ifndef GEA_DIST_ROUTER_H_
#define GEA_DIST_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workbench/session.h"

namespace gea::dist {

/// Scatter-gather front end over N shard workers (the sharding half of
/// src/dist). Each worker is an ordinary GEA server whose session loaded
/// one PartitionDataSet slice — every library, a disjoint share of the
/// tag universe. The router speaks the same wire protocol as a
/// single-node server and re-expresses per-tag commands as fan-outs:
///
///   broadcast  tissue_dataset, custom_dataset, generate_metadata,
///              aggregate, diff/create_gap, compare_gaps, gap_query —
///              per-tag decomposable; run on every shard, results stay
///              sharded.
///   top_gap    two-phase: every shard computes its local top-x
///              candidates, the router merges them in tag order and
///              re-runs the identical selection — provably equal to the
///              single-node top-x (a globally-top row is top-x in its
///              shard).
///   get_table / sql  fan out and k-way merge by TagNo when the result
///              carries a TagNo column; if not, the shard results must
///              agree byte-for-byte (shard-invariant relations such as
///              Typeinfo) or the command is not routable.
///   tables     name union across shards plus router-materialized names.
///   rejected   populate, mine/fascicles, checkpoint — cross-tag
///              conjunctions or per-store operations that cannot be
///              decomposed by tag; fail FailedPrecondition.
///
/// Every fan-out runs shard calls in parallel with a per-shard deadline;
/// a shard failure surfaces as that shard's error, tagged with its
/// index. The merged wire bytes are pinned to single-node execution by
/// the dist_merge differential battery.
class RouterServer {
 public:
  struct Options {
    /// Shard worker endpoints, in shard order (ShardOfTag index i =>
    /// worker_ports[i]).
    std::vector<int> worker_ports;
    /// Credentials the router presents to each worker.
    std::string worker_user;
    std::string worker_password;
    std::string worker_level = "admin";
    /// Local admin bootstrap for the router's stub session.
    std::string admin_user = "router";
    std::string admin_password = "router-secret";
    /// Serving options for the router's own QueryServer.
    serve::ServerOptions server;
    /// Deadline applied to every per-shard call of a fan-out.
    uint32_t shard_deadline_ms = 10'000;
  };

  explicit RouterServer(Options options);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  Status Start();
  void Stop();

  int Port() const { return server_.Port(); }
  size_t NumShards() const { return workers_.size(); }

  serve::QueryServer& server() { return server_; }

 private:
  struct Worker {
    int port = 0;
    std::mutex mu;  // serializes use of the one synchronous client
    serve::QueryClient client;
  };

  /// Calls `op` on every shard in parallel (one thread per shard, joined
  /// before returning). result[i] is shard i's response or error.
  std::vector<Result<serve::Response>> FanOut(
      const std::string& op,
      const std::map<std::string, std::string>& params);
  /// Ensures the worker's client is connected and authenticated.
  Status EnsureConnected(Worker& worker);

  serve::Response HandleBroadcast(const serve::Request& request);
  serve::Response HandleTopGap(const serve::Request& request);
  serve::Response HandleTableRead(const serve::Request& request);
  serve::Response HandleTables(const serve::Request& request);
  serve::Response HandleShards(const serve::Request& request);

  /// Fetches `name` from every shard and merges (TagNo merge or
  /// identical-bytes passthrough).
  Result<rel::Table> FetchMerged(const std::string& op,
                                 const std::map<std::string, std::string>&
                                     params);

  Options options_;
  workbench::AnalysisSession session_;  // stub; never holds data
  serve::QueryServer server_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool running_ = false;

  /// Tables the router materialized itself (merged top-gap results),
  /// served by get_table ahead of the shard fan-out.
  std::mutex cache_mu_;
  std::map<std::string, rel::Table> cache_;
};

}  // namespace gea::dist

#endif  // GEA_DIST_ROUTER_H_
