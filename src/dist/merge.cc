#include "dist/merge.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/trace.h"

namespace gea::dist {

Result<rel::Table> MergeByTagNo(const std::string& name,
                                const std::vector<rel::Table>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("MergeByTagNo requires at least one part");
  }
  obs::TraceSpan span("dist_merge");
  const rel::Schema& schema = parts[0].schema();
  GEA_ASSIGN_OR_RETURN(size_t tag_col, schema.ColumnIndex("TagNo"));
  if (schema.column(tag_col).type != rel::ValueType::kInt) {
    return Status::InvalidArgument("TagNo column must be int");
  }
  for (size_t p = 1; p < parts.size(); ++p) {
    if (!(parts[p].schema() == schema)) {
      return Status::InvalidArgument(
          "shard partial '" + parts[p].name() + "' schema (" +
          parts[p].schema().ToString() + ") differs from '" +
          parts[0].name() + "' (" + schema.ToString() + ")");
    }
  }

  rel::Table merged(name, schema);
  size_t total = 0;
  for (const rel::Table& part : parts) total += part.NumRows();
  merged.Reserve(total);

  // K-way merge on the TagNo key. Shard counts are small (2-16), so a
  // linear min scan beats heap bookkeeping.
  std::vector<size_t> cursor(parts.size(), 0);
  int64_t last_tag = INT64_MIN;
  while (true) {
    size_t best = parts.size();
    int64_t best_tag = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      if (cursor[p] >= parts[p].NumRows()) continue;
      const int64_t tag = parts[p].At(cursor[p], tag_col).AsInt();
      if (best == parts.size() || tag < best_tag) {
        best = p;
        best_tag = tag;
      } else if (tag == best_tag) {
        return Status::InvalidArgument(
            "duplicate TagNo " + std::to_string(tag) +
            " across shard partials — shards are not tag-disjoint");
      }
    }
    if (best == parts.size()) break;
    if (best_tag <= last_tag) {
      if (best_tag == last_tag) {
        return Status::InvalidArgument(
            "duplicate TagNo " + std::to_string(best_tag) +
            " across shard partials — shards are not tag-disjoint");
      }
      return Status::InvalidArgument(
          "shard partial '" + parts[best].name() +
          "' is not TagNo-ascending");
    }
    last_tag = best_tag;
    merged.AppendRowUnchecked(parts[best].GetRow(cursor[best]));
    ++cursor[best];
  }
  return merged;
}

Result<rel::Table> SelectTopGapRows(const rel::Table& merged, size_t x,
                                    core::TopGapMode mode,
                                    const std::string& name) {
  if (x == 0) {
    return Status::InvalidArgument("top-x requires x >= 1");
  }
  if (merged.NumColumns() < 3) {
    return Status::InvalidArgument(
        "top-gap candidates need TagName, TagNo and a gap column");
  }
  obs::TraceSpan span("dist_top_gap_select");
  // Mirror core::TopGap exactly: rank valid rows of the first gap column
  // (rel column 2) by the mode's key, stable-descending so ties keep tag
  // order, cut to x, then emit in ascending tag (= row) order.
  const size_t gap_col = 2;
  std::vector<size_t> ranked;
  ranked.reserve(merged.NumRows());
  for (size_t i = 0; i < merged.NumRows(); ++i) {
    if (!merged.At(i, gap_col).is_null()) ranked.push_back(i);
  }
  auto key = [&merged, mode](size_t i) {
    const double gap = merged.At(i, gap_col).AsDouble();
    switch (mode) {
      case core::TopGapMode::kLargestMagnitude:
        return std::abs(gap);
      case core::TopGapMode::kHighest:
        return gap;
      case core::TopGapMode::kLowest:
        return -gap;
    }
    return gap;
  };
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](size_t a, size_t b) { return key(a) > key(b); });
  if (ranked.size() > x) ranked.resize(x);
  std::sort(ranked.begin(), ranked.end());

  rel::Table result(name, merged.schema());
  result.Reserve(ranked.size());
  for (size_t i : ranked) {
    result.AppendRowUnchecked(merged.GetRow(i));
  }
  return result;
}

}  // namespace gea::dist
