#include "dist/partition.h"

namespace gea::dist {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t ShardOfTag(sage::TagId tag, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(SplitMix64(tag) % num_shards);
}

sage::SageDataSet PartitionDataSet(const sage::SageDataSet& dataset,
                                   size_t shard, size_t num_shards) {
  sage::SageDataSet slice;
  for (const sage::SageLibrary& library : dataset.libraries()) {
    sage::SageLibrary copy(library.id(), library.name(), library.tissue(),
                           library.state(), library.source());
    for (const sage::SageLibrary::Entry& entry : library.entries()) {
      if (ShardOfTag(entry.tag, num_shards) == shard) {
        copy.SetCount(entry.tag, entry.count);
      }
    }
    slice.AddLibrary(std::move(copy));
  }
  return slice;
}

}  // namespace gea::dist
