#ifndef GEA_DIST_PARTITION_H_
#define GEA_DIST_PARTITION_H_

#include <cstddef>
#include <cstdint>

#include "sage/dataset.h"
#include "sage/tag_codec.h"

namespace gea::dist {

/// Tag placement for the scatter-gather router: the ENUM matrix is
/// hash-partitioned *by tag* across N worker shards, so every shard holds
/// every library but only its share of the tag universe. Per-tag operators
/// (aggregate, diff, top-gap candidates, TAGS scans) then decompose into
/// independent per-shard runs whose results merge back in tag order.

/// splitmix64 finalizer — a cheap, well-mixed 64-bit hash. Stable across
/// platforms and releases: shard placement is part of a deployment's
/// on-disk/contractual state, so this function must never change.
uint64_t SplitMix64(uint64_t x);

/// The owning shard of `tag` among `num_shards` (num_shards >= 1).
size_t ShardOfTag(sage::TagId tag, size_t num_shards);

/// The slice of `dataset` owned by `shard`: every library is kept (ids,
/// names, tissue/state/source metadata — so Typeinfo and library-level
/// lookups answer identically on every shard), but each library's entries
/// are restricted to the tags ShardOfTag assigns to `shard`. A library
/// with no owned tags stays in the slice with zero entries.
sage::SageDataSet PartitionDataSet(const sage::SageDataSet& dataset,
                                   size_t shard, size_t num_shards);

}  // namespace gea::dist

#endif  // GEA_DIST_PARTITION_H_
