#ifndef GEA_DIST_REPL_H_
#define GEA_DIST_REPL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "serve/server.h"
#include "store/wal.h"
#include "workbench/session.h"

namespace gea::dist {

/// Primary-side WAL shipping (the replication half of src/dist).
///
/// The model is single-primary, pull-based: followers long-poll the
/// primary over the ordinary query-service wire protocol with three
/// admin-only commands the ReplicationHub registers on the primary's
/// QueryServer:
///
///   repl_subscribe                      -> (name, value) handshake rows:
///                                          durable_lsn, floor_lsn,
///                                          buffer_first_lsn
///   repl_frames    from_lsn, [wait_ms]  -> frame batch blob (text); long-
///                                          polls until a frame past
///                                          from_lsn exists or wait_ms
///                                          elapses (empty batch). Fails
///                                          FailedPrecondition("snapshot
///                                          catch-up required") when
///                                          from_lsn predates the ship
///                                          buffer or the snapshot floor.
///   repl_snapshot                       -> snapshot blob (text): the whole
///                                          catalog plus its LSN, for cold
///                                          or lapped followers.
///
/// Frames enter the hub through the session's WAL observer, which fires
/// only for *acknowledged* (fsynced) appends — a follower can never see a
/// record the primary might lose in a crash. Under group commit
/// (src/txn/group_commit.h) the observer fires once per record, in LSN
/// order, after the batch's one shared fsync returns; a batch that dies
/// between its write and that fsync ships nothing, because none of its
/// records were ever acknowledged. A bulk state replacement that
/// bypasses the WAL (LoadDatabase) raises the snapshot floor so every
/// follower is forced back through repl_snapshot.

/// One shipped WAL frame: the record plus its primary-assigned LSN.
struct ShippedFrame {
  uint64_t lsn = 0;
  store::WalRecord record;
};

/// A repl_frames response payload.
struct FrameBatch {
  /// The primary's durable LSN when the batch was cut (lag math).
  uint64_t durable_lsn = 0;
  std::vector<ShippedFrame> frames;
};

/// Frame-batch blob codec: u64 durable_lsn, u32 count, then per frame a
/// u64 LSN and the record in its WAL framing (length + CRC32 + body), so
/// the wire reuses the log's own integrity check.
std::string EncodeFrameBatch(const FrameBatch& batch);
Result<FrameBatch> DecodeFrameBatch(std::string_view blob);

/// Snapshot blob codec: u64 lsn then the EncodeSnapshot bytes.
std::string EncodeSnapshotLsnBlob(uint64_t lsn, std::string_view snapshot);
Result<std::pair<uint64_t, std::string>> DecodeSnapshotLsnBlob(
    std::string_view blob);

/// One row of the gea_stat_replication view; hubs and replica servers
/// register a provider for their row while they live.
struct ReplicationStatRow {
  std::string role;          // "primary" / "replica"
  int64_t port = 0;          // serving port (0 when not serving)
  uint64_t shipped_lsn = 0;  // primary: last acknowledged LSN observed
  uint64_t applied_lsn = 0;  // replica: last applied LSN
  uint64_t lag_records = 0;  // replica: primary durable - applied
  uint64_t lag_bytes = 0;    // primary: ship-buffer bytes; replica: unapplied
  uint64_t lag_ms = 0;       // replica: ms since last applied frame when behind
};

/// Registers/removes a live row source for gea_stat_replication. `token`
/// identifies the registration (the registering object's address).
void RegisterReplicationStatSource(const void* token,
                                   std::function<ReplicationStatRow()> source);
void UnregisterReplicationStatSource(const void* token);

/// Tuning knobs for ReplicationHub (namespace scope so the constructor's
/// default argument can brace-initialize it).
struct ReplicationHubOptions {
  size_t max_buffer_bytes = 64u << 20;
  /// Per-batch payload cap (stays under the wire's 16 MiB frame cap).
  size_t max_batch_bytes = 4u << 20;
};

/// Attaches WAL shipping to a primary: installs the session WAL observer
/// and registers the repl_* commands on `server`. Construct after the
/// session is fully set up and before server->Start(); destroy after the
/// server stops. The hub buffers acknowledged frames up to
/// `max_buffer_bytes`; followers that fall behind the buffer are redirected
/// to snapshot catch-up.
class ReplicationHub {
 public:
  using Options = ReplicationHubOptions;

  ReplicationHub(workbench::AnalysisSession* session,
                 serve::QueryServer* server, Options options = {});
  ~ReplicationHub();

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// Followers whose applied LSN is below the floor must snapshot.
  uint64_t FloorLsn() const;
  /// Last acknowledged LSN the hub has observed.
  uint64_t ShippedLsn() const;
  /// Bytes currently buffered for shipping.
  uint64_t BufferedBytes() const;

 private:
  void OnWalAppend(uint64_t lsn, const store::WalRecord& record);
  serve::Response HandleSubscribe(const serve::Request& request);
  serve::Response HandleFrames(const serve::Request& request);
  serve::Response HandleSnapshot(const serve::Request& request);

  workbench::AnalysisSession* session_;
  serve::QueryServer* server_;
  Options options_;

  struct BufferedFrame {
    uint64_t lsn;
    std::string framed;  // EncodeWalRecord bytes
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<BufferedFrame> buffer_;
  uint64_t buffered_bytes_ = 0;
  uint64_t shipped_lsn_ = 0;  // highest LSN observed (buffered or evicted)
  uint64_t floor_lsn_ = 0;    // applied < floor => snapshot required
};

}  // namespace gea::dist

#endif  // GEA_DIST_REPL_H_
