#ifndef GEA_DIST_MERGE_H_
#define GEA_DIST_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/gap_ops.h"
#include "rel/table.h"

namespace gea::dist {

/// Gather-side merges for the scatter-gather router. The invariant the
/// whole dist layer leans on: every tag-keyed relational rendering in GEA
/// (SUMY / GAP / ENUM rel tables, the TAGS view) stores its rows in
/// ascending TagNo order, and the router's shards partition the tag
/// universe disjointly. Merging shard partials back into global tag order
/// therefore reproduces the single-node row order *exactly* — the
/// differential battery pins the merged wire bytes to the single-session
/// bytes.

/// K-way merge of shard partials into ascending TagNo order. All parts
/// must share `parts[0]`'s schema, which must contain an int column named
/// `TagNo`; each part must itself be TagNo-ascending, and the parts must
/// be tag-disjoint (a duplicate TagNo across parts is an error — it means
/// the shards were not a partition). Empty parts are fine. The result is
/// named `name` and rebuilt row by row, so string dictionaries come out
/// in first-appearance order, exactly as a single node would build them.
Result<rel::Table> MergeByTagNo(const std::string& name,
                                const std::vector<rel::Table>& parts);

/// Re-runs core::TopGap's selection on a merged candidate table (the
/// TagNo-merge of per-shard top-x tables): rows whose first gap column
/// (column index 2 of the GAP rel rendering) is non-null are ranked by
/// the mode's key with a stable descending sort (ties keep tag order),
/// truncated to `x`, and emitted back in ascending tag order. Because
/// every globally-top row is top-x within its own shard, selecting from
/// the merged candidates provably equals selecting from the full table.
Result<rel::Table> SelectTopGapRows(const rel::Table& merged, size_t x,
                                    core::TopGapMode mode,
                                    const std::string& name);

}  // namespace gea::dist

#endif  // GEA_DIST_MERGE_H_
