#ifndef GEA_DIST_REPLICA_H_
#define GEA_DIST_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workbench/session.h"

namespace gea::dist {

/// A read-serving follower: owns a read-only AnalysisSession fronted by a
/// QueryServer in the kReplica role, and a puller thread that streams the
/// primary's acknowledged WAL frames (snapshot catch-up first when cold
/// or lapped) and replays them into the session under the server's own
/// exclusive session lock.
///
/// Reads (sql, tables, get_table, ...) serve normally; every mutating
/// command is rejected with FailedPrecondition by the role-aware
/// admission in QueryServer. Promotion — the wire command `promote`
/// (admin) or Promote() in-process — stops the puller, clears the
/// session's read-only flag and flips the role to kPrimary; from then on
/// the server accepts writes. The promoted state is exactly the
/// acknowledged prefix of the primary's WAL that reached this replica.
class ReplicaServer {
 public:
  struct Options {
    /// Local admin bootstrap (the session's own user database).
    std::string admin_user = "replicator";
    std::string admin_password = "replicator-secret";
    /// Primary endpoint + admin credentials there (repl_* are admin-only).
    int primary_port = 0;
    std::string primary_user;
    std::string primary_password;
    /// Serving options for this replica's own QueryServer.
    serve::ServerOptions server;
    /// Long-poll window per repl_frames call.
    uint32_t poll_wait_ms = 400;
    /// Backoff between reconnect attempts after a transport error.
    uint32_t retry_ms = 50;
  };

  explicit ReplicaServer(Options options);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Starts the local server and the replication puller.
  Status Start();
  /// Stops the puller and the server. Idempotent.
  void Stop();

  /// Ends replication and makes this node a writable primary.
  Status Promote();

  int Port() const { return server_.Port(); }
  uint64_t AppliedLsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  bool Promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }

  workbench::AnalysisSession& session() { return session_; }
  serve::QueryServer& server() { return server_; }

 private:
  void PullLoop();
  /// One catch-up + streaming attempt; returns on error (caller backs
  /// off and retries) or when stopping/promoted.
  Status PullOnce(serve::QueryClient& client);
  Status ApplySnapshotCatchup(serve::QueryClient& client);

  Options options_;
  workbench::AnalysisSession session_;
  serve::QueryServer server_;

  std::mutex lifecycle_mu_;  // serializes Start/Stop/Promote
  std::thread puller_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoted_{false};

  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> primary_durable_lsn_{0};
  std::atomic<uint64_t> unapplied_bytes_{0};
  std::atomic<uint64_t> last_apply_nanos_{0};
  std::atomic<uint64_t> snapshots_applied_{0};
};

}  // namespace gea::dist

#endif  // GEA_DIST_REPLICA_H_
