#include "dist/router.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <utility>

#include "dist/merge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "store/format.h"
#include "workbench/users.h"

namespace gea::dist {

namespace {

obs::Counter& Fanouts() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.router.fanouts");
  return c;
}
obs::Counter& ShardErrors() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.router.shard_errors");
  return c;
}

Status TagShard(size_t shard, const Status& status) {
  return Status(status.code(),
                "shard " + std::to_string(shard) + ": " + status.message());
}

/// Per-tag decomposable commands: running them independently on every
/// shard's tag slice is equivalent to running them once on the full set.
const char* const kBroadcastOps[] = {
    "tissue_dataset", "custom_dataset", "generate_metadata",
    "aggregate",      "diff",           "create_gap",
    "compare_gaps",   "gap_query",
};

/// Cross-tag or per-store commands a tag-sharded deployment cannot honor.
const char* const kRejectedOps[] = {"populate", "mine", "fascicles",
                                    "checkpoint"};

}  // namespace

RouterServer::RouterServer(Options options)
    : options_(std::move(options)),
      session_(options_.admin_user, options_.admin_password),
      server_(&session_, options_.server) {
  for (int port : options_.worker_ports) {
    auto worker = std::make_unique<Worker>();
    worker->port = port;
    workers_.push_back(std::move(worker));
  }
}

RouterServer::~RouterServer() { Stop(); }

Status RouterServer::Start() {
  if (running_) {
    return Status::FailedPrecondition("router already running");
  }
  if (workers_.empty()) {
    return Status::InvalidArgument("router needs at least one shard worker");
  }
  GEA_RETURN_IF_ERROR(session_.Login(options_.admin_user,
                                     options_.admin_password,
                                     workbench::AccessLevel::kAdministrator));
  server_.SetRole(serve::ServerRole::kRouter);
  server_.SetRoleInfoProvider([this] {
    std::map<std::string, std::string> info;
    info["shards"] = std::to_string(workers_.size());
    std::string ports;
    for (const auto& worker : workers_) {
      if (!ports.empty()) ports += ",";
      ports += std::to_string(worker->port);
    }
    info["worker_ports"] = ports;
    return info;
  });

  // Fan-out handlers run without the router's session lock: the stub
  // session is never touched, and per-worker mutexes serialize the
  // clients, so concurrent router requests overlap across shards.
  serve::QueryServer::HandlerSpec fanout_spec;
  fanout_spec.mutating = true;
  fanout_spec.needs_session_lock = false;
  for (const char* op : kBroadcastOps) {
    server_.RegisterHandler(op, fanout_spec, [this](
                                                 const serve::Request& r) {
      return HandleBroadcast(r);
    });
  }
  server_.RegisterHandler(
      "top_gap", fanout_spec,
      [this](const serve::Request& r) { return HandleTopGap(r); });

  serve::QueryServer::HandlerSpec read_spec;
  read_spec.needs_session_lock = false;
  server_.RegisterHandler(
      "sql", read_spec,
      [this](const serve::Request& r) { return HandleTableRead(r); });
  server_.RegisterHandler(
      "get_table", read_spec,
      [this](const serve::Request& r) { return HandleTableRead(r); });
  server_.RegisterHandler(
      "tables", read_spec,
      [this](const serve::Request& r) { return HandleTables(r); });
  server_.RegisterHandler(
      "shards", read_spec,
      [this](const serve::Request& r) { return HandleShards(r); });

  for (const char* op : kRejectedOps) {
    serve::QueryServer::HandlerSpec reject_spec;
    reject_spec.mutating = true;
    reject_spec.admin_only = std::string(op) == "checkpoint";
    const std::string name = op;
    server_.RegisterHandler(
        op, reject_spec, [name](const serve::Request& r) {
          return serve::ErrorResponse(
              r.request_id,
              Status::FailedPrecondition(
                  name +
                  " is not routable on a tag-sharded deployment; run it "
                  "on the shards directly"));
        });
  }

  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    GEA_RETURN_IF_ERROR(EnsureConnected(*worker));
  }
  GEA_RETURN_IF_ERROR(server_.Start());
  running_ = true;
  return Status::OK();
}

void RouterServer::Stop() {
  if (!running_) return;
  server_.Stop();
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->client.Close();
  }
  running_ = false;
}

Status RouterServer::EnsureConnected(Worker& worker) {
  if (worker.client.Connected()) return Status::OK();
  GEA_RETURN_IF_ERROR(worker.client.Connect(worker.port));
  worker.client.SetDeadlineMs(options_.shard_deadline_ms);
  return worker.client.Login(options_.worker_user, options_.worker_password,
                             options_.worker_level);
}

std::vector<Result<serve::Response>> RouterServer::FanOut(
    const std::string& op, const std::map<std::string, std::string>& params) {
  obs::TraceSpan span("router_fanout");
  Fanouts().Add(1);
  std::vector<Result<serve::Response>> results(
      workers_.size(), Status::Internal("fan-out did not run"));
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    threads.emplace_back([this, i, &op, &params, &results] {
      Worker& worker = *workers_[i];
      std::lock_guard<std::mutex> lock(worker.mu);
      if (Status status = EnsureConnected(worker); !status.ok()) {
        results[i] = status;
        return;
      }
      results[i] = worker.client.Call(op, params);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& result : results) {
    if (!result.ok() || !(*result).ok()) ShardErrors().Add(1);
  }
  return results;
}

serve::Response RouterServer::HandleBroadcast(const serve::Request& request) {
  std::vector<Result<serve::Response>> results =
      FanOut(request.op, request.params);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return serve::ErrorResponse(request.request_id,
                                  TagShard(i, results[i].status()));
    }
    if (!(*results[i]).ok()) {
      return serve::ErrorResponse(request.request_id,
                                  TagShard(i, (*results[i]).ToStatus()));
    }
  }
  // All shards agreed; shard 0's response already has the single-node
  // shape ("created <out>").
  serve::Response response = std::move(*results[0]);
  response.request_id = request.request_id;
  return response;
}

serve::Response RouterServer::HandleTopGap(const serve::Request& request) {
  auto fail = [&](const Status& status) {
    return serve::ErrorResponse(request.request_id, status);
  };
  // Parse x and mode exactly like the single-node dispatch, because the
  // gather side re-runs the selection locally.
  auto x_it = request.params.find("x");
  if (x_it == request.params.end()) {
    return fail(Status::InvalidArgument("missing parameter: x"));
  }
  char* end = nullptr;
  const long long x = std::strtoll(x_it->second.c_str(), &end, 10);
  if (end == x_it->second.c_str() || *end != '\0' || x < 0) {
    return fail(Status::InvalidArgument("x must be >= 0"));
  }
  core::TopGapMode mode = core::TopGapMode::kLargestMagnitude;
  if (auto mode_it = request.params.find("mode");
      mode_it != request.params.end()) {
    const long long m = std::strtoll(mode_it->second.c_str(), &end, 10);
    if (end == mode_it->second.c_str() || *end != '\0' || m < 0 || m > 2) {
      return fail(Status::InvalidArgument("mode must be in 0..2"));
    }
    mode = static_cast<core::TopGapMode>(m);
  }

  // Phase 1: every shard stores its local top-x candidates.
  std::vector<Result<serve::Response>> phase1 =
      FanOut("top_gap", request.params);
  for (size_t i = 0; i < phase1.size(); ++i) {
    if (!phase1[i].ok()) {
      return fail(TagShard(i, phase1[i].status()));
    }
    if (!(*phase1[i]).ok()) {
      return fail(TagShard(i, (*phase1[i]).ToStatus()));
    }
  }
  const std::string name = (*phase1[0]).text;  // "<gap>_<x>"

  // Phase 2: gather the candidate tables, merge in tag order, re-select.
  Result<rel::Table> merged = FetchMerged("get_table", {{"name", name}});
  if (!merged.ok()) return fail(merged.status());
  Result<rel::Table> selected =
      SelectTopGapRows(*merged, static_cast<size_t>(x), mode, name);
  if (!selected.ok()) return fail(selected.status());
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.insert_or_assign(name, std::move(*selected));
  }
  serve::Response response;
  response.text = name;
  return response;
}

Result<rel::Table> RouterServer::FetchMerged(
    const std::string& op, const std::map<std::string, std::string>& params) {
  std::vector<Result<serve::Response>> results = FanOut(op, params);
  std::vector<rel::Table> parts;
  parts.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return TagShard(i, results[i].status());
    }
    if (!(*results[i]).ok()) {
      return TagShard(i, (*results[i]).ToStatus());
    }
    if (!(*results[i]).table.has_value()) {
      return Status::Internal("shard " + std::to_string(i) +
                              " returned no table for " + op);
    }
    parts.push_back(std::move(*(*results[i]).table));
  }
  if (parts[0].schema().FindColumn("TagNo").has_value()) {
    obs::TraceSpan span("router_merge");
    return MergeByTagNo(parts[0].name(), parts);
  }
  // No tag key: only shard-invariant results (Typeinfo, the stat views
  // with identical schemas...) are routable, and they must agree exactly.
  const std::string first = store::EncodeTable(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    if (store::EncodeTable(parts[i]) != first) {
      return Status::FailedPrecondition(
          "result of " + op +
          " is shard-dependent and carries no TagNo column; not routable");
    }
  }
  return std::move(parts[0]);
}

serve::Response RouterServer::HandleTableRead(const serve::Request& request) {
  if (request.op == "get_table") {
    auto name_it = request.params.find("name");
    if (name_it != request.params.end()) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto cached = cache_.find(name_it->second);
      if (cached != cache_.end()) {
        serve::Response response;
        response.table = cached->second;
        return response;
      }
    }
  }
  Result<rel::Table> merged = FetchMerged(request.op, request.params);
  if (!merged.ok()) {
    return serve::ErrorResponse(request.request_id, merged.status());
  }
  serve::Response response;
  response.table = std::move(*merged);
  return response;
}

serve::Response RouterServer::HandleTables(const serve::Request& request) {
  std::vector<Result<serve::Response>> results = FanOut("tables", {});
  std::set<std::string> names;
  std::optional<rel::Table> shape;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return serve::ErrorResponse(request.request_id,
                                  TagShard(i, results[i].status()));
    }
    if (!(*results[i]).ok()) {
      return serve::ErrorResponse(request.request_id,
                                  TagShard(i, (*results[i]).ToStatus()));
    }
    if (!(*results[i]).table.has_value()) {
      return serve::ErrorResponse(
          request.request_id,
          Status::Internal("shard " + std::to_string(i) +
                           " returned no table list"));
    }
    const rel::Table& table = *(*results[i]).table;
    if (!shape.has_value()) {
      shape.emplace(table.name(), table.schema());
    }
    for (size_t row = 0; row < table.NumRows(); ++row) {
      names.insert(table.At(row, 0).AsString());
    }
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (const auto& [name, table] : cache_) names.insert(name);
  }
  rel::Table merged(shape->name(), shape->schema());
  for (const std::string& name : names) {
    merged.AppendRowUnchecked({rel::Value::String(name)});
  }
  serve::Response response;
  response.table = std::move(merged);
  return response;
}

serve::Response RouterServer::HandleShards(const serve::Request& request) {
  (void)request;
  rel::Table table("shards",
                   rel::Schema({{"shard", rel::ValueType::kInt},
                                {"port", rel::ValueType::kInt}}));
  for (size_t i = 0; i < workers_.size(); ++i) {
    table.AppendRowUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                              rel::Value::Int(workers_[i]->port)});
  }
  serve::Response response;
  response.table = std::move(table);
  return response;
}

}  // namespace gea::dist
