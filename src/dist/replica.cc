#include "dist/replica.h"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "dist/repl.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "workbench/users.h"

namespace gea::dist {

namespace {

obs::Counter& FramesApplied() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.replica.frames_applied");
  return c;
}
obs::Counter& SnapshotsApplied() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.dist.replica.snapshots_applied");
  return c;
}

bool IsSnapshotRequired(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().find("snapshot catch-up required") !=
             std::string::npos;
}

}  // namespace

ReplicaServer::ReplicaServer(Options options)
    : options_(std::move(options)),
      session_(options_.admin_user, options_.admin_password),
      server_(&session_, options_.server) {}

ReplicaServer::~ReplicaServer() { Stop(); }

Status ReplicaServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("replica already running");
  }
  GEA_RETURN_IF_ERROR(session_.Login(options_.admin_user,
                                     options_.admin_password,
                                     workbench::AccessLevel::kAdministrator));
  session_.SetReadOnly(true);
  server_.SetRole(serve::ServerRole::kReplica);
  // Promotion must not take the session lock in the handler: Promote()
  // joins the puller, which itself acquires the session lock per applied
  // record — holding it here would deadlock.
  serve::QueryServer::HandlerSpec promote_spec;
  promote_spec.mutating = true;
  promote_spec.admin_only = true;
  promote_spec.allow_on_replica = true;
  promote_spec.needs_session_lock = false;
  server_.RegisterHandler(
      "promote", promote_spec, [this](const serve::Request& request) {
        serve::Response response;
        if (Status status = Promote(); !status.ok()) {
          return serve::ErrorResponse(request.request_id, status);
        }
        response.text = "promoted";
        return response;
      });
  server_.SetRoleInfoProvider([this] {
    const uint64_t applied = applied_lsn_.load(std::memory_order_acquire);
    const uint64_t durable =
        primary_durable_lsn_.load(std::memory_order_acquire);
    const uint64_t last_apply =
        last_apply_nanos_.load(std::memory_order_acquire);
    std::map<std::string, std::string> info;
    info["applied_lsn"] = std::to_string(applied);
    info["primary_durable_lsn"] = std::to_string(durable);
    info["lag_records"] =
        std::to_string(durable > applied ? durable - applied : 0);
    info["lag_ms"] = std::to_string(
        durable > applied && last_apply > 0
            ? (obs::NowNanos() - last_apply) / 1'000'000
            : 0);
    info["snapshots_applied"] =
        std::to_string(snapshots_applied_.load(std::memory_order_acquire));
    return info;
  });
  RegisterReplicationStatSource(this, [this] {
    ReplicationStatRow row;
    row.role = promoted_.load(std::memory_order_acquire) ? "primary"
                                                         : "replica";
    row.port = server_.Port();
    row.applied_lsn = applied_lsn_.load(std::memory_order_acquire);
    const uint64_t durable =
        primary_durable_lsn_.load(std::memory_order_acquire);
    row.lag_records =
        durable > row.applied_lsn ? durable - row.applied_lsn : 0;
    row.lag_bytes = unapplied_bytes_.load(std::memory_order_acquire);
    const uint64_t last_apply =
        last_apply_nanos_.load(std::memory_order_acquire);
    row.lag_ms = row.lag_records > 0 && last_apply > 0
                     ? (obs::NowNanos() - last_apply) / 1'000'000
                     : 0;
    return row;
  });
  GEA_RETURN_IF_ERROR(server_.Start());
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  puller_ = std::thread([this] { PullLoop(); });
  return Status::OK();
}

void ReplicaServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (puller_.joinable()) puller_.join();
  server_.Stop();
  UnregisterReplicationStatSource(this);
  running_.store(false, std::memory_order_release);
}

Status ReplicaServer::Promote() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("replica is not running");
  }
  if (promoted_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  promoted_.store(true, std::memory_order_release);
  if (puller_.joinable()) puller_.join();
  {
    // Flip read-only under the writers' lock so in-flight reads finish
    // against a consistent flag.
    std::unique_lock<SharedTimedMutex> session_lock(server_.SessionMutex());
    session_.SetReadOnly(false);
  }
  server_.SetRole(serve::ServerRole::kPrimary);
  return Status::OK();
}

void ReplicaServer::PullLoop() {
  while (!stop_.load(std::memory_order_acquire) &&
         !promoted_.load(std::memory_order_acquire)) {
    serve::QueryClient client;
    Status status = client.Connect(options_.primary_port);
    if (status.ok()) {
      status = client.Login(options_.primary_user, options_.primary_password,
                            "admin");
    }
    if (status.ok()) {
      status = PullOnce(client);
    }
    if (stop_.load(std::memory_order_acquire) ||
        promoted_.load(std::memory_order_acquire)) {
      break;
    }
    // Transport or primary failure: back off, reconnect, resume from the
    // applied LSN. The primary being gone is the failover scenario — the
    // replica keeps serving reads while it retries.
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.retry_ms));
  }
}

Status ReplicaServer::PullOnce(serve::QueryClient& client) {
  while (!stop_.load(std::memory_order_acquire) &&
         !promoted_.load(std::memory_order_acquire)) {
    GEA_ASSIGN_OR_RETURN(
        serve::Response response,
        client.Call("repl_frames",
                    {{"from_lsn", std::to_string(AppliedLsn())},
                     {"wait_ms", std::to_string(options_.poll_wait_ms)}}));
    if (!response.ok()) {
      if (IsSnapshotRequired(response.ToStatus())) {
        GEA_RETURN_IF_ERROR(ApplySnapshotCatchup(client));
        continue;
      }
      return response.ToStatus();
    }
    GEA_ASSIGN_OR_RETURN(FrameBatch batch, DecodeFrameBatch(response.text));
    primary_durable_lsn_.store(batch.durable_lsn, std::memory_order_release);
    if (batch.frames.empty()) continue;
    uint64_t pending = 0;
    for (const ShippedFrame& frame : batch.frames) {
      pending += frame.record.op.size() + frame.record.payload.size();
    }
    unapplied_bytes_.store(pending, std::memory_order_release);
    for (const ShippedFrame& frame : batch.frames) {
      Status applied;
      {
        std::unique_lock<SharedTimedMutex> session_lock(
            server_.SessionMutex());
        applied = session_.ApplyReplicatedRecord(frame.record);
      }
      if (!applied.ok()) {
        // Deterministic replay should never fail; if it does, the local
        // state has diverged — rebuild it from a fresh snapshot.
        unapplied_bytes_.store(0, std::memory_order_release);
        return ApplySnapshotCatchup(client);
      }
      applied_lsn_.store(frame.lsn, std::memory_order_release);
      last_apply_nanos_.store(obs::NowNanos(), std::memory_order_release);
      FramesApplied().Add(1);
      pending -= frame.record.op.size() + frame.record.payload.size();
      unapplied_bytes_.store(pending, std::memory_order_release);
    }
  }
  return Status::OK();
}

Status ReplicaServer::ApplySnapshotCatchup(serve::QueryClient& client) {
  GEA_ASSIGN_OR_RETURN(serve::Response response,
                       client.Call("repl_snapshot"));
  GEA_RETURN_IF_ERROR(response.ToStatus());
  GEA_ASSIGN_OR_RETURN(auto decoded, DecodeSnapshotLsnBlob(response.text));
  {
    std::unique_lock<SharedTimedMutex> session_lock(server_.SessionMutex());
    GEA_RETURN_IF_ERROR(session_.ApplySnapshotBlob(decoded.second));
  }
  applied_lsn_.store(decoded.first, std::memory_order_release);
  last_apply_nanos_.store(obs::NowNanos(), std::memory_order_release);
  snapshots_applied_.fetch_add(1, std::memory_order_acq_rel);
  SnapshotsApplied().Add(1);
  return Status::OK();
}

}  // namespace gea::dist
