#ifndef GEA_STORE_WAL_H_
#define GEA_STORE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "store/file_env.h"

namespace gea::store {

/// Append-only write-ahead log. Each record is framed as
///
///   u32 payload length
///   u32 payload CRC32
///   payload: u8 type tag, string op, u32 param count,
///            (string key, string value)*, string payload blob
///
/// all little-endian (format.h primitives). Readers stop at the first
/// frame whose length or CRC does not check out — everything before it
/// is the durable prefix, everything after is a torn tail from a crash
/// mid-append and is discarded by recovery.
///
/// Two record families share the format:
///   kLogicalOp — an operator invocation (mine/populate/aggregate/diff,
///     ...) with its parameters; replay re-executes it through the
///     normal engine, which is deterministic, so the same log always
///     rebuilds the same catalog.
///   kBlob — a physical payload too large or too external to re-derive
///     (e.g. an imported SAGE data set), carried verbatim.
///   kCheckpoint — a marker written right after a snapshot rotation;
///     never replayed, useful for forensics on retained logs.

struct WalRecord {
  enum class Type : uint8_t { kLogicalOp = 1, kBlob = 2, kCheckpoint = 3 };

  Type type = Type::kLogicalOp;
  std::string op;                           // operator or blob kind
  std::map<std::string, std::string> params;  // deterministic encoding order
  std::string payload;                      // blob body, empty for logical ops

  static WalRecord LogicalOp(std::string op,
                             std::map<std::string, std::string> params);
  static WalRecord BlobRecord(std::string op, std::string payload);
};

/// Framed bytes for a single record, exactly as appended to the log.
std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecordBody(std::string_view body);

struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;    // durable prefix length
  uint64_t dropped_bytes = 0;  // torn tail length (file size - valid)
  bool torn_tail = false;      // true when a partial/corrupt frame was cut
};

/// Scans a log file, returning every intact record plus where the
/// durable prefix ends. A missing file is an empty log, not an error;
/// any other read failure is.
Result<WalReadResult> ReadWalFile(FileEnv* env, const std::string& path);

/// Incremental tail-follower over a WAL file — the streaming counterpart
/// to the one-shot ReadWalFile scan, built for WAL shipping: a caller
/// polls the file while a writer appends to it and receives every newly
/// completed record exactly once, in append order.
///
/// The subtlety a follower must handle is the *torn final frame*: a poll
/// that races a writer mid-append sees a partial frame (or one whose CRC
/// does not yet check out). Unlike crash recovery, that frame is not
/// garbage — the writer simply has not finished it — so Poll() leaves the
/// read offset at the start of the incomplete frame and re-examines those
/// bytes on the next call; once the append completes, the record is
/// returned as if it had never been torn. Only the caller can know
/// whether a persistent torn tail is a crash artifact (writer gone) or
/// work in progress (writer alive).
///
/// At any point, `offset() + TailStatus.pending_bytes == file size`, and
/// (valid, dropped) of a final Poll match ReadWalFile on the same file —
/// a parity the tests pin down.
class WalReader {
 public:
  /// Opens a tail-follow over `path`. The file may not exist yet (an
  /// empty log); it appears at whatever Poll() first observes it.
  static Result<std::unique_ptr<WalReader>> Open(FileEnv* env,
                                                 std::string path);

  struct TailResult {
    std::vector<WalRecord> records;  // newly completed since last Poll
    uint64_t valid_bytes = 0;        // cumulative durable prefix length
    uint64_t pending_bytes = 0;      // trailing bytes of an incomplete frame
    bool torn_tail = false;          // true when pending_bytes > 0
  };

  /// Reads every record completed since the previous Poll. Never fails
  /// on a torn tail (see class comment); only I/O errors are errors.
  Result<TailResult> Poll();

  /// Byte offset of the durable prefix consumed so far.
  uint64_t offset() const { return offset_; }
  /// Records returned across all Polls.
  uint64_t records_read() const { return records_read_; }

 private:
  WalReader(FileEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  FileEnv* env_;
  std::string path_;
  uint64_t offset_ = 0;
  uint64_t records_read_ = 0;
};

/// Appender. With sync_every_record (the default) each Append is
/// fsynced before returning, which is the durability contract the
/// session relies on: an acknowledged operation survives a crash.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(FileEnv* env,
                                                 const std::string& path,
                                                 bool truncate,
                                                 bool sync_every_record);

  Status Append(const WalRecord& record);

  /// Appends every record, then issues ONE fsync for the whole batch —
  /// the group-commit primitive. The sync happens regardless of
  /// sync_every_record: callers batch precisely to amortize the sync, so
  /// durability-on-return is the point. On failure the batch must be
  /// treated as entirely unacknowledged (the tail may be torn mid-batch;
  /// recovery trims it like any other torn tail).
  Status AppendBatch(const std::vector<WalRecord>& records);

  Status Sync();
  Status Close();

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, bool sync_every_record)
      : file_(std::move(file)), sync_every_record_(sync_every_record) {}

  std::unique_ptr<WritableFile> file_;
  bool sync_every_record_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace gea::store

#endif  // GEA_STORE_WAL_H_
