#ifndef GEA_STORE_FILE_ENV_H_
#define GEA_STORE_FILE_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace gea::store {

/// A sequential-append file handle. The storage engine's durability
/// contract is expressed entirely through this interface: data passed to
/// Append() is *committed* only once a subsequent Sync() returns OK
/// (fsync semantics — a crash before the sync may lose or tear it).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;

  /// Durability barrier (fsync). Everything appended so far survives a
  /// crash once this returns OK.
  virtual Status Sync() = 0;

  /// Flushes and releases the handle. Close() alone is NOT a durability
  /// barrier.
  virtual Status Close() = 0;
};

/// Narrow file-system abstraction wrapping the POSIX calls the storage
/// engine needs (the RocksDB/LevelDB Env idiom). Production code uses
/// Default(); crash tests substitute a FaultInjectionEnv (fault_env.h)
/// that tears writes, fails fsync and kills the "process" at chosen
/// operation indices.
class FileEnv {
 public:
  virtual ~FileEnv() = default;

  /// `truncate` starts the file empty; otherwise opens for append,
  /// creating it if needed.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Atomic replace (POSIX rename). The write-tmp-then-rename idiom makes
  /// snapshot publication atomic.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Plain file names (not paths) in `path`, sorted.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& path) = 0;

  /// fsyncs the directory itself so renames/creates within it are durable.
  virtual Status SyncDirectory(const std::string& path) = 0;

  /// The process-wide POSIX implementation (leaked at exit).
  static FileEnv* Default();
};

}  // namespace gea::store

#endif  // GEA_STORE_FILE_ENV_H_
