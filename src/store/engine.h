#ifndef GEA_STORE_ENGINE_H_
#define GEA_STORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "store/file_env.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace gea::store {

/// Durable storage directory layout:
///
///   CURRENT        — text generation number, atomically replaced
///   snap-<N>.gea   — full catalog snapshot for generation N (N >= 1)
///   wal-<N>.log    — WAL with everything since snap-<N>
///
/// Generation 0 is the bootstrap state: no snapshot, only wal-0.log.
/// A checkpoint writes snap-<N+1>, starts an empty wal-<N+1>, then
/// commits by atomically replacing CURRENT; a crash at any point leaves
/// either the old generation fully intact or the new one fully
/// committed. Stale files from interrupted checkpoints are swept on the
/// next open.

struct StorageOptions {
  /// fsync the WAL on every Append. Turning this off trades the
  /// crash-durability of individual operations for throughput; data is
  /// still made durable by Sync()/Checkpoint().
  bool sync_every_record = true;

  /// When > 0, CheckpointDue() turns true after this many WAL appends
  /// since the last checkpoint. 0 means manual checkpoints only.
  uint64_t checkpoint_every_records = 0;
};

/// What recovery found and did, reported up to the query log / statz.
struct RecoverySummary {
  std::string directory;
  uint64_t generation = 0;
  bool snapshot_loaded = false;
  uint64_t snapshot_sections = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_bytes_replayed = 0;
  uint64_t wal_bytes_truncated = 0;
  bool wal_torn_tail = false;
  bool used_fallback_scan = false;  // CURRENT missing/stale, scanned snaps

  std::string ToString() const;
};

/// Process-wide last recovery, for the storage stat view.
void PublishRecoverySummary(const RecoverySummary& summary);
RecoverySummary LastRecoverySummary();

class StorageEngine {
 public:
  struct OpenResult {
    std::unique_ptr<StorageEngine> engine;
    std::optional<SnapshotImage> snapshot;  // latest valid snapshot, if any
    std::vector<WalRecord> records;         // WAL tail to replay, in order
    RecoverySummary summary;
  };

  /// Opens (creating if needed) a storage directory and runs recovery:
  /// picks the committed generation (CURRENT, falling back to a scan of
  /// the highest decodable snapshot), loads its snapshot, reads the WAL
  /// tail, truncates any torn suffix in place, and leaves the WAL open
  /// for appends. Also publishes the recovery summary.
  static Result<OpenResult> Open(FileEnv* env, const std::string& directory,
                                 const StorageOptions& options);

  /// Appends one record to the live WAL (fsynced per StorageOptions).
  Status Append(const WalRecord& record);

  /// Appends every record and issues a single fsync for the batch (group
  /// commit). last_lsn() advances by records.size() only on success —
  /// a batch that fails anywhere is entirely unacknowledged, and recovery
  /// trims whatever prefix of it reached the file as a torn tail.
  Status AppendBatch(const std::vector<WalRecord>& records);

  /// Writes `image` as the next generation's snapshot, rotates the WAL,
  /// and commits via CURRENT. On success the WAL is empty again.
  Status Checkpoint(const SnapshotImage& image);

  /// True when the automatic checkpoint threshold has been reached.
  bool CheckpointDue() const;

  Status Close();

  uint64_t generation() const { return generation_; }
  uint64_t records_since_checkpoint() const {
    return records_since_checkpoint_;
  }

  /// Log sequence number of the last durable logical/blob record: a
  /// monotonic per-attachment append counter, seeded at recovery with the
  /// number of records replayed and bumped by every successful Append().
  /// Checkpoint rotation does NOT reset it — the LSN numbers the logical
  /// history, not the bytes of the current WAL file — which is what lets
  /// replication identify a position across WAL generations.
  uint64_t last_lsn() const { return last_lsn_; }
  const std::string& directory() const { return directory_; }

  std::string SnapshotPath(uint64_t generation) const;
  std::string WalPath(uint64_t generation) const;
  std::string CurrentPath() const;

  ~StorageEngine();

 private:
  StorageEngine(FileEnv* env, std::string directory, StorageOptions options)
      : env_(env), directory_(std::move(directory)), options_(options) {}

  Status WriteCurrentFile(uint64_t generation);

  FileEnv* env_;
  std::string directory_;
  StorageOptions options_;
  uint64_t generation_ = 0;
  // Atomic because the group-commit leader bumps them from whichever
  // waiter thread wins the batch, after the session's writer lock has
  // already been released; concurrent readers poll last_lsn()/
  // CheckpointDue() under only the shared lock.
  std::atomic<uint64_t> records_since_checkpoint_{0};
  std::atomic<uint64_t> last_lsn_{0};
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace gea::store

#endif  // GEA_STORE_ENGINE_H_
