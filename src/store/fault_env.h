#ifndef GEA_STORE_FAULT_ENV_H_
#define GEA_STORE_FAULT_ENV_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/file_env.h"

namespace gea::store {

/// Test double that wraps a real FileEnv and injects storage faults at a
/// chosen *fault point* — crash-recovery tests iterate the fault point
/// over every mutating operation of a workload (the kill-point matrix).
///
/// Machine-crash semantics: appended data is buffered in memory and only
/// reaches the wrapped env on Sync() (or a clean Close()), so at the kill
/// point everything unsynced is simply gone — exactly what the page cache
/// loses when the power goes. A short-write fault flushes a torn prefix
/// of the unsynced tail first, modeling a partially persisted page.
///
/// Every mutating operation (Append, Sync, Rename, Remove, truncating
/// open) counts as one fault point, in call order. Once the armed fault
/// fires the env is dead: every later mutating call fails with IoError,
/// like a killed process. Reads are passed through unfaulted so tests can
/// inspect the surviving state, but the honest way to "reboot" is to
/// reopen the directory with the wrapped env directly.
class FaultInjectionEnv : public FileEnv {
 public:
  enum class FaultKind {
    kKill,        // die before performing the operation
    kShortWrite,  // flush a torn prefix of unsynced data, then die
    kFailSync,    // the sync fails (nothing flushed), then die
  };

  explicit FaultInjectionEnv(FileEnv* base) : base_(base) {}

  /// Arms the env: mutating operation number `fault_point` (0-based)
  /// triggers `kind`. Call before the workload.
  void ArmFault(uint64_t fault_point, FaultKind kind);

  /// Disarms and revives; buffered unsynced data is discarded.
  void Reset();

  /// Mutating operations observed so far — run the workload once with no
  /// armed fault to size the kill-point matrix.
  uint64_t FaultPointsSeen() const;

  bool Killed() const;

  // ---- FileEnv ----
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;
  Status SyncDirectory(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  /// Returns the fault to fire at this point (or nullopt), advancing the
  /// operation counter. IoError once dead.
  enum class Hit { kNone, kDead, kKill, kShortWrite, kFailSync };
  Hit NextFaultPoint();

  FileEnv* base_;
  mutable std::mutex mu_;
  uint64_t ops_seen_ = 0;
  uint64_t armed_point_ = 0;
  bool armed_ = false;
  FaultKind armed_kind_ = FaultKind::kKill;
  bool killed_ = false;
};

}  // namespace gea::store

#endif  // GEA_STORE_FAULT_ENV_H_
