#include "store/snapshot.h"

#include <utility>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "store/format.h"

namespace gea::store {

namespace {

constexpr char kMagic[8] = {'G', 'E', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;  // magic..crc

std::string EncodeSectionBody(const SnapshotSection& section) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(section.type));
  PutString(&body, section.kind);
  PutString(&body, section.name);
  if (section.type == SnapshotSection::Type::kTable) {
    // Columnar since PR 6; DecodeTable still reads the PR-4 row codec, so
    // older snapshot files stay loadable.
    PutString(&body, EncodeTableColumnar(*section.table));
  } else {
    PutString(&body, section.blob);
  }
  return body;
}

Result<SnapshotSection> DecodeSectionBody(std::string_view body) {
  ByteReader reader(body);
  GEA_ASSIGN_OR_RETURN(uint8_t type_tag, reader.ReadU8());
  SnapshotSection section;
  switch (type_tag) {
    case static_cast<uint8_t>(SnapshotSection::Type::kTable):
      section.type = SnapshotSection::Type::kTable;
      break;
    case static_cast<uint8_t>(SnapshotSection::Type::kBlob):
      section.type = SnapshotSection::Type::kBlob;
      break;
    default:
      return Status::InvalidArgument("unknown snapshot section type: " +
                                     std::to_string(type_tag));
  }
  GEA_ASSIGN_OR_RETURN(section.kind, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(section.name, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(std::string payload, reader.ReadString());
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes in snapshot section");
  }
  if (section.type == SnapshotSection::Type::kTable) {
    GEA_ASSIGN_OR_RETURN(rel::Table table, DecodeTable(payload));
    section.table = std::move(table);
  } else {
    section.blob = std::move(payload);
  }
  return section;
}

}  // namespace

SnapshotSection SnapshotSection::Table(std::string kind, rel::Table table) {
  SnapshotSection section;
  section.type = Type::kTable;
  section.kind = std::move(kind);
  section.name = table.name();
  section.table = std::move(table);
  return section;
}

SnapshotSection SnapshotSection::Blob(std::string kind, std::string name,
                                      std::string blob) {
  SnapshotSection section;
  section.type = Type::kBlob;
  section.kind = std::move(kind);
  section.name = std::move(name);
  section.blob = std::move(blob);
  return section;
}

const SnapshotSection* SnapshotImage::Find(std::string_view kind,
                                           std::string_view name) const {
  for (const SnapshotSection& section : sections) {
    if (section.kind == kind && section.name == name) return &section;
  }
  return nullptr;
}

std::string EncodeSnapshot(const SnapshotImage& image) {
  std::string payload;
  for (const SnapshotSection& section : image.sections) {
    std::string body = EncodeSectionBody(section);
    PutU32(&payload, static_cast<uint32_t>(body.size()));
    PutU32(&payload, Crc32(body));
    payload += body;
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kSnapshotVersion);
  PutU32(&out, static_cast<uint32_t>(image.sections.size()));
  PutU64(&out, payload.size());
  PutU32(&out, Crc32(out));
  out += payload;
  return out;
}

Result<SnapshotImage> DecodeSnapshot(std::string_view data) {
  if (data.size() < kHeaderBytes) {
    return Status::InvalidArgument("snapshot shorter than its header");
  }
  if (data.compare(0, sizeof(kMagic),
                   std::string_view(kMagic, sizeof(kMagic))) != 0) {
    return Status::InvalidArgument("bad snapshot magic");
  }
  ByteReader header(data.substr(sizeof(kMagic), kHeaderBytes - sizeof(kMagic)));
  uint32_t version = *header.ReadU32();
  uint32_t section_count = *header.ReadU32();
  uint64_t payload_bytes = *header.ReadU64();
  uint32_t header_crc = *header.ReadU32();
  if (Crc32(data.substr(0, kHeaderBytes - 4)) != header_crc) {
    return Status::InvalidArgument("snapshot header CRC mismatch");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version: " +
                                   std::to_string(version));
  }
  if (data.size() - kHeaderBytes != payload_bytes) {
    return Status::InvalidArgument("snapshot payload length mismatch");
  }

  SnapshotImage image;
  image.sections.reserve(section_count);
  std::string_view payload = data.substr(kHeaderBytes);
  size_t pos = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    ByteReader frame(payload.substr(pos));
    GEA_ASSIGN_OR_RETURN(uint32_t body_len, frame.ReadU32());
    GEA_ASSIGN_OR_RETURN(uint32_t body_crc, frame.ReadU32());
    if (frame.remaining() < body_len) {
      return Status::InvalidArgument("snapshot section truncated");
    }
    std::string_view body = payload.substr(pos + 8, body_len);
    pos += 8 + body_len;
    if (Crc32(body) != body_crc) {
      return Status::InvalidArgument("snapshot section CRC mismatch");
    }
    GEA_ASSIGN_OR_RETURN(SnapshotSection section, DecodeSectionBody(body));
    image.sections.push_back(std::move(section));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("trailing bytes after snapshot sections");
  }
  return image;
}

Status WriteSnapshotFile(FileEnv* env, const std::string& path,
                         const SnapshotImage& image) {
  static obs::Histogram& write_nanos =
      obs::MetricsRegistry::Global().GetHistogram(
          "gea.store.snapshot_write_nanos");
  obs::ScopedLatency latency(write_nanos);

  const std::string encoded = EncodeSnapshot(image);
  const std::string tmp = path + ".tmp";
  GEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env->NewWritableFile(tmp, /*truncate=*/true));
  GEA_RETURN_IF_ERROR(file->Append(encoded));
  GEA_RETURN_IF_ERROR(file->Sync());
  GEA_RETURN_IF_ERROR(file->Close());
  GEA_RETURN_IF_ERROR(env->RenameFile(tmp, path));

  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    GEA_RETURN_IF_ERROR(env->SyncDirectory(path.substr(0, slash)));
  }

  static obs::Counter& snapshots = obs::MetricsRegistry::Global().GetCounter(
      "gea.store.snapshots_written");
  static obs::Counter& bytes = obs::MetricsRegistry::Global().GetCounter(
      "gea.store.snapshot_bytes");
  snapshots.Add(1);
  bytes.Add(encoded.size());
  return Status::OK();
}

Result<SnapshotImage> ReadSnapshotFile(FileEnv* env, const std::string& path) {
  GEA_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  return DecodeSnapshot(data);
}

}  // namespace gea::store
