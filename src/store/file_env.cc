#include "store/file_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace gea::store {

namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// O_APPEND writer over a raw fd; fsync latency feeds the storage
/// histogram so /statz can report durability cost.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    static obs::Histogram& fsync_nanos =
        obs::MetricsRegistry::Global().GetHistogram("gea.store.fsync_nanos");
    obs::ScopedLatency latency(fsync_nanos);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileEnv : public FileEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open file for reading: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IoError("read failed: " + path);
    return buffer.str();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IoError("cannot create directory: " + path);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override {
    std::error_code ec;
    fs::directory_iterator it(path, ec);
    if (ec) return Status::IoError("cannot list directory: " + path);
    std::vector<std::string> names;
    for (const fs::directory_entry& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Status SyncDirectory(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open dir", path);
    int rc = ::fsync(fd);
    ::close(fd);
    // Some file systems refuse directory fsync; rename durability is then
    // best-effort, matching what a CSV dump offered.
    if (rc != 0 && errno != EINVAL && errno != ENOTSUP) {
      return ErrnoStatus("fsync dir", path);
    }
    return Status::OK();
  }
};

}  // namespace

FileEnv* FileEnv::Default() {
  static FileEnv* env = new PosixFileEnv();
  return env;
}

}  // namespace gea::store
