#include "store/fault_env.h"

#include <utility>

namespace gea::store {

namespace {

Status KilledStatus() {
  return Status::IoError("injected fault: storage environment is dead");
}

}  // namespace

/// Buffers appends until Sync() so a kill loses unsynced data, the way a
/// machine crash loses the page cache.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env,
                             std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    switch (env_->NextFaultPoint()) {
      case FaultInjectionEnv::Hit::kNone:
        break;
      case FaultInjectionEnv::Hit::kShortWrite:
        // Half of the new data reaches the disk torn onto the unsynced
        // tail; the rest (and everything after) is lost.
        buffer_ += data.substr(0, data.size() / 2);
        (void)base_->Append(buffer_);
        (void)base_->Sync();
        buffer_.clear();
        return KilledStatus();
      default:
        return KilledStatus();
    }
    buffer_ += data;
    return Status::OK();
  }

  Status Sync() override {
    switch (env_->NextFaultPoint()) {
      case FaultInjectionEnv::Hit::kNone:
        break;
      case FaultInjectionEnv::Hit::kShortWrite: {
        buffer_.resize(buffer_.size() / 2);
        (void)base_->Append(buffer_);
        (void)base_->Sync();
        buffer_.clear();
        return KilledStatus();
      }
      default:
        return KilledStatus();
    }
    GEA_RETURN_IF_ERROR(Flush());
    return base_->Sync();
  }

  Status Close() override {
    // A clean close flushes (the OS would eventually write it back); a
    // dead env has crashed, so the buffer is simply dropped.
    if (!env_->Killed()) GEA_RETURN_IF_ERROR(Flush());
    return base_->Close();
  }

 private:
  Status Flush() {
    if (buffer_.empty()) return Status::OK();
    Status s = base_->Append(buffer_);
    buffer_.clear();
    return s;
  }

  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string buffer_;
};

void FaultInjectionEnv::ArmFault(uint64_t fault_point, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  armed_point_ = fault_point;
  armed_kind_ = kind;
  ops_seen_ = 0;
  killed_ = false;
}

void FaultInjectionEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  ops_seen_ = 0;
  killed_ = false;
}

uint64_t FaultInjectionEnv::FaultPointsSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_seen_;
}

bool FaultInjectionEnv::Killed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return killed_;
}

FaultInjectionEnv::Hit FaultInjectionEnv::NextFaultPoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (killed_) return Hit::kDead;
  const uint64_t point = ops_seen_++;
  if (!armed_ || point != armed_point_) return Hit::kNone;
  killed_ = true;
  switch (armed_kind_) {
    case FaultKind::kShortWrite:
      return Hit::kShortWrite;
    case FaultKind::kFailSync:
      return Hit::kFailSync;
    case FaultKind::kKill:
      break;
  }
  return Hit::kKill;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  // A truncating open destroys data, so it is a fault point; an append
  // open is not (it writes nothing by itself).
  if (truncate) {
    switch (NextFaultPoint()) {
      case Hit::kNone:
        break;
      default:
        return KilledStatus();
    }
  } else if (Killed()) {
    return KilledStatus();
  }
  GEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(this, std::move(base)));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  switch (NextFaultPoint()) {
    case Hit::kNone:
      break;
    default:
      return KilledStatus();
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  switch (NextFaultPoint()) {
    case Hit::kNone:
      break;
    default:
      return KilledStatus();
  }
  return base_->RemoveFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  if (Killed()) return KilledStatus();
  return base_->CreateDirs(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDirectory(
    const std::string& path) {
  return base_->ListDirectory(path);
}

Status FaultInjectionEnv::SyncDirectory(const std::string& path) {
  switch (NextFaultPoint()) {
    case Hit::kNone:
      break;
    default:
      return KilledStatus();
  }
  return base_->SyncDirectory(path);
}

}  // namespace gea::store
