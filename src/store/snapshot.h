#ifndef GEA_STORE_SNAPSHOT_H_
#define GEA_STORE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "store/file_env.h"

namespace gea::store {

/// Binary, checksummed point-in-time image of a whole catalog — the
/// checkpoint counterpart to the WAL (wal.h). A snapshot is a flat list
/// of *sections*; each section carries a `kind` (the owner's namespace:
/// "enum", "sumy", "gap", "metadata", "lineage", "relation", "sage", ...)
/// plus either a relation (binary table codec, format.h) or an opaque
/// blob. The storage engine never interprets kinds — the workbench maps
/// its session state onto sections and back.
///
/// File layout (all little-endian):
///   magic "GEASNAP1"            8 bytes
///   u32 version  (kSnapshotVersion)
///   u32 section count
///   u64 total payload bytes
///   u32 header CRC32            (over the 24 bytes above)
///   per section:
///     u32 body length
///     u32 body CRC32
///     body: u8 type tag, string kind, string name, string payload
///
/// Publication is atomic: WriteSnapshotFile writes "<path>.tmp", fsyncs,
/// renames over `path` and fsyncs the directory, so a reader sees either
/// the old complete snapshot or the new one — never a torn hybrid.

inline constexpr uint32_t kSnapshotVersion = 1;

struct SnapshotSection {
  enum class Type : uint8_t { kTable = 1, kBlob = 2 };

  Type type = Type::kTable;
  std::string kind;
  std::string name;
  std::optional<rel::Table> table;  // set when type == kTable
  std::string blob;                 // set when type == kBlob

  static SnapshotSection Table(std::string kind, rel::Table table);
  static SnapshotSection Blob(std::string kind, std::string name,
                              std::string blob);
};

struct SnapshotImage {
  std::vector<SnapshotSection> sections;

  /// First section of this kind and name, or nullptr.
  const SnapshotSection* Find(std::string_view kind,
                              std::string_view name) const;
};

/// In-memory codec, exposed for tests and the WAL's blob payloads.
std::string EncodeSnapshot(const SnapshotImage& image);
Result<SnapshotImage> DecodeSnapshot(std::string_view data);

/// Atomic write-tmp-then-rename with fsync at each step.
Status WriteSnapshotFile(FileEnv* env, const std::string& path,
                         const SnapshotImage& image);

/// Reads and fully validates (magic, version, CRCs, exact length) a
/// snapshot file; any mismatch is an error, never a partial image.
Result<SnapshotImage> ReadSnapshotFile(FileEnv* env, const std::string& path);

}  // namespace gea::store

#endif  // GEA_STORE_SNAPSHOT_H_
