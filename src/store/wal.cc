#include "store/wal.h"

#include <utility>

#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "store/format.h"

namespace gea::store {

WalRecord WalRecord::LogicalOp(std::string op,
                               std::map<std::string, std::string> params) {
  WalRecord record;
  record.type = Type::kLogicalOp;
  record.op = std::move(op);
  record.params = std::move(params);
  return record;
}

WalRecord WalRecord::BlobRecord(std::string op, std::string payload) {
  WalRecord record;
  record.type = Type::kBlob;
  record.op = std::move(op);
  record.payload = std::move(payload);
  return record;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(record.type));
  PutString(&body, record.op);
  PutU32(&body, static_cast<uint32_t>(record.params.size()));
  for (const auto& [key, value] : record.params) {
    PutString(&body, key);
    PutString(&body, value);
  }
  PutString(&body, record.payload);

  std::string framed;
  framed.reserve(body.size() + 8);
  PutU32(&framed, static_cast<uint32_t>(body.size()));
  PutU32(&framed, Crc32(body));
  framed += body;
  return framed;
}

Result<WalRecord> DecodeWalRecordBody(std::string_view body) {
  ByteReader reader(body);
  GEA_ASSIGN_OR_RETURN(uint8_t type_tag, reader.ReadU8());
  WalRecord record;
  switch (type_tag) {
    case static_cast<uint8_t>(WalRecord::Type::kLogicalOp):
      record.type = WalRecord::Type::kLogicalOp;
      break;
    case static_cast<uint8_t>(WalRecord::Type::kBlob):
      record.type = WalRecord::Type::kBlob;
      break;
    case static_cast<uint8_t>(WalRecord::Type::kCheckpoint):
      record.type = WalRecord::Type::kCheckpoint;
      break;
    default:
      return Status::InvalidArgument("unknown WAL record type: " +
                                     std::to_string(type_tag));
  }
  GEA_ASSIGN_OR_RETURN(record.op, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(uint32_t param_count, reader.ReadU32());
  for (uint32_t i = 0; i < param_count; ++i) {
    GEA_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
    record.params.emplace(std::move(key), std::move(value));
  }
  GEA_ASSIGN_OR_RETURN(record.payload, reader.ReadString());
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes in WAL record");
  }
  return record;
}

Result<WalReadResult> ReadWalFile(FileEnv* env, const std::string& path) {
  WalReadResult result;
  if (!env->FileExists(path)) return result;
  GEA_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));

  size_t pos = 0;
  while (pos < data.size()) {
    ByteReader frame(std::string_view(data).substr(pos));
    auto len = frame.ReadU32();
    auto crc = frame.ReadU32();
    if (!len.ok() || !crc.ok() || frame.remaining() < *len) {
      result.torn_tail = true;  // partial frame from a crash mid-append
      break;
    }
    std::string_view body = std::string_view(data).substr(pos + 8, *len);
    if (Crc32(body) != *crc) {
      result.torn_tail = true;  // torn or bit-rotted body
      break;
    }
    auto record = DecodeWalRecordBody(body);
    if (!record.ok()) {
      result.torn_tail = true;
      break;
    }
    result.records.push_back(std::move(*record));
    pos += 8 + *len;
  }
  result.valid_bytes = pos;
  result.dropped_bytes = data.size() - pos;
  return result;
}

Result<std::unique_ptr<WalReader>> WalReader::Open(FileEnv* env,
                                                   std::string path) {
  return std::unique_ptr<WalReader>(new WalReader(env, std::move(path)));
}

Result<WalReader::TailResult> WalReader::Poll() {
  TailResult result;
  result.valid_bytes = offset_;
  if (!env_->FileExists(path_)) {
    // Not-yet-created log: an empty file, same as ReadWalFile. A log that
    // existed before and vanished is a rotation; that case falls under
    // the truncation check below once the file reappears shorter.
    if (offset_ != 0) {
      return Status::FailedPrecondition("WAL removed under tail reader: " +
                                        path_);
    }
    return result;
  }
  GEA_ASSIGN_OR_RETURN(std::string data, env_->ReadFileToString(path_));
  if (data.size() < offset_) {
    // The log was truncated/rotated (checkpoint) past our position. The
    // consumed prefix can no longer be mapped onto the file, so the
    // caller must restart from a snapshot rather than keep tailing.
    return Status::FailedPrecondition("WAL truncated under tail reader: " +
                                      path_);
  }

  // Same frame walk as ReadWalFile, resumed at offset_. A frame that does
  // not check out is left unconsumed — if the writer is mid-append it
  // completes by a later Poll; if it is a crash artifact it stays pending
  // forever and the caller decides.
  size_t pos = offset_;
  while (pos < data.size()) {
    ByteReader frame(std::string_view(data).substr(pos));
    auto len = frame.ReadU32();
    auto crc = frame.ReadU32();
    if (!len.ok() || !crc.ok() || frame.remaining() < *len) break;
    std::string_view body = std::string_view(data).substr(pos + 8, *len);
    if (Crc32(body) != *crc) break;
    auto record = DecodeWalRecordBody(body);
    if (!record.ok()) break;
    result.records.push_back(std::move(*record));
    pos += 8 + *len;
  }
  offset_ = pos;
  records_read_ += result.records.size();
  result.valid_bytes = pos;
  result.pending_bytes = data.size() - pos;
  result.torn_tail = result.pending_bytes > 0;
  return result;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(FileEnv* env,
                                                   const std::string& path,
                                                   bool truncate,
                                                   bool sync_every_record) {
  GEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env->NewWritableFile(path, truncate));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), sync_every_record));
}

Status WalWriter::Append(const WalRecord& record) {
  const std::string framed = EncodeWalRecord(record);
  // Stage attribution: WAL appends run synchronously on the worker
  // thread executing a served request, so the active stage collector
  // (if any) charges this commit's append and fsync to that request.
  const bool attribute = obs::StageCollectionActive();
  {
    obs::TraceSpan append_span("wal_append");
    const uint64_t append_start = attribute ? obs::NowNanos() : 0;
    GEA_RETURN_IF_ERROR(file_->Append(framed));
    if (attribute) {
      obs::AddStageNanos(obs::RequestStage::kWalAppend,
                         obs::NowNanos() - append_start);
    }
  }
  if (sync_every_record_) {
    obs::TraceSpan fsync_span("wal_fsync");
    const uint64_t fsync_start = attribute ? obs::NowNanos() : 0;
    GEA_RETURN_IF_ERROR(file_->Sync());
    if (attribute) {
      obs::AddStageNanos(obs::RequestStage::kWalFsync,
                         obs::NowNanos() - fsync_start);
    }
  }
  records_ += 1;
  bytes_ += framed.size();

  static obs::Counter& wal_records =
      obs::MetricsRegistry::Global().GetCounter("gea.store.wal_records");
  static obs::Counter& wal_bytes =
      obs::MetricsRegistry::Global().GetCounter("gea.store.wal_bytes");
  wal_records.Add(1);
  wal_bytes.Add(framed.size());
  return Status::OK();
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  const bool attribute = obs::StageCollectionActive();
  uint64_t batch_bytes = 0;
  {
    obs::TraceSpan append_span("wal_append_batch");
    const uint64_t append_start = attribute ? obs::NowNanos() : 0;
    for (const WalRecord& record : records) {
      const std::string framed = EncodeWalRecord(record);
      GEA_RETURN_IF_ERROR(file_->Append(framed));
      batch_bytes += framed.size();
    }
    if (attribute) {
      obs::AddStageNanos(obs::RequestStage::kWalAppend,
                         obs::NowNanos() - append_start);
    }
  }
  {
    obs::TraceSpan fsync_span("wal_fsync");
    const uint64_t fsync_start = attribute ? obs::NowNanos() : 0;
    GEA_RETURN_IF_ERROR(file_->Sync());
    if (attribute) {
      obs::AddStageNanos(obs::RequestStage::kWalFsync,
                         obs::NowNanos() - fsync_start);
    }
  }
  records_ += records.size();
  bytes_ += batch_bytes;

  static obs::Counter& wal_records =
      obs::MetricsRegistry::Global().GetCounter("gea.store.wal_records");
  static obs::Counter& wal_bytes =
      obs::MetricsRegistry::Global().GetCounter("gea.store.wal_bytes");
  wal_records.Add(records.size());
  wal_bytes.Add(batch_bytes);
  return Status::OK();
}

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Close() {
  if (!file_) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  return s;
}

}  // namespace gea::store
