#include "store/format.h"

#include <cstring>

#include "rel/schema.h"
#include "rel/value.h"

namespace gea::store {

namespace {

Status Truncated(const char* what) {
  return Status::OutOfRange(std::string("truncated encoding: ") + what);
}

}  // namespace

void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

void PutU32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutI64(std::string* dst, int64_t v) {
  PutU64(dst, static_cast<uint64_t>(v));
}

void PutF64(std::string* dst, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(dst, bits);
}

void PutString(std::string* dst, std::string_view v) {
  PutU32(dst, static_cast<uint32_t>(v.size()));
  dst->append(v.data(), v.size());
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  GEA_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::ReadF64() {
  GEA_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  GEA_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  if (remaining() < size) return Truncated("string body");
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

namespace {

// Cell type tags. Distinct from rel::ValueType's numeric values on
// purpose: the on-disk format is frozen here, the enum is not.
constexpr uint8_t kCellNull = 0;
constexpr uint8_t kCellInt = 1;
constexpr uint8_t kCellDouble = 2;
constexpr uint8_t kCellString = 3;

uint8_t ColumnTypeTag(rel::ValueType type) {
  switch (type) {
    case rel::ValueType::kNull:
      return kCellNull;
    case rel::ValueType::kInt:
      return kCellInt;
    case rel::ValueType::kDouble:
      return kCellDouble;
    case rel::ValueType::kString:
      return kCellString;
  }
  return kCellNull;
}

Result<rel::ValueType> ColumnTypeFromTag(uint8_t tag) {
  switch (tag) {
    case kCellNull:
      return rel::ValueType::kNull;
    case kCellInt:
      return rel::ValueType::kInt;
    case kCellDouble:
      return rel::ValueType::kDouble;
    case kCellString:
      return rel::ValueType::kString;
  }
  return Status::InvalidArgument("unknown column type tag: " +
                                 std::to_string(tag));
}

}  // namespace

namespace {

// Leads the columnar encoding; the row codec starts with the u32 length
// of the table name, which PutString caps well below this value.
constexpr uint32_t kColumnarSentinel = 0xFFFFFFFFu;
constexpr uint8_t kColumnarVersion = 1;

void EncodeSchema(std::string* out, const rel::Table& table) {
  PutString(out, table.name());
  PutU32(out, static_cast<uint32_t>(table.schema().NumColumns()));
  for (const rel::ColumnDef& col : table.schema().columns()) {
    PutString(out, col.name);
    PutU8(out, ColumnTypeTag(col.type));
  }
}

struct DecodedSchema {
  std::string name;
  rel::Schema schema;
};

Result<DecodedSchema> DecodeSchema(ByteReader& reader) {
  GEA_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(uint32_t num_columns, reader.ReadU32());
  std::vector<rel::ColumnDef> defs;
  defs.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    GEA_ASSIGN_OR_RETURN(std::string col_name, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
    GEA_ASSIGN_OR_RETURN(rel::ValueType type, ColumnTypeFromTag(tag));
    defs.push_back({std::move(col_name), type});
  }
  GEA_ASSIGN_OR_RETURN(rel::Schema schema,
                       rel::Schema::Create(std::move(defs)));
  return DecodedSchema{std::move(name), std::move(schema)};
}

}  // namespace

std::string EncodeTable(const rel::Table& table) {
  std::string out;
  EncodeSchema(&out, table);
  PutU64(&out, table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      const rel::Value v = table.At(r, c);
      switch (v.type()) {
        case rel::ValueType::kNull:
          PutU8(&out, kCellNull);
          break;
        case rel::ValueType::kInt:
          PutU8(&out, kCellInt);
          PutI64(&out, v.AsInt());
          break;
        case rel::ValueType::kDouble:
          PutU8(&out, kCellDouble);
          PutF64(&out, v.AsDouble());
          break;
        case rel::ValueType::kString:
          PutU8(&out, kCellString);
          PutString(&out, v.AsString());
          break;
      }
    }
  }
  return out;
}

std::string EncodeTableColumnar(const rel::Table& table) {
  std::string out;
  PutU32(&out, kColumnarSentinel);
  PutU8(&out, kColumnarVersion);
  EncodeSchema(&out, table);
  const size_t rows = table.NumRows();
  PutU64(&out, rows);
  const size_t words = rel::Column::NullWordsFor(rows);
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const rel::Column& col = table.column(c);
    for (size_t w = 0; w < words; ++w) PutU64(&out, col.null_words()[w]);
    switch (col.type()) {
      case rel::ValueType::kInt:
        for (size_t r = 0; r < rows; ++r) PutI64(&out, col.int_data()[r]);
        break;
      case rel::ValueType::kDouble:
        for (size_t r = 0; r < rows; ++r) PutF64(&out, col.double_data()[r]);
        break;
      case rel::ValueType::kString: {
        PutU32(&out, static_cast<uint32_t>(col.dict().size()));
        for (const std::string& s : col.dict()) PutString(&out, s);
        for (size_t r = 0; r < rows; ++r) PutU32(&out, col.code_data()[r]);
        break;
      }
      case rel::ValueType::kNull:
        break;  // no payload; the bitmap says it all
    }
  }
  return out;
}

namespace {

Result<rel::Table> DecodeTableColumnar(ByteReader& reader) {
  GEA_ASSIGN_OR_RETURN(uint8_t version, reader.ReadU8());
  if (version != kColumnarVersion) {
    return Status::InvalidArgument("unsupported columnar table version: " +
                                   std::to_string(version));
  }
  GEA_ASSIGN_OR_RETURN(DecodedSchema decoded, DecodeSchema(reader));
  GEA_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadU64());
  const size_t words = rel::Column::NullWordsFor(rows);
  // Every column spends 8 bytes per 64 rows on its bitmap; rejecting row
  // counts the buffer cannot possibly hold keeps allocation sizes honest
  // before any vector is sized from attacker-controlled input.
  if (decoded.schema.NumColumns() > 0 && words * 8 > reader.remaining()) {
    return Truncated("columnar null bitmap");
  }
  std::vector<rel::Column> columns;
  columns.reserve(decoded.schema.NumColumns());
  for (size_t c = 0; c < decoded.schema.NumColumns(); ++c) {
    std::vector<uint64_t> nulls(words);
    for (size_t w = 0; w < words; ++w) {
      GEA_ASSIGN_OR_RETURN(nulls[w], reader.ReadU64());
    }
    switch (decoded.schema.column(c).type) {
      case rel::ValueType::kInt: {
        std::vector<int64_t> vals(rows);
        for (uint64_t r = 0; r < rows; ++r) {
          GEA_ASSIGN_OR_RETURN(vals[r], reader.ReadI64());
          if ((nulls[r >> 6] >> (r & 63)) & 1) vals[r] = 0;  // canonical fill
        }
        columns.push_back(
            rel::Column::FromRawInts(std::move(vals), std::move(nulls), rows));
        break;
      }
      case rel::ValueType::kDouble: {
        std::vector<double> vals(rows);
        for (uint64_t r = 0; r < rows; ++r) {
          GEA_ASSIGN_OR_RETURN(vals[r], reader.ReadF64());
          if ((nulls[r >> 6] >> (r & 63)) & 1) vals[r] = 0.0;
        }
        columns.push_back(rel::Column::FromRawDoubles(std::move(vals),
                                                      std::move(nulls), rows));
        break;
      }
      case rel::ValueType::kString: {
        GEA_ASSIGN_OR_RETURN(uint32_t dict_size, reader.ReadU32());
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint32_t d = 0; d < dict_size; ++d) {
          GEA_ASSIGN_OR_RETURN(std::string s, reader.ReadString());
          dict.push_back(std::move(s));
        }
        std::vector<uint32_t> codes(rows);
        for (uint64_t r = 0; r < rows; ++r) {
          GEA_ASSIGN_OR_RETURN(codes[r], reader.ReadU32());
          const bool is_null = (nulls[r >> 6] >> (r & 63)) & 1;
          if (!is_null && codes[r] >= dict_size) {
            return Status::InvalidArgument(
                "dictionary code out of range: " + std::to_string(codes[r]));
          }
          if (is_null) codes[r] = 0;  // canonical zero fill for re-encode
        }
        columns.push_back(rel::Column::FromRawStrings(
            std::move(dict), std::move(codes), std::move(nulls), rows));
        break;
      }
      case rel::ValueType::kNull:
        columns.push_back(rel::Column::FromRawNulls(rows));
        break;
    }
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes after table encoding");
  }
  return rel::Table::FromColumns(std::move(decoded.name),
                                 std::move(decoded.schema),
                                 std::move(columns), rows);
}

}  // namespace

Result<rel::Table> DecodeTable(std::string_view data) {
  ByteReader reader(data);
  {
    ByteReader peek(data);
    Result<uint32_t> lead = peek.ReadU32();
    if (lead.ok() && *lead == kColumnarSentinel) {
      (void)reader.ReadU32();  // consume the sentinel
      return DecodeTableColumnar(reader);
    }
  }
  GEA_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(uint32_t num_columns, reader.ReadU32());
  std::vector<rel::ColumnDef> defs;
  defs.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    GEA_ASSIGN_OR_RETURN(std::string col_name, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
    GEA_ASSIGN_OR_RETURN(rel::ValueType type, ColumnTypeFromTag(tag));
    defs.push_back({std::move(col_name), type});
  }
  GEA_ASSIGN_OR_RETURN(rel::Schema schema, rel::Schema::Create(std::move(defs)));
  rel::Table table(name, schema);
  GEA_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadU64());
  for (uint64_t r = 0; r < num_rows; ++r) {
    rel::Row row;
    row.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      GEA_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
      switch (tag) {
        case kCellNull:
          row.push_back(rel::Value::Null());
          break;
        case kCellInt: {
          GEA_ASSIGN_OR_RETURN(int64_t v, reader.ReadI64());
          row.push_back(rel::Value::Int(v));
          break;
        }
        case kCellDouble: {
          GEA_ASSIGN_OR_RETURN(double v, reader.ReadF64());
          row.push_back(rel::Value::Double(v));
          break;
        }
        case kCellString: {
          GEA_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
          row.push_back(rel::Value::String(std::move(v)));
          break;
        }
        default:
          return Status::InvalidArgument("unknown cell tag: " +
                                         std::to_string(tag));
      }
    }
    GEA_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes after table encoding");
  }
  return table;
}

}  // namespace gea::store
