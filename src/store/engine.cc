#include "store/engine.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/statviews.h"

namespace gea::store {

namespace {

std::mutex g_summary_mu;
RecoverySummary g_last_summary;  // guarded by g_summary_mu

/// "123\n" -> 123; anything non-numeric -> nullopt.
std::optional<uint64_t> ParseGeneration(std::string_view text) {
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' || text.back() == ' ')) {
    text.remove_suffix(1);
  }
  if (text.empty() || text.size() > 19) return std::nullopt;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

/// "snap-<N>.gea" -> N.
std::optional<uint64_t> SnapshotGeneration(std::string_view name) {
  constexpr std::string_view kPrefix = "snap-";
  constexpr std::string_view kSuffix = ".gea";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return std::nullopt;
  return ParseGeneration(
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size()));
}

}  // namespace

std::string RecoverySummary::ToString() const {
  std::string out = "recovered generation=" + std::to_string(generation);
  out += snapshot_loaded
             ? " snapshot_sections=" + std::to_string(snapshot_sections)
             : " snapshot=none";
  out += " wal_records=" + std::to_string(wal_records_replayed);
  out += " wal_bytes=" + std::to_string(wal_bytes_replayed);
  if (wal_torn_tail) {
    out += " torn_tail_truncated=" + std::to_string(wal_bytes_truncated) + "B";
  }
  if (used_fallback_scan) out += " via_snapshot_scan";
  return out;
}

void PublishRecoverySummary(const RecoverySummary& summary) {
  std::lock_guard<std::mutex> lock(g_summary_mu);
  g_last_summary = summary;
}

RecoverySummary LastRecoverySummary() {
  std::lock_guard<std::mutex> lock(g_summary_mu);
  return g_last_summary;
}

std::string StorageEngine::SnapshotPath(uint64_t generation) const {
  return directory_ + "/snap-" + std::to_string(generation) + ".gea";
}

std::string StorageEngine::WalPath(uint64_t generation) const {
  return directory_ + "/wal-" + std::to_string(generation) + ".log";
}

std::string StorageEngine::CurrentPath() const { return directory_ + "/CURRENT"; }

Result<StorageEngine::OpenResult> StorageEngine::Open(
    FileEnv* env, const std::string& directory, const StorageOptions& options) {
  GEA_RETURN_IF_ERROR(env->CreateDirs(directory));

  OpenResult result;
  result.engine.reset(new StorageEngine(env, directory, options));
  StorageEngine& engine = *result.engine;
  RecoverySummary& summary = result.summary;
  summary.directory = directory;

  // Pick the committed generation. CURRENT is authoritative; if it is
  // missing, or names a snapshot that will not decode, fall back to the
  // highest snapshot on disk that does.
  bool resolved = false;
  if (env->FileExists(engine.CurrentPath())) {
    auto current = env->ReadFileToString(engine.CurrentPath());
    if (current.ok()) {
      if (auto generation = ParseGeneration(*current)) {
        if (*generation == 0) {
          engine.generation_ = 0;
          resolved = true;
        } else {
          auto snapshot = ReadSnapshotFile(env, engine.SnapshotPath(*generation));
          if (snapshot.ok()) {
            engine.generation_ = *generation;
            result.snapshot = std::move(*snapshot);
            resolved = true;
          }
        }
      }
    }
  }
  if (!resolved) {
    GEA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         env->ListDirectory(directory));
    // A brand-new (empty) directory is a normal bootstrap; anything else
    // here means CURRENT was missing or unusable and we had to scan.
    summary.used_fallback_scan = !names.empty();
    std::vector<uint64_t> generations;
    for (const std::string& name : names) {
      if (auto generation = SnapshotGeneration(name)) {
        generations.push_back(*generation);
      }
    }
    std::sort(generations.rbegin(), generations.rend());
    for (uint64_t generation : generations) {
      auto snapshot = ReadSnapshotFile(env, engine.SnapshotPath(generation));
      if (snapshot.ok()) {
        engine.generation_ = generation;
        result.snapshot = std::move(*snapshot);
        break;
      }
    }
    // No decodable snapshot at all: bootstrap at generation 0 and let
    // the WAL (if any) carry the whole history.

    // Repair CURRENT so it is authoritative from here on — otherwise
    // every reopen of a bootstrap (or scan-recovered) directory would
    // take this fallback path again.
    GEA_RETURN_IF_ERROR(engine.WriteCurrentFile(engine.generation_));
  }
  summary.generation = engine.generation_;
  if (result.snapshot.has_value()) {
    summary.snapshot_loaded = true;
    summary.snapshot_sections = result.snapshot->sections.size();
  }

  // Read the WAL tail and cut off any torn suffix so the file ends on a
  // record boundary before we start appending after it.
  const std::string wal_path = engine.WalPath(engine.generation_);
  GEA_ASSIGN_OR_RETURN(WalReadResult wal, ReadWalFile(env, wal_path));
  if (wal.torn_tail && wal.dropped_bytes > 0) {
    GEA_ASSIGN_OR_RETURN(std::string raw, env->ReadFileToString(wal_path));
    const std::string tmp = wal_path + ".tmp";
    GEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(tmp, /*truncate=*/true));
    GEA_RETURN_IF_ERROR(
        file->Append(std::string_view(raw).substr(0, wal.valid_bytes)));
    GEA_RETURN_IF_ERROR(file->Sync());
    GEA_RETURN_IF_ERROR(file->Close());
    GEA_RETURN_IF_ERROR(env->RenameFile(tmp, wal_path));
    GEA_RETURN_IF_ERROR(env->SyncDirectory(directory));
  }
  summary.wal_torn_tail = wal.torn_tail;
  summary.wal_bytes_replayed = wal.valid_bytes;
  summary.wal_bytes_truncated = wal.dropped_bytes;
  for (WalRecord& record : wal.records) {
    if (record.type == WalRecord::Type::kCheckpoint) continue;
    result.records.push_back(std::move(record));
  }
  summary.wal_records_replayed = result.records.size();

  GEA_ASSIGN_OR_RETURN(
      engine.wal_, WalWriter::Open(env, wal_path, /*truncate=*/false,
                                   options.sync_every_record));
  engine.records_since_checkpoint_ = result.records.size();
  engine.last_lsn_ = result.records.size();

  // Sweep leftovers from interrupted checkpoints (best-effort).
  if (auto names = env->ListDirectory(directory); names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = directory + "/" + name;
      if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
        (void)env->RemoveFile(path);
        continue;
      }
      if (auto generation = SnapshotGeneration(name);
          generation && *generation != engine.generation_) {
        (void)env->RemoveFile(path);
        (void)env->RemoveFile(directory + "/wal-" +
                              std::to_string(*generation) + ".log");
      }
    }
  }

  static obs::Counter& replayed =
      obs::MetricsRegistry::Global().GetCounter("gea.store.recovery_replayed");
  replayed.Add(static_cast<int64_t>(result.records.size()));
  PublishRecoverySummary(summary);
  return result;
}

Status StorageEngine::Append(const WalRecord& record) {
  if (!wal_) return Status::FailedPrecondition("storage engine is closed");
  GEA_RETURN_IF_ERROR(wal_->Append(record));
  records_since_checkpoint_ += 1;
  last_lsn_ += 1;
  return Status::OK();
}

Status StorageEngine::AppendBatch(const std::vector<WalRecord>& records) {
  if (!wal_) return Status::FailedPrecondition("storage engine is closed");
  if (records.empty()) return Status::OK();
  GEA_RETURN_IF_ERROR(wal_->AppendBatch(records));
  records_since_checkpoint_ += records.size();
  last_lsn_ += records.size();
  return Status::OK();
}

bool StorageEngine::CheckpointDue() const {
  return options_.checkpoint_every_records > 0 &&
         records_since_checkpoint_ >= options_.checkpoint_every_records;
}

Status StorageEngine::Checkpoint(const SnapshotImage& image) {
  const uint64_t next = generation_ + 1;

  // 1. Publish the snapshot (atomic in WriteSnapshotFile).
  GEA_RETURN_IF_ERROR(WriteSnapshotFile(env_, SnapshotPath(next), image));

  // 2. Start the next WAL with a checkpoint marker; until CURRENT is
  //    replaced this file is invisible to recovery.
  GEA_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> next_wal,
                       WalWriter::Open(env_, WalPath(next), /*truncate=*/true,
                                       options_.sync_every_record));
  WalRecord marker;
  marker.type = WalRecord::Type::kCheckpoint;
  marker.op = "checkpoint";
  marker.params["generation"] = std::to_string(next);
  GEA_RETURN_IF_ERROR(next_wal->Append(marker));
  GEA_RETURN_IF_ERROR(next_wal->Sync());

  // 3. Commit: CURRENT now names the new generation.
  GEA_RETURN_IF_ERROR(WriteCurrentFile(next));

  const uint64_t previous = generation_;
  if (wal_) (void)wal_->Close();
  wal_ = std::move(next_wal);
  generation_ = next;
  records_since_checkpoint_ = 0;

  // 4. Retire the old generation (best-effort; recovery sweeps stragglers).
  if (previous >= 1) (void)env_->RemoveFile(SnapshotPath(previous));
  (void)env_->RemoveFile(WalPath(previous));

  static obs::Counter& checkpoints =
      obs::MetricsRegistry::Global().GetCounter("gea.store.checkpoints");
  checkpoints.Add(1);
  return Status::OK();
}

Status StorageEngine::WriteCurrentFile(uint64_t generation) {
  const std::string tmp = CurrentPath() + ".tmp";
  GEA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env_->NewWritableFile(tmp, /*truncate=*/true));
  GEA_RETURN_IF_ERROR(file->Append(std::to_string(generation) + "\n"));
  GEA_RETURN_IF_ERROR(file->Sync());
  GEA_RETURN_IF_ERROR(file->Close());
  GEA_RETURN_IF_ERROR(env_->RenameFile(tmp, CurrentPath()));
  return env_->SyncDirectory(directory_);
}

Status StorageEngine::Close() {
  if (!wal_) return Status::OK();
  Status s = wal_->Close();
  wal_.reset();
  return s;
}

StorageEngine::~StorageEngine() { (void)Close(); }

namespace {

/// The gea_stat_storage view: the last recovery summary plus every
/// gea.store.* counter and the fsync latency digest. Queryable like any
/// other stat view and served on /statz:
///   SELECT name, value FROM gea_stat_storage
rel::Table StorageStatTable() {
  rel::Table table(obs::kStatStorageView,
                   rel::Schema({{"name", rel::ValueType::kString},
                                {"value", rel::ValueType::kInt}}));
  auto add = [&table](const std::string& name, uint64_t value) {
    const uint64_t cap =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    table.AppendRowUnchecked(
        {rel::Value::String(name),
         rel::Value::Int(static_cast<int64_t>(std::min(value, cap)))});
  };
  const RecoverySummary summary = LastRecoverySummary();
  add("recovery.generation", summary.generation);
  add("recovery.snapshot_loaded", summary.snapshot_loaded ? 1 : 0);
  add("recovery.snapshot_sections", summary.snapshot_sections);
  add("recovery.wal_records_replayed", summary.wal_records_replayed);
  add("recovery.wal_bytes_replayed", summary.wal_bytes_replayed);
  add("recovery.wal_bytes_truncated", summary.wal_bytes_truncated);
  add("recovery.wal_torn_tail", summary.wal_torn_tail ? 1 : 0);
  add("recovery.used_fallback_scan", summary.used_fallback_scan ? 1 : 0);

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (const obs::CounterValue& c : snapshot.counters) {
    if (c.name.rfind("gea.store.", 0) == 0) add(c.name, c.value);
  }
  for (const obs::HistogramValue& h : snapshot.histograms) {
    if (h.name.rfind("gea.store.", 0) != 0) continue;
    add(h.name + ".count", h.count);
    add(h.name + ".mean", static_cast<uint64_t>(h.Mean()));
    add(h.name + ".p95", h.ApproxQuantile(0.95));
  }
  return table;
}

/// Static-init registration: any binary linking gea_store gets the view
/// in RegisterStatViews / /statz automatically.
const bool g_storage_view_registered = [] {
  obs::RegisterStatViewProvider(obs::kStatStorageView, StorageStatTable);
  return true;
}();

}  // namespace

}  // namespace gea::store
