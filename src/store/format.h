#ifndef GEA_STORE_FORMAT_H_
#define GEA_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "rel/table.h"

namespace gea::store {

/// Little-endian fixed-width primitives for the snapshot and WAL formats.
/// Strings are u32-length-prefixed byte runs. Every composite the engine
/// writes is framed and CRC32-checked one level up (snapshot.h / wal.h);
/// this layer is pure byte shuffling.

void PutU8(std::string* dst, uint8_t v);
void PutU32(std::string* dst, uint32_t v);
void PutU64(std::string* dst, uint64_t v);
void PutI64(std::string* dst, int64_t v);
void PutF64(std::string* dst, double v);
void PutString(std::string* dst, std::string_view v);

/// Sequential reader over an encoded buffer. Every getter fails with
/// OutOfRange on truncated input instead of reading past the end, which
/// is what turns a torn write into a clean recovery instead of UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Row-oriented relation codec: name, schema (column name + type byte),
/// row count, then cells. Each cell is a type tag byte followed by its
/// payload, so NULLs round-trip in any column. This was the snapshot
/// section body through PR 4 and is still the wire encoding of get_table
/// responses (kept byte-compatible for clients); snapshots now use
/// EncodeTableColumnar below.
std::string EncodeTable(const rel::Table& table);

/// Columnar relation codec: each column serializes as its null bitmap
/// followed by the contiguous payload vector (dictionary + codes for
/// strings). The encoding opens with a u32 0xFFFFFFFF sentinel — an
/// impossible name length in the row codec — so DecodeTable can tell the
/// two apart and keep reading PR-4-era snapshots.
std::string EncodeTableColumnar(const rel::Table& table);

/// Decodes either codec, dispatching on the leading sentinel.
Result<rel::Table> DecodeTable(std::string_view data);

}  // namespace gea::store

#endif  // GEA_STORE_FORMAT_H_
