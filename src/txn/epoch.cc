#include "txn/epoch.h"

#include <mutex>
#include <set>

#include "obs/metrics.h"

namespace gea::txn {

namespace {

obs::Gauge& PinnedGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("gea.txn.pinned_readers");
  return gauge;
}

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::set<const EpochManager*>& Registry() {
  static auto* managers = new std::set<const EpochManager*>;
  return *managers;
}

}  // namespace

SnapshotPin::SnapshotPin(std::shared_ptr<const CatalogSnapshot> snapshot,
                         std::shared_ptr<std::atomic<int64_t>> pinned)
    : snapshot_(std::move(snapshot)), pinned_(std::move(pinned)) {
  if (pinned_) {
    pinned_->fetch_add(1, std::memory_order_relaxed);
    PinnedGauge().Add(1);
  }
}

SnapshotPin::~SnapshotPin() {
  if (pinned_) {
    pinned_->fetch_sub(1, std::memory_order_relaxed);
    PinnedGauge().Add(-1);
  }
}

SnapshotPin::SnapshotPin(const SnapshotPin& other)
    : snapshot_(other.snapshot_), pinned_(other.pinned_) {
  if (pinned_) {
    pinned_->fetch_add(1, std::memory_order_relaxed);
    PinnedGauge().Add(1);
  }
}

SnapshotPin& SnapshotPin::operator=(const SnapshotPin& other) {
  if (this == &other) return *this;
  SnapshotPin copy(other);
  *this = std::move(copy);
  return *this;
}

SnapshotPin::SnapshotPin(SnapshotPin&& other) noexcept
    : snapshot_(std::move(other.snapshot_)), pinned_(std::move(other.pinned_)) {
  other.snapshot_.reset();
  other.pinned_.reset();
}

SnapshotPin& SnapshotPin::operator=(SnapshotPin&& other) noexcept {
  if (this == &other) return *this;
  if (pinned_) {
    pinned_->fetch_sub(1, std::memory_order_relaxed);
    PinnedGauge().Add(-1);
  }
  snapshot_ = std::move(other.snapshot_);
  pinned_ = std::move(other.pinned_);
  other.snapshot_.reset();
  other.pinned_.reset();
  return *this;
}

EpochManager::EpochManager()
    : pinned_(std::make_shared<std::atomic<int64_t>>(0)) {
  RegisterTransactionStatView();
  current_.store(std::make_shared<const CatalogSnapshot>(),
                 std::memory_order_release);
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().insert(this);
}

EpochManager::~EpochManager() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().erase(this);
}

SnapshotPin EpochManager::Pin() const {
  return SnapshotPin(current_.load(std::memory_order_acquire), pinned_);
}

uint64_t EpochManager::Publish(CatalogSnapshot next) {
  const std::shared_ptr<const CatalogSnapshot> prev =
      current_.load(std::memory_order_acquire);
  next.epoch = prev->epoch + 1;
  const uint64_t epoch = next.epoch;
  const uint64_t retired = RetiredBytes(*prev, next);

  current_.store(std::make_shared<const CatalogSnapshot>(std::move(next)),
                 std::memory_order_release);

  published_.fetch_add(1, std::memory_order_relaxed);
  retired_bytes_.fetch_add(retired, std::memory_order_relaxed);
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& epochs_published =
      registry.GetCounter("gea.txn.epochs_published");
  static obs::Counter& retired_bytes =
      registry.GetCounter("gea.txn.retired_bytes");
  static obs::Gauge& live_epoch = registry.GetGauge("gea.txn.live_epoch");
  epochs_published.Add(1);
  retired_bytes.Add(retired);
  live_epoch.Set(static_cast<int64_t>(epoch));
  return epoch;
}

uint64_t EpochManager::CurrentEpoch() const {
  return current_.load(std::memory_order_acquire)->epoch;
}

std::vector<EpochManagerStats> LiveEpochManagerStats() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<EpochManagerStats> stats;
  stats.reserve(Registry().size());
  for (const EpochManager* manager : Registry()) {
    EpochManagerStats s;
    s.current_epoch = manager->CurrentEpoch();
    s.pinned_readers = manager->PinnedReaders();
    s.epochs_published = manager->EpochsPublished();
    s.retired_bytes = manager->RetiredBytesTotal();
    stats.push_back(s);
  }
  return stats;
}

}  // namespace gea::txn
