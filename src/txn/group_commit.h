#ifndef GEA_TXN_GROUP_COMMIT_H_
#define GEA_TXN_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/status.h"
#include "store/engine.h"
#include "store/wal.h"

namespace gea::txn {

class GroupCommitter;

/// One submitted WAL record's handle. Wait() blocks until the record's
/// whole batch is durable (one shared fsync) and returns the commit
/// status; it is idempotent and callable from any thread.
class CommitTicket {
 public:
  /// Blocks until durable (or failed). The calling thread may be drafted
  /// as the batch leader (see GroupCommitter). Charges the wait to the
  /// active request's wal_fsync stage when one is being collected.
  Status Wait();

  /// The record's log sequence number, assigned at Submit() time.
  uint64_t lsn() const { return lsn_; }

 private:
  friend class GroupCommitter;
  struct Shared;
  explicit CommitTicket(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<Shared> shared_;
  uint64_t lsn_ = 0;
  bool done_ = false;   // guarded by Shared::mu
  Status status_ = Status::OK();  // guarded by Shared::mu
};

/// Group-commit WAL committer: concurrent Submit()s enqueue encoded
/// records into one commit batch; the first thread to Wait() (or Drain())
/// while no leader is active becomes the leader, drains the whole queue
/// through StorageEngine::AppendBatch — every record appended, ONE fsync —
/// fires the durable callback per record in LSN order, and wakes all
/// waiters (leader-follower handoff, no dedicated thread).
///
/// Durability contract (identical to per-record sync, just batched):
///   - a ticket's Wait() returns OK only after the fsync covering its
///     record succeeded;
///   - the durable callback (the replication observer) fires only for
///     fsync-acked records, in LSN order, before their waiters are woken;
///   - a batch that fails anywhere acknowledges NOTHING: every ticket in
///     it gets the error, no callback fires, and the committer goes
///     sticky-failed (subsequent submits fail fast) because the WAL tail
///     is now indeterminate. Recovery replays exactly the previously
///     acked prefix; the torn batch suffix is trimmed like any torn tail.
///
/// LSNs are assigned at Submit() time by a committer-owned counter seeded
/// from engine->last_lsn(), so the engine's own counter (which advances
/// only on durable batches) and the tickets always agree on success.
///
/// Threading: Submit() is called under the session's writer exclusivity;
/// Wait() runs anywhere (typically after the writer lock is released, so
/// concurrent writers' fsyncs coalesce). Exactly one leader runs at a
/// time; the engine is never touched concurrently.
class GroupCommitter {
 public:
  using DurableCallback =
      std::function<void(uint64_t lsn, const store::WalRecord& record)>;

  /// `engine` must outlive every Wait()/Drain() (the session closes the
  /// committer via Drain() before closing the engine).
  explicit GroupCommitter(store::StorageEngine* engine);
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Observer fired per durable record (replication shipping). Set before
  /// any Submit; fires on whichever thread leads the batch.
  void set_durable_callback(DurableCallback callback);

  /// Enqueues `record` and returns its ticket. Does not block and does
  /// not touch the engine.
  std::shared_ptr<CommitTicket> Submit(store::WalRecord record);

  /// Commits everything queued (acting as leader if needed) and waits for
  /// any in-flight batch. Required before checkpoint/close, which rotate
  /// the WAL under the engine. Returns the sticky error, if any.
  Status Drain();

  /// Records submitted but not yet durable (diagnostics / stat view).
  size_t QueueDepth() const;

 private:
  friend class CommitTicket;
  static Status WaitOn(const std::shared_ptr<CommitTicket::Shared>& shared,
                       CommitTicket* ticket);
  std::shared_ptr<CommitTicket::Shared> shared_;
};

/// Live committers' aggregate queue depth, for gea_stat_transactions.
size_t LiveCommitterQueueDepth();

}  // namespace gea::txn

#endif  // GEA_TXN_GROUP_COMMIT_H_
