#ifndef GEA_TXN_SNAPSHOT_H_
#define GEA_TXN_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/enum_table.h"
#include "core/gap.h"
#include "core/sumy.h"
#include "rel/catalog.h"
#include "sage/dataset.h"

namespace gea::txn {

/// One immutable, fully self-contained version of the analysis catalog —
/// what a reader sees for the entire duration of a pinned operation.
///
/// Tables are held by shared_ptr-to-const and SHARED between consecutive
/// snapshots: publishing epoch N+1 shallow-copies the maps of epoch N and
/// swaps in fresh pointers only for the tables the writer touched
/// (copy-on-write at table granularity). A table's memory is reclaimed by
/// the last shared_ptr release, i.e. once every epoch referencing it has
/// been retired and every pin on those epochs dropped — epoch-based
/// reclamation piggybacked on refcounts, with the accounting surfaced as
/// gea.txn.retired_bytes.
///
/// `relations` is a frozen rel::Catalog clone. Computed stat views clone
/// as builders (std::function copies), so materializing gea_stat_* from a
/// frozen snapshot still reads LIVE telemetry — only the stored tables
/// are versioned.
struct CatalogSnapshot {
  uint64_t epoch = 0;

  std::map<std::string, std::shared_ptr<const core::EnumTable>> enums;
  std::map<std::string, std::shared_ptr<const core::SumyTable>> sumys;
  std::map<std::string, std::shared_ptr<const core::GapTable>> gaps;
  std::map<std::string, std::shared_ptr<const std::vector<double>>> metadata;
  std::shared_ptr<const sage::SageDataSet> dataset;
  std::shared_ptr<const rel::Catalog> relations;
};

/// Approximate heap footprint of one table, for reclamation accounting.
uint64_t ApproxTableBytes(const core::EnumTable& table);
uint64_t ApproxTableBytes(const core::SumyTable& table);
uint64_t ApproxTableBytes(const core::GapTable& table);

/// Bytes of `prev` no longer reachable from `next` (pointer-identity
/// diff over the four table maps plus the relations catalog). This is
/// what an epoch publication schedules for reclamation.
uint64_t RetiredBytes(const CatalogSnapshot& prev, const CatalogSnapshot& next);

}  // namespace gea::txn

#endif  // GEA_TXN_SNAPSHOT_H_
