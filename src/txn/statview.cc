// gea_stat_transactions: one (name, value) table over the MVCC epoch and
// group-commit telemetry, registered as a stat-view provider at
// static-init time so any binary linking gea_txn can SELECT it (and
// gea_shell's \stats can fetch it over the wire).

#include <algorithm>
#include <limits>
#include <string>

#include "obs/metrics.h"
#include "obs/statviews.h"
#include "rel/table.h"
#include "txn/epoch.h"
#include "txn/group_commit.h"

namespace gea::txn {
namespace {

rel::Table TransactionStatTable() {
  rel::Table table(obs::kStatTransactionsView,
                   rel::Schema({{"name", rel::ValueType::kString},
                                {"value", rel::ValueType::kInt}}));
  auto add = [&table](const std::string& name, uint64_t value) {
    const uint64_t cap =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    table.AppendRowUnchecked(
        {rel::Value::String(name),
         rel::Value::Int(static_cast<int64_t>(std::min(value, cap)))});
  };

  // Live per-manager state (one session = one manager; aggregate).
  uint64_t live_managers = 0, current_epoch = 0, retired_bytes = 0,
           epochs_published = 0;
  int64_t pinned = 0;
  for (const EpochManagerStats& s : LiveEpochManagerStats()) {
    live_managers += 1;
    current_epoch = std::max(current_epoch, s.current_epoch);
    pinned += s.pinned_readers;
    epochs_published += s.epochs_published;
    retired_bytes += s.retired_bytes;
  }
  add("epoch.live_managers", live_managers);
  add("epoch.current", current_epoch);
  add("epoch.pinned_readers", static_cast<uint64_t>(std::max<int64_t>(0, pinned)));
  add("epoch.published", epochs_published);
  add("epoch.retired_bytes", retired_bytes);
  add("commit.queue_depth", LiveCommitterQueueDepth());

  // The gea.txn.* registry metrics: cumulative counters plus the batch
  // size and fsync-amortization histograms.
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (const obs::CounterValue& c : snapshot.counters) {
    if (c.name.rfind("gea.txn.", 0) == 0) add(c.name, c.value);
  }
  for (const obs::GaugeValue& g : snapshot.gauges) {
    if (g.name.rfind("gea.txn.", 0) == 0) {
      add(g.name, static_cast<uint64_t>(std::max<int64_t>(0, g.value)));
    }
  }
  for (const obs::HistogramValue& h : snapshot.histograms) {
    if (h.name.rfind("gea.txn.", 0) != 0) continue;
    add(h.name + ".count", h.count);
    add(h.name + ".mean", static_cast<uint64_t>(h.Mean()));
    add(h.name + ".p50", h.ApproxQuantile(0.50));
    add(h.name + ".p95", h.ApproxQuantile(0.95));
  }
  return table;
}

}  // namespace

// Registration is anchored from the EpochManager constructor rather than
// a static initializer in this translation unit: nothing else references
// statview.o, so a plain static-init registration would be dropped when
// linking the gea_txn archive.
void RegisterTransactionStatView() {
  static const bool registered = [] {
    obs::RegisterStatViewProvider(obs::kStatTransactionsView,
                                  TransactionStatTable);
    return true;
  }();
  (void)registered;
}

}  // namespace gea::txn
