#ifndef GEA_TXN_EPOCH_H_
#define GEA_TXN_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "txn/snapshot.h"

namespace gea::txn {

class EpochManager;

/// RAII pin on one published epoch. While any pin on an epoch lives, every
/// table that epoch references stays allocated (the pin holds the
/// snapshot's shared_ptr), so a reader can dereference borrowed pointers
/// out of the snapshot for the pin's whole scope without any lock.
///
/// Copyable (a pin is just two refcounts); destruction of the last pin on
/// a retired epoch releases its tables.
class SnapshotPin {
 public:
  SnapshotPin() = default;
  ~SnapshotPin();

  SnapshotPin(const SnapshotPin& other);
  SnapshotPin& operator=(const SnapshotPin& other);
  SnapshotPin(SnapshotPin&& other) noexcept;
  SnapshotPin& operator=(SnapshotPin&& other) noexcept;

  const CatalogSnapshot& operator*() const { return *snapshot_; }
  const CatalogSnapshot* operator->() const { return snapshot_.get(); }
  const std::shared_ptr<const CatalogSnapshot>& snapshot() const {
    return snapshot_;
  }
  bool valid() const { return snapshot_ != nullptr; }
  uint64_t epoch() const { return snapshot_ ? snapshot_->epoch : 0; }

 private:
  friend class EpochManager;
  SnapshotPin(std::shared_ptr<const CatalogSnapshot> snapshot,
              std::shared_ptr<std::atomic<int64_t>> pinned);

  std::shared_ptr<const CatalogSnapshot> snapshot_;
  // Live-pin gauge shared with the manager; survives the manager so a
  // straggling pin can always decrement safely.
  std::shared_ptr<std::atomic<int64_t>> pinned_;
};

/// Publishes immutable CatalogSnapshot versions through one atomic
/// pointer swap and hands out pins on the current one.
///
/// Concurrency contract:
///   - Pin() is wait-free for any number of concurrent readers (one
///     atomic shared_ptr load + a relaxed gauge increment).
///   - Publish() is called by at most one writer at a time (the session
///     serializes writers externally); it stamps the next epoch number,
///     swaps the pointer, and accounts the bytes the superseded snapshot
///     no longer shares with the new one as retired.
///   - Reclamation is deferred, not immediate: a retired epoch's tables
///     free when the last pin referencing them drops (shared_ptr
///     refcounts do the grace-period bookkeeping a classic epoch scheme
///     tracks manually).
///
/// Metrics: gea.txn.epochs_published, gea.txn.retired_bytes,
/// gea.txn.pinned_readers (gauge), gea.txn.live_epoch (gauge).
class EpochManager {
 public:
  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Pins the current snapshot. Valid even before the first Publish()
  /// (an empty epoch-0 snapshot).
  SnapshotPin Pin() const;

  /// Stamps `next` with the next epoch number and makes it current.
  /// Returns the published epoch number. Caller must be the (single)
  /// writer.
  uint64_t Publish(CatalogSnapshot next);

  uint64_t CurrentEpoch() const;
  int64_t PinnedReaders() const {
    return pinned_->load(std::memory_order_relaxed);
  }

  /// Cumulative per-manager counters, for the stat view.
  uint64_t EpochsPublished() const {
    return published_.load(std::memory_order_relaxed);
  }
  uint64_t RetiredBytesTotal() const {
    return retired_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const CatalogSnapshot>> current_;
  std::shared_ptr<std::atomic<int64_t>> pinned_;
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> retired_bytes_{0};
};

/// Registry of live EpochManagers feeding gea_stat_transactions; managers
/// register in their constructor and unregister in their destructor.
struct EpochManagerStats {
  uint64_t current_epoch = 0;
  int64_t pinned_readers = 0;
  uint64_t epochs_published = 0;
  uint64_t retired_bytes = 0;
};
std::vector<EpochManagerStats> LiveEpochManagerStats();

/// Idempotently registers the gea_stat_transactions stat-view provider.
/// Called from the EpochManager constructor so linking any epoch user
/// pulls the view in (a bare static initializer in statview.cc would be
/// dropped with its unreferenced object file).
void RegisterTransactionStatView();

}  // namespace gea::txn

#endif  // GEA_TXN_EPOCH_H_
