#include "txn/snapshot.h"

namespace gea::txn {

uint64_t ApproxTableBytes(const core::EnumTable& table) {
  // One double per cell plus tag ids and name strings; the cell matrix
  // dominates for any real library set.
  return 8u * table.NumLibraries() * table.NumTags() + 16u * table.NumTags();
}

uint64_t ApproxTableBytes(const core::SumyTable& table) {
  return sizeof(core::SumyEntry) * table.NumTags();
}

uint64_t ApproxTableBytes(const core::GapTable& table) {
  // Per column: a double vector and a validity byte vector over the tags.
  return table.NumTags() * (8u + table.NumColumns() * 9u);
}

namespace {

// Sums ApproxTableBytes over entries of `prev` whose pointer is absent
// from `next` under the same key (replaced or dropped).
template <typename Map, typename SizeFn>
uint64_t RetiredInMap(const Map& prev, const Map& next, SizeFn size_of) {
  uint64_t bytes = 0;
  for (const auto& [name, table] : prev) {
    auto it = next.find(name);
    if (it == next.end() || it->second.get() != table.get()) {
      bytes += size_of(*table);
    }
  }
  return bytes;
}

}  // namespace

uint64_t RetiredBytes(const CatalogSnapshot& prev,
                      const CatalogSnapshot& next) {
  uint64_t bytes = 0;
  bytes += RetiredInMap(prev.enums, next.enums, [](const core::EnumTable& t) {
    return ApproxTableBytes(t);
  });
  bytes += RetiredInMap(prev.sumys, next.sumys, [](const core::SumyTable& t) {
    return ApproxTableBytes(t);
  });
  bytes += RetiredInMap(prev.gaps, next.gaps, [](const core::GapTable& t) {
    return ApproxTableBytes(t);
  });
  bytes += RetiredInMap(prev.metadata, next.metadata,
                        [](const std::vector<double>& v) {
                          return static_cast<uint64_t>(8u * v.size());
                        });
  if (prev.relations && prev.relations.get() != next.relations.get()) {
    bytes += prev.relations->ApproxBytes();
  }
  return bytes;
}

}  // namespace gea::txn
