#include "txn/group_commit.h"

#include <set>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace gea::txn {

namespace {

struct Pending {
  store::WalRecord record;
  std::shared_ptr<CommitTicket> ticket;
};

std::mutex& CommitterRegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::set<const GroupCommitter*>& CommitterRegistry() {
  static auto* committers = new std::set<const GroupCommitter*>;
  return *committers;
}

}  // namespace

struct CommitTicket::Shared {
  std::mutex mu;
  std::condition_variable cv;
  store::StorageEngine* engine = nullptr;
  GroupCommitter::DurableCallback on_durable;
  bool leader_active = false;
  Status sticky = Status::OK();
  std::deque<Pending> queue;
  uint64_t next_lsn = 1;

  /// Takes the whole queue, commits it with one fsync, fires callbacks,
  /// completes the tickets. Called with `lock` held on `mu`; returns with
  /// it held. Caller must have set leader_active.
  void LeadOneBatch(std::unique_lock<std::mutex>& lock) {
    std::deque<Pending> batch;
    batch.swap(queue);
    const Status sticky_at_entry = sticky;
    lock.unlock();

    std::vector<store::WalRecord> records;
    records.reserve(batch.size());
    for (const Pending& pending : batch) records.push_back(pending.record);

    Status status = sticky_at_entry;
    uint64_t append_nanos = 0;
    if (status.ok()) {
      obs::TraceSpan span("group_commit");
      const uint64_t start = obs::NowNanos();
      status = engine->AppendBatch(records);
      append_nanos = obs::NowNanos() - start;
    }

    if (status.ok() && on_durable) {
      // LSN order within the batch (queue order) and across batches
      // (single leader at a time) — the replication hub's ordering
      // contract.
      for (const Pending& pending : batch) {
        on_durable(pending.ticket->lsn_, pending.record);
      }
    }

    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter& commits =
        registry.GetCounter("gea.txn.group_commits");
    static obs::Counter& commit_records =
        registry.GetCounter("gea.txn.group_commit_records");
    static obs::Histogram& batch_records =
        registry.GetHistogram("gea.txn.group_commit_batch_records");
    static obs::Histogram& per_record =
        registry.GetHistogram("gea.txn.fsync_nanos_per_record");
    commits.Add(1);
    commit_records.Add(batch.size());
    batch_records.Record(batch.size());
    if (!batch.empty()) per_record.Record(append_nanos / batch.size());

    lock.lock();
    if (!status.ok() && sticky.ok()) sticky = status;
    for (const Pending& pending : batch) {
      pending.ticket->done_ = true;
      pending.ticket->status_ = status;
    }
  }
};

Status CommitTicket::Wait() {
  return GroupCommitter::WaitOn(shared_, this);
}

Status GroupCommitter::WaitOn(
    const std::shared_ptr<CommitTicket::Shared>& shared, CommitTicket* ticket) {
  const bool attribute = obs::StageCollectionActive();
  const uint64_t start = obs::NowNanos();
  bool led = false;

  std::unique_lock<std::mutex> lock(shared->mu);
  while (!ticket->done_) {
    if (!shared->leader_active) {
      shared->leader_active = true;
      shared->LeadOneBatch(lock);
      shared->leader_active = false;
      shared->cv.notify_all();
      led = true;
      continue;  // our ticket was in the batch we just led
    }
    shared->cv.wait(lock);
  }
  const Status status = ticket->status_;
  lock.unlock();

  if (attribute && !led) {
    // Followers charge their whole wait to the shared fsync; the leader's
    // collector already got the real append+fsync time inside AppendBatch.
    obs::AddStageNanos(obs::RequestStage::kWalFsync, obs::NowNanos() - start);
  }
  static obs::Histogram& wait_hist =
      obs::MetricsRegistry::Global().GetHistogram("gea.txn.commit_wait_nanos");
  wait_hist.Record(obs::NowNanos() - start);
  return status;
}

GroupCommitter::GroupCommitter(store::StorageEngine* engine)
    : shared_(std::make_shared<CommitTicket::Shared>()) {
  shared_->engine = engine;
  shared_->next_lsn = engine->last_lsn() + 1;
  std::lock_guard<std::mutex> lock(CommitterRegistryMutex());
  CommitterRegistry().insert(this);
}

GroupCommitter::~GroupCommitter() {
  (void)Drain();
  std::lock_guard<std::mutex> lock(CommitterRegistryMutex());
  CommitterRegistry().erase(this);
}

void GroupCommitter::set_durable_callback(DurableCallback callback) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->on_durable = std::move(callback);
}

std::shared_ptr<CommitTicket> GroupCommitter::Submit(store::WalRecord record) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  std::shared_ptr<CommitTicket> ticket(new CommitTicket(shared_));
  ticket->lsn_ = shared_->next_lsn++;
  if (!shared_->sticky.ok()) {
    ticket->done_ = true;
    ticket->status_ = shared_->sticky;
    return ticket;
  }
  shared_->queue.push_back({std::move(record), ticket});
  return ticket;
}

Status GroupCommitter::Drain() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  for (;;) {
    if (shared_->queue.empty() && !shared_->leader_active) {
      return shared_->sticky;
    }
    if (!shared_->leader_active) {
      shared_->leader_active = true;
      shared_->LeadOneBatch(lock);
      shared_->leader_active = false;
      shared_->cv.notify_all();
      continue;
    }
    shared_->cv.wait(lock);
  }
}

size_t GroupCommitter::QueueDepth() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->queue.size();
}

size_t LiveCommitterQueueDepth() {
  std::lock_guard<std::mutex> lock(CommitterRegistryMutex());
  size_t depth = 0;
  for (const GroupCommitter* committer : CommitterRegistry()) {
    depth += committer->QueueDepth();
  }
  return depth;
}

}  // namespace gea::txn
