#ifndef GEA_COMMON_TIMED_MUTEX_H_
#define GEA_COMMON_TIMED_MUTEX_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace gea {

/// Lock-wait profiling wrappers. Both classes satisfy the Lockable /
/// SharedLockable named requirements, so std::unique_lock,
/// std::shared_lock, std::lock_guard and std::condition_variable_any
/// work unchanged — swap the mutex type and the waits become data.
///
/// The fast path is a try_lock: an uncontended acquisition costs exactly
/// what the raw mutex costs, with no clock reads. Only when the try
/// fails (someone actually holds the lock) does the wrapper read the
/// clock around the blocking acquire, record the wait into a registry
/// histogram, and add it to the active request's `lock_wait` stage via
/// the thread-local stage sink (a no-op off the serve path). Histogram
/// recording itself is gated on GEA_METRICS like every other metric.

/// std::shared_mutex with read/write acquisition waits recorded into
/// `<name>.read_wait_nanos` / `<name>.write_wait_nanos`.
class SharedTimedMutex {
 public:
  explicit SharedTimedMutex(const std::string& name)
      : read_wait_(obs::MetricsRegistry::Global().GetHistogram(
            name + ".read_wait_nanos")),
        write_wait_(obs::MetricsRegistry::Global().GetHistogram(
            name + ".write_wait_nanos")) {}

  SharedTimedMutex(const SharedTimedMutex&) = delete;
  SharedTimedMutex& operator=(const SharedTimedMutex&) = delete;

  void lock() {
    if (mu_.try_lock()) return;
    const uint64_t start = obs::NowNanos();
    mu_.lock();
    RecordWait(write_wait_, obs::NowNanos() - start);
  }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

  void lock_shared() {
    if (mu_.try_lock_shared()) return;
    const uint64_t start = obs::NowNanos();
    mu_.lock_shared();
    RecordWait(read_wait_, obs::NowNanos() - start);
  }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  static void RecordWait(obs::Histogram& histogram, uint64_t wait) {
    histogram.Record(wait);
    obs::AddStageNanos(obs::RequestStage::kLockWait, wait);
  }

  std::shared_mutex mu_;
  obs::Histogram& read_wait_;
  obs::Histogram& write_wait_;
};

/// std::mutex with acquisition waits recorded into `<name>.wait_nanos`.
class TimedMutex {
 public:
  explicit TimedMutex(const std::string& name)
      : wait_(obs::MetricsRegistry::Global().GetHistogram(
            name + ".wait_nanos")) {}

  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  void lock() {
    if (mu_.try_lock()) return;
    const uint64_t start = obs::NowNanos();
    mu_.lock();
    const uint64_t wait = obs::NowNanos() - start;
    wait_.Record(wait);
    obs::AddStageNanos(obs::RequestStage::kLockWait, wait);
  }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  obs::Histogram& wait_;
};

}  // namespace gea

#endif  // GEA_COMMON_TIMED_MUTEX_H_
