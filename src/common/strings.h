#ifndef GEA_COMMON_STRINGS_H_
#define GEA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace gea {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Left- or right-pads `text` with spaces to `width` columns.
std::string PadRight(std::string_view text, size_t width);
std::string PadLeft(std::string_view text, size_t width);

}  // namespace gea

#endif  // GEA_COMMON_STRINGS_H_
