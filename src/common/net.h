#ifndef GEA_COMMON_NET_H_
#define GEA_COMMON_NET_H_

#include <cstddef>
#include <string_view>

#include "common/result.h"

namespace gea::net {

/// Shared blocking POSIX TCP helpers for the in-process servers (the
/// obs MonitorServer and the serve QueryServer) and the client library.
/// One place owns the fiddly parts so every socket path behaves the same:
///
///  - listeners set SO_REUSEADDR, so a restart does not trip over a
///    lingering TIME_WAIT binding;
///  - accept/recv/send retry on EINTR instead of surfacing a spurious
///    failure when a signal lands mid-call;
///  - sends use MSG_NOSIGNAL, so a peer that hung up yields EPIPE instead
///    of delivering SIGPIPE to the whole process.
///
/// Everything binds/connects loopback only — GEA's embedded servers are
/// deliberately not reachable from other hosts.

struct ListenSocket {
  int fd = -1;
  int port = 0;  // the bound port; useful when asking for port 0
};

/// Creates a listening socket on 127.0.0.1:`port` (0 picks an ephemeral
/// port, reported back in ListenSocket::port).
Result<ListenSocket> ListenLoopback(int port, int backlog = 64);

/// Blocking connect to 127.0.0.1:`port`.
Result<int> ConnectLoopback(int port);

/// Blocking accept with EINTR retry. Any other failure (including the
/// listener being closed by another thread) is an IoError.
Result<int> Accept(int listen_fd);

/// Writes all of `data`, retrying short writes and EINTR, never raising
/// SIGPIPE. IoError when the peer goes away mid-write.
Status SendAll(int fd, std::string_view data);

/// One blocking read of up to `len` bytes with EINTR retry. Returns 0 at
/// end of stream (orderly shutdown), IoError on failure.
Result<size_t> RecvSome(int fd, void* buf, size_t len);

/// Reads exactly `len` bytes. `eof_ok` reports a clean end of stream
/// *before the first byte* as 0 bytes read (so framed readers can tell a
/// closed connection from a torn frame); EOF mid-buffer is always an
/// IoError. Returns the byte count actually read (0 or `len`).
Result<size_t> RecvExact(int fd, void* buf, size_t len, bool eof_ok = false);

/// close() with EINTR tolerance; ignores errors (used on teardown paths).
void CloseFd(int fd);

}  // namespace gea::net

#endif  // GEA_COMMON_NET_H_
