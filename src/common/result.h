#ifndef GEA_COMMON_RESULT_H_
#define GEA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gea {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced (the StatusOr idiom). Example:
///
///   Result<TagId> id = EncodeTag("AAAAAAAAAC");
///   if (!id.ok()) return id.status();
///   Use(id.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must be non-OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gea

#define GEA_MACRO_CONCAT_INNER(a, b) a##b
#define GEA_MACRO_CONCAT(a, b) GEA_MACRO_CONCAT_INNER(a, b)

#define GEA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()

/// Evaluates `expr` (a Result<T>), propagating a failure to the caller and
/// otherwise binding the value to `lhs`.
#define GEA_ASSIGN_OR_RETURN(lhs, expr) \
  GEA_ASSIGN_OR_RETURN_IMPL(            \
      GEA_MACRO_CONCAT(gea_result_macro_, __LINE__), lhs, expr)

#endif  // GEA_COMMON_RESULT_H_
