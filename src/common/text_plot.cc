#include "common/text_plot.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace gea {

std::string RenderBarChart(const std::vector<TextBar>& bars, size_t width) {
  if (bars.empty()) return "";
  size_t label_width = 0;
  double max_abs = 0.0;
  bool any_negative = false;
  for (const TextBar& bar : bars) {
    label_width = std::max(label_width, bar.label.size());
    max_abs = std::max(max_abs, std::abs(bar.value));
    any_negative = any_negative || bar.value < 0.0;
  }
  if (max_abs == 0.0) max_abs = 1.0;

  std::string out;
  for (const TextBar& bar : bars) {
    size_t len = static_cast<size_t>(
        std::lround(std::abs(bar.value) / max_abs * static_cast<double>(width)));
    out += PadRight(bar.label, label_width + 2);
    if (any_negative) {
      // Two-sided: negatives grow leftwards from the axis.
      if (bar.value < 0.0) {
        out += PadLeft(std::string(len, '#'), width);
        out += '|';
        out.append(width, ' ');
      } else {
        out.append(width, ' ');
        out += '|';
        out += PadRight(std::string(len, '#'), width);
      }
    } else {
      out += std::string(len, '#');
    }
    out += ' ';
    out += FormatDouble(bar.value, 1);
    if (!bar.marker.empty()) {
      out += "  [";
      out += bar.marker;
      out += ']';
    }
    out += '\n';
  }
  return out;
}

std::string RenderValueTable(
    const std::vector<std::pair<std::string, double>>& rows,
    int value_digits) {
  size_t label_width = 0;
  for (const auto& [label, value] : rows) {
    label_width = std::max(label_width, label.size());
  }
  std::string out;
  for (const auto& [label, value] : rows) {
    out += PadRight(label, label_width + 2);
    out += FormatDouble(value, value_digits);
    out += '\n';
  }
  return out;
}

}  // namespace gea
