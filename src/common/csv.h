#ifndef GEA_COMMON_CSV_H_
#define GEA_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace gea {

/// A parsed CSV document: `header` plus `rows`, every row having
/// header.size() fields.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC-4180-style CSV text (quoted fields with embedded commas,
/// doubled quotes, and newlines are supported). The first record is the
/// header; every subsequent record must have the same field count.
Result<CsvDocument> ParseCsv(std::string_view text);

/// Serializes a document back to CSV text, quoting fields that need it.
std::string WriteCsv(const CsvDocument& doc);

/// Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path);

/// Writes a document to disk, overwriting any existing file.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace gea

#endif  // GEA_COMMON_CSV_H_
