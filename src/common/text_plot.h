#ifndef GEA_COMMON_TEXT_PLOT_H_
#define GEA_COMMON_TEXT_PLOT_H_

#include <string>
#include <vector>

namespace gea {

/// One bar of a text bar chart.
struct TextBar {
  std::string label;
  double value = 0.0;
  /// Optional group marker rendered after the bar (the thesis's figures
  /// distinguish cancer-in-fascicle / cancer-outside / normal series).
  std::string marker;
};

/// Renders a horizontal ASCII bar chart, the stand-in for the thesis's
/// figure plots (Figs. 4.2, 4.3, 4.10, 4.11). Values are scaled so the
/// largest bar spans `width` characters; negative values render to the
/// left of the axis. Labels are right-padded to align the bars.
std::string RenderBarChart(const std::vector<TextBar>& bars,
                           size_t width = 50);

/// Renders a two-column table of (label, value) pairs with aligned
/// columns, used by the report harnesses.
std::string RenderValueTable(
    const std::vector<std::pair<std::string, double>>& rows,
    int value_digits = 1);

}  // namespace gea

#endif  // GEA_COMMON_TEXT_PLOT_H_
