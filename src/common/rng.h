#ifndef GEA_COMMON_RNG_H_
#define GEA_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace gea {

/// Deterministic pseudo-random source used by all synthetic-data generators
/// and randomized algorithms, so every experiment in this repository is
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard-normal draw scaled to mean/stddev.
  double Normal(double mean, double stddev);

  /// Poisson draw with the given mean (mean > 0).
  int64_t Poisson(double mean);

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gea

#endif  // GEA_COMMON_RNG_H_
