#include "common/status.h"

namespace gea {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gea
