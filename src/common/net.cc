#include "common/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace gea::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Result<ListenSocket> ListenLoopback(int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, on purpose
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg =
        Errno(("bind 127.0.0.1:" + std::to_string(port)).c_str());
    CloseFd(fd);
    return Status::IoError(msg);
  }
  if (listen(fd, backlog) != 0) {
    const std::string msg = Errno("listen");
    CloseFd(fd);
    return Status::IoError(msg);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string msg = Errno("getsockname");
    CloseFd(fd);
    return Status::IoError(msg);
  }
  return ListenSocket{fd, ntohs(bound.sin_port)};
}

Result<int> ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string msg =
        Errno(("connect 127.0.0.1:" + std::to_string(port)).c_str());
    CloseFd(fd);
    return Status::IoError(msg);
  }
  return fd;
}

Result<int> Accept(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Status::IoError(Errno("accept"));
  }
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("send"));
    }
    if (n == 0) return Status::IoError("send: connection closed");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::IoError(Errno("recv"));
  }
}

Result<size_t> RecvExact(int fd, void* buf, size_t len, bool eof_ok) {
  size_t got = 0;
  while (got < len) {
    GEA_ASSIGN_OR_RETURN(
        size_t n, RecvSome(fd, static_cast<char*>(buf) + got, len - got));
    if (n == 0) {
      if (got == 0 && eof_ok) return size_t{0};
      return Status::IoError("recv: connection closed mid-read (" +
                             std::to_string(got) + " of " +
                             std::to_string(len) + " bytes)");
    }
    got += n;
  }
  return got;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified on EINTR; retrying a close can
  // double-close a racing fd, so one call is the safe idiom on Linux.
  close(fd);
}

}  // namespace gea::net
