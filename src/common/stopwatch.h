#ifndef GEA_COMMON_STOPWATCH_H_
#define GEA_COMMON_STOPWATCH_H_

#include <cstdint>

#include "obs/clock.h"

namespace gea {

/// Monotonic stopwatch used by the benchmark harnesses that regenerate the
/// paper's timing tables (e.g. Table 3.2). A thin wrapper over the shared
/// observability clock (obs::NowNanos, a steady — not wall — clock, so
/// readings never jump when the system time is adjusted).
class Stopwatch {
 public:
  Stopwatch() : start_(obs::NowNanos()) {}

  void Reset() { start_ = obs::NowNanos(); }

  /// Elapsed nanoseconds since construction or the last Reset().
  uint64_t ElapsedNanos() const { return obs::NowNanos() - start_; }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  uint64_t start_;
};

}  // namespace gea

#endif  // GEA_COMMON_STOPWATCH_H_
