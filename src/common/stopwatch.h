#ifndef GEA_COMMON_STOPWATCH_H_
#define GEA_COMMON_STOPWATCH_H_

#include <chrono>

namespace gea {

/// Wall-clock stopwatch used by the benchmark harnesses that regenerate the
/// paper's timing tables (e.g. Table 3.2).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gea

#endif  // GEA_COMMON_STOPWATCH_H_
