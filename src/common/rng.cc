#include "common/rng.h"

#include <cassert>

namespace gea {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::Poisson(double mean) {
  assert(mean > 0.0);
  std::poisson_distribution<int64_t> dist(mean);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double draw = UniformDouble(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) return i;
  }
  return weights.size() - 1;
}

}  // namespace gea
