#ifndef GEA_COMMON_STATUS_H_
#define GEA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace gea {

/// Outcome of a fallible operation, modeled after the error-status idiom
/// common in storage engines (e.g. RocksDB's `Status`).
///
/// GEA does not use C++ exceptions; every fallible public API returns a
/// `Status` (or a `Result<T>`, see result.h). A default-constructed Status
/// is OK. Example:
///
///   Status s = catalog.CreateTable(table);
///   if (!s.ok()) return s;
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,   // redundancy check of Section 4.4.5.2
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
  kResourceExhausted,   // admission-control backpressure (serve layer)
  kDeadlineExceeded,    // per-request deadline expired before execution
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace gea

/// Propagates a non-OK status to the caller. Usable only in functions that
/// return Status.
#define GEA_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::gea::Status gea_status_macro_s = (expr);  \
    if (!gea_status_macro_s.ok()) {             \
      return gea_status_macro_s;                \
    }                                           \
  } while (false)

#endif  // GEA_COMMON_STATUS_H_
