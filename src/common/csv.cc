#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace gea {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  if (!NeedsQuoting(field)) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          field += c;
        }
        break;
      case ',':
        end_field();
        field_started = false;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV ends inside a quoted field");
  }
  // Final record without a trailing newline.
  if (!field.empty() || field_started || !record.empty()) {
    end_record();
  }

  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header record");
  }
  CsvDocument doc;
  doc.header = std::move(records.front());
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].size() != doc.header.size()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(i) + " has " +
          std::to_string(records[i].size()) + " fields, expected " +
          std::to_string(doc.header.size()));
    }
    doc.rows.push_back(std::move(records[i]));
  }
  return doc;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto append_record = [&out](const std::vector<std::string>& record) {
    for (size_t i = 0; i < record.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(record[i]);
    }
    out += '\n';
  };
  append_record(doc.header);
  for (const auto& row : doc.rows) append_record(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << WriteCsv(doc);
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace gea
