#ifndef GEA_COMMON_CRC32_H_
#define GEA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gea {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// the storage engine stamps on every snapshot section and WAL record so
/// torn writes and bit rot are detected instead of silently replayed.
///
/// `seed` chains calls: Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace gea

#endif  // GEA_COMMON_CRC32_H_
