#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace gea {

namespace {

/// Set while the calling thread is executing a ParallelFor chunk (on any
/// pool). Nested ParallelFor calls detect it and degrade to inline serial
/// execution instead of blocking a worker on work only workers can run.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      queue_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task) {
    // Late submit during teardown: run inline rather than drop.
    task();
    return;
  }
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() const {
  std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

std::optional<size_t>& ThreadOverrideSlot() {
  static std::optional<size_t> override;
  return override;
}

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t EnvThreads() {
  static const size_t cached = [] {
    std::optional<size_t> parsed = ParseThreadCount(std::getenv("GEA_THREADS"));
    return parsed.value_or(HardwareThreads());
  }();
  return cached;
}

}  // namespace

std::optional<size_t> ParseThreadCount(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  std::string value(text);
  if (value == "serial") return 1;
  char* end = nullptr;
  long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return std::nullopt;  // garbage
  if (parsed <= 0) return std::nullopt;  // 0 / negative: hardware default
  return std::min(static_cast<size_t>(parsed), kMaxThreads);
}

size_t ConfiguredThreads() {
  const std::optional<size_t>& override = ThreadOverrideSlot();
  if (override.has_value()) return std::min(*override, kMaxThreads);
  return EnvThreads();
}

void SetThreadOverride(std::optional<size_t> num_threads) {
  if (num_threads.has_value() && *num_threads == 0) num_threads = 1;
  ThreadOverrideSlot() = num_threads;
}

ThreadCountOverride::ThreadCountOverride(size_t num_threads)
    : previous_(ThreadOverrideSlot()) {
  SetThreadOverride(num_threads);
}

ThreadCountOverride::~ThreadCountOverride() {
  ThreadOverrideSlot() = previous_;
}

ThreadPool& SharedThreadPool() {
  // The pool is grown (rebuilt) when a larger thread count is configured
  // and intentionally leaked: parallel operators may run during static
  // destruction of callers, and joining workers at exit is not worth the
  // shutdown-order hazard.
  static std::mutex mu;
  static std::atomic<ThreadPool*> pool{nullptr};
  size_t want = ConfiguredThreads();
  ThreadPool* current = pool.load(std::memory_order_acquire);
  if (current != nullptr && current->NumThreads() >= want) return *current;
  std::lock_guard<std::mutex> lock(mu);
  current = pool.load(std::memory_order_relaxed);
  if (current == nullptr || current->NumThreads() < want) {
    // Leak the old pool too: chunks from a concurrent ParallelFor could
    // still reference it. Growth events are rare (test overrides only).
    ThreadPool* grown = new ThreadPool(want);
    pool.store(grown, std::memory_order_release);
    current = grown;
  }
  return *current;
}

void ParallelFor(size_t begin, size_t end, size_t min_grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (min_grain == 0) min_grain = 1;
  const size_t threads = ConfiguredThreads();
  // Serial paths: forced-serial mode, too little work to split, or a
  // nested call from inside a chunk (running it inline keeps the outer
  // chunk's worker making progress and cannot deadlock the fixed pool).
  size_t chunks = std::min(threads, n / min_grain);
  if (threads <= 1 || chunks <= 1 || t_in_parallel_region) {
    bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      body(begin, end);
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  ThreadPool& pool = SharedThreadPool();

  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining;
    // First exception in chunk order, so a failure rethrows the same
    // exception regardless of scheduling.
    std::vector<std::exception_ptr> errors;
  };
  State state;
  state.remaining = chunks;
  state.errors.resize(chunks);

  // Deterministic chunk boundaries: chunk c covers
  // [begin + c*n/chunks, begin + (c+1)*n/chunks).
  for (size_t c = 0; c < chunks; ++c) {
    const size_t chunk_begin = begin + n * c / chunks;
    const size_t chunk_end = begin + n * (c + 1) / chunks;
    pool.Submit([&state, &body, c, chunk_begin, chunk_end] {
      bool was_in_region = t_in_parallel_region;
      t_in_parallel_region = true;
      try {
        body(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        state.errors[c] = std::current_exception();
      }
      t_in_parallel_region = was_in_region;
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.remaining == 0) state.done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state.mu);
  state.done_cv.wait(lock, [&state] { return state.remaining == 0; });
  for (std::exception_ptr& error : state.errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace gea
