#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace gea {

namespace {

/// Set while the calling thread is executing a ParallelFor chunk (on any
/// pool). Nested ParallelFor calls detect it and degrade to inline serial
/// execution instead of blocking a worker on work only workers can run.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  static obs::Counter& tasks_submitted =
      obs::MetricsRegistry::Global().GetCounter("gea.pool.tasks_submitted");
  static obs::Counter& tasks_inline =
      obs::MetricsRegistry::Global().GetCounter("gea.pool.tasks_inline");
  static obs::Histogram& queue_wait =
      obs::MetricsRegistry::Global().GetHistogram("gea.pool.queue_wait_nanos");
  if (workers_.empty()) {
    tasks_inline.Add();
    task();
    return;
  }
  tasks_submitted.Add();
  if (obs::MetricsEnabled()) {
    // Time from enqueue to the worker picking the task up.
    const uint64_t enqueue_nanos = obs::NowNanos();
    task = [inner = std::move(task), enqueue_nanos] {
      queue_wait.Record(obs::NowNanos() - enqueue_nanos);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      queue_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task) {
    // Late submit during teardown: run inline rather than drop.
    task();
    return;
  }
  cv_.notify_one();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadPool::OnWorkerThread() const {
  std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

std::optional<size_t>& ThreadOverrideSlot() {
  static std::optional<size_t> override;
  return override;
}

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t EnvThreads() {
  static const size_t cached = [] {
    std::optional<size_t> parsed = ParseThreadCount(std::getenv("GEA_THREADS"));
    return parsed.value_or(HardwareThreads());
  }();
  return cached;
}

}  // namespace

std::optional<size_t> ParseThreadCount(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  std::string value(text);
  if (value == "serial") return 1;
  char* end = nullptr;
  long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return std::nullopt;  // garbage
  if (parsed <= 0) return std::nullopt;  // 0 / negative: hardware default
  return std::min(static_cast<size_t>(parsed), kMaxThreads);
}

size_t ConfiguredThreads() {
  const std::optional<size_t>& override = ThreadOverrideSlot();
  if (override.has_value()) return std::min(*override, kMaxThreads);
  return EnvThreads();
}

void SetThreadOverride(std::optional<size_t> num_threads) {
  if (num_threads.has_value() && *num_threads == 0) num_threads = 1;
  ThreadOverrideSlot() = num_threads;
}

ThreadCountOverride::ThreadCountOverride(size_t num_threads)
    : previous_(ThreadOverrideSlot()) {
  SetThreadOverride(num_threads);
}

ThreadCountOverride::~ThreadCountOverride() {
  ThreadOverrideSlot() = previous_;
}

namespace {

// The shared-pool slot, hoisted out of SharedThreadPool() so the
// non-creating observer below can read it too.
std::mutex g_shared_pool_mu;
std::atomic<ThreadPool*> g_shared_pool{nullptr};

}  // namespace

ThreadPool& SharedThreadPool() {
  // The pool is grown (rebuilt) when a larger thread count is configured
  // and intentionally leaked: parallel operators may run during static
  // destruction of callers, and joining workers at exit is not worth the
  // shutdown-order hazard.
  size_t want = ConfiguredThreads();
  ThreadPool* current = g_shared_pool.load(std::memory_order_acquire);
  if (current != nullptr && current->NumThreads() >= want) return *current;
  std::lock_guard<std::mutex> lock(g_shared_pool_mu);
  current = g_shared_pool.load(std::memory_order_relaxed);
  if (current == nullptr || current->NumThreads() < want) {
    // Leak the old pool too: chunks from a concurrent ParallelFor could
    // still reference it. Growth events are rare (test overrides only).
    ThreadPool* grown = new ThreadPool(want);
    g_shared_pool.store(grown, std::memory_order_release);
    current = grown;
  }
  return *current;
}

const ThreadPool* SharedThreadPoolIfStarted() {
  return g_shared_pool.load(std::memory_order_acquire);
}

namespace {

bool& ForceParallelHelpersSlot() {
  static bool force = [] {
    const char* env = std::getenv("GEA_FORCE_PARALLEL");
    return env != nullptr && *env != '\0';
  }();
  return force;
}

}  // namespace

ForceParallelHelpersScope::ForceParallelHelpersScope()
    : previous_(ForceParallelHelpersSlot()) {
  ForceParallelHelpersSlot() = true;
}

ForceParallelHelpersScope::~ForceParallelHelpersScope() {
  ForceParallelHelpersSlot() = previous_;
}

void ParallelFor(size_t begin, size_t end, size_t min_grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  static obs::Counter& pf_calls =
      obs::MetricsRegistry::Global().GetCounter("gea.parallel_for.calls");
  static obs::Counter& pf_serial =
      obs::MetricsRegistry::Global().GetCounter(
          "gea.parallel_for.serial_inline");
  static obs::Counter& pf_chunks =
      obs::MetricsRegistry::Global().GetCounter("gea.parallel_for.chunks");
  static obs::Histogram& pf_chunk_nanos =
      obs::MetricsRegistry::Global().GetHistogram(
          "gea.parallel_for.chunk_nanos");
  static obs::Histogram& pf_imbalance =
      obs::MetricsRegistry::Global().GetHistogram(
          "gea.parallel_for.imbalance_nanos");
  pf_calls.Add();
  const size_t n = end - begin;
  if (min_grain == 0) min_grain = 1;
  const size_t threads = ConfiguredThreads();
  // Serial paths: forced-serial mode, too little work to split, or a
  // nested call from inside a chunk (running it inline keeps the outer
  // chunk's worker making progress and cannot deadlock the fixed pool).
  size_t chunks = std::min(threads, n / min_grain);
  if (threads <= 1 || chunks <= 1 || t_in_parallel_region) {
    pf_serial.Add();
    bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      body(begin, end);
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  // With one hardware thread, pool helpers can only timeshare the core:
  // every handoff is a context switch that overlaps nothing, and on slow
  // schedulers it dominates the region. Keep the chunk partition (results
  // and first-error order depend on it) but run every chunk inline via
  // the caller's claim loop below. GEA_FORCE_PARALLEL or
  // ForceParallelHelpersScope (TSan tests) restores real helpers.
  const bool inline_only =
      HardwareThreads() <= 1 && !ForceParallelHelpersSlot();
  ThreadPool* pool = inline_only ? nullptr : &SharedThreadPool();

  pf_chunks.Add(chunks);
  obs::TraceSpan pf_span("parallel_for");
  // Chunk spans may run on pool workers; hand them the caller's current
  // span (the parallel_for span when tracing) so they nest under it, and
  // the caller's trace binding so they land in the right request trace.
  const uint64_t parent_span = obs::CurrentSpanId();
  const obs::TraceBinding trace_binding = obs::CurrentTraceBinding();
  // The caller's memory account (if any) follows the same rules as the
  // trace binding: every chunk finishes before ParallelFor returns, so
  // the raw pointer never outlives the frame that owns the account.
  obs::MemoryAccount* const memory_account = obs::CurrentMemoryAccount();
  const bool metrics = obs::MetricsEnabled();

  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining;
    // Next unclaimed chunk index. Chunks are *claimed*, not assigned:
    // helper tasks and the caller race on this counter, so on a busy or
    // single-core pool the caller just runs everything inline instead of
    // paying a queue handoff. Chunk boundaries stay deterministic; which
    // thread runs a chunk never affects results (disjoint slots).
    std::atomic<size_t> next{0};
    // First exception in chunk order, so a failure rethrows the same
    // exception regardless of scheduling.
    std::vector<std::exception_ptr> errors;
    // Per-chunk wall time (written under mu), for the imbalance metric.
    std::vector<uint64_t> chunk_elapsed;
  };
  // Shared so a helper task that loses the race entirely (drains no
  // chunks because the caller already claimed them) can still run safely
  // after ParallelFor returned.
  auto state = std::make_shared<State>();
  state->remaining = chunks;
  state->errors.resize(chunks);
  state->chunk_elapsed.resize(chunks);

  // Deterministic chunk boundaries: chunk c covers
  // [begin + c*n/chunks, begin + (c+1)*n/chunks). `body` is only safe to
  // touch while the caller is still inside this call, which is guaranteed
  // because every chunk finishes before the final wait returns.
  const auto run_chunk = [&body, begin, n, chunks, metrics](State& s,
                                                           size_t c) {
    const size_t chunk_begin = begin + n * c / chunks;
    const size_t chunk_end = begin + n * (c + 1) / chunks;
    const uint64_t chunk_start = metrics ? obs::NowNanos() : 0;
    {
      obs::TraceSpan chunk_span("chunk");
      try {
        body(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mu);
        s.errors[c] = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(s.mu);
    if (metrics) s.chunk_elapsed[c] = obs::NowNanos() - chunk_start;
    if (--s.remaining == 0) s.done_cv.notify_all();
  };

  const size_t helpers =
      pool == nullptr ? 0 : std::min(chunks - 1, pool->NumThreads());
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, run_chunk, chunks, parent_span, trace_binding,
                  memory_account] {
      bool was_in_region = t_in_parallel_region;
      t_in_parallel_region = true;
      obs::TraceParentScope parent_scope(parent_span);
      obs::TraceBindingScope binding_scope(trace_binding);
      obs::MemoryAccountScope account_scope(memory_account);
      for (;;) {
        const size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) break;
        run_chunk(*state, c);
      }
      t_in_parallel_region = was_in_region;
    });
  }

  {
    bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      run_chunk(*state, c);
    }
    t_in_parallel_region = was_in_region;
  }

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&state] { return state->remaining == 0; });
  }
  if (metrics) {
    uint64_t min_elapsed = UINT64_MAX;
    uint64_t max_elapsed = 0;
    for (uint64_t elapsed : state->chunk_elapsed) {
      pf_chunk_nanos.Record(elapsed);
      min_elapsed = std::min(min_elapsed, elapsed);
      max_elapsed = std::max(max_elapsed, elapsed);
    }
    pf_imbalance.Record(max_elapsed - min_elapsed);
  }
  for (std::exception_ptr& error : state->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace gea
