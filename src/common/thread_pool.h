#ifndef GEA_COMMON_THREAD_POOL_H_
#define GEA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace gea {

/// A fixed-size thread pool. No work stealing: tasks are taken from one
/// shared FIFO queue, which keeps the implementation small and makes the
/// per-task overhead predictable. Operators never use the pool directly —
/// they go through ParallelFor(), which owns the chunking and the
/// determinism guarantees (see DESIGN.md, "Parallel execution model").
class ThreadPool {
 public:
  /// Starts `num_threads` workers. `num_threads == 0` creates a pool with
  /// no workers; Submit() then runs tasks inline on the calling thread.
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers. Tasks already queued still
  /// run; new Submit() calls after shutdown started run inline.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Tasks currently queued (not yet picked up by a worker). Takes the
  /// queue lock; a monitoring-path accessor, not a hot-path one.
  size_t QueueDepth() const;

  /// Enqueues `task`. The task must not throw out of the pool: wrap the
  /// user body and capture exceptions on the submitting side (ParallelFor
  /// does this). Tasks submitted from inside a worker run inline to avoid
  /// queue-full deadlocks on nested use.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

/// Number of threads parallel operators use, resolved in priority order:
///  1. the programmatic override (SetThreadOverride / ThreadCountOverride),
///  2. the GEA_THREADS environment variable (read once, at first use),
///  3. std::thread::hardware_concurrency().
/// A value of 1 means forced-serial: ParallelFor runs its body inline on
/// the calling thread and never touches the pool.
size_t ConfiguredThreads();

/// Parses a GEA_THREADS-style value: "" / "0" / garbage -> nullopt (use
/// the hardware default), "serial" -> 1, otherwise the integer clamped to
/// [1, kMaxThreads]. Exposed for tests.
std::optional<size_t> ParseThreadCount(const char* text);

/// Upper bound on the configured thread count (queue and chunking sanity).
inline constexpr size_t kMaxThreads = 256;

/// Sets (or, with nullopt, clears) the programmatic thread-count override.
/// Thread-compatible: call from one thread while no ParallelFor is live.
void SetThreadOverride(std::optional<size_t> num_threads);

/// RAII override for tests and benchmarks:
///   ThreadCountOverride serial(1);   // forced-serial scope
 class ThreadCountOverride {
 public:
  explicit ThreadCountOverride(size_t num_threads);
  ~ThreadCountOverride();

  ThreadCountOverride(const ThreadCountOverride&) = delete;
  ThreadCountOverride& operator=(const ThreadCountOverride&) = delete;

 private:
  std::optional<size_t> previous_;
};

/// The process-wide pool shared by all parallel operators. Created lazily
/// on first use; grown (never shrunk) when the configured thread count
/// rises past the current worker count.
ThreadPool& SharedThreadPool();

/// On a machine with a single hardware thread, ParallelFor keeps its
/// chunk partition (so results and error order are unchanged) but runs
/// every chunk on the calling thread: pool helpers could only timeshare
/// the one core, so each handoff would be a context switch with nothing
/// overlapped. This scope forces helpers on anyway — for tests that need
/// real cross-thread execution (TSan interleaving coverage) regardless
/// of the host's core count. The GEA_FORCE_PARALLEL environment variable
/// (any non-empty value) does the same process-wide.
/// Thread-compatible: call from one thread while no ParallelFor is live.
class ForceParallelHelpersScope {
 public:
  ForceParallelHelpersScope();
  ~ForceParallelHelpersScope();

  ForceParallelHelpersScope(const ForceParallelHelpersScope&) = delete;
  ForceParallelHelpersScope& operator=(const ForceParallelHelpersScope&) =
      delete;

 private:
  bool previous_;
};

/// The shared pool if one has been created, else nullptr. Never creates
/// workers — the stat views and the monitoring endpoint report through
/// this so that *observing* the pool cannot start it.
const ThreadPool* SharedThreadPoolIfStarted();

/// Runs `body(chunk_begin, chunk_end)` over contiguous chunks covering
/// [begin, end). Guarantees, relied on for bit-identical serial/parallel
/// results:
///  * every index is covered by exactly one chunk, chunks are contiguous
///    and ascending, so per-item work is identical to the serial loop as
///    long as the body treats items independently;
///  * no chunk is smaller than `min_grain` items (except the last);
///  * with ConfiguredThreads() == 1, fewer than 2 chunks of work, or when
///    called from inside a pool worker (nested parallelism), the body runs
///    inline as body(begin, end) on the calling thread;
///  * exceptions thrown by any chunk are captured and the first one (in
///    chunk order) is rethrown on the calling thread after all chunks
///    finished.
/// The body must not touch shared mutable state except through disjoint
/// per-index slots.
void ParallelFor(size_t begin, size_t end, size_t min_grain,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace gea

#endif  // GEA_COMMON_THREAD_POOL_H_
