#ifndef GEA_SERVE_SERVER_H_
#define GEA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/timed_mutex.h"
#include "obs/request_trace.h"
#include "obs/resource.h"
#include "serve/protocol.h"
#include "workbench/session.h"

namespace gea::serve {

/// What a QueryServer *is* in a replicated/sharded deployment (src/dist).
/// A plain single-node server is a primary. The role gates admission:
/// a replica answers every mutating command with FailedPrecondition
/// (mutations belong on the primary); a router fans commands out to its
/// shard workers via registered handler overrides. The role is visible
/// through the `role` wire command and the shell's \role.
enum class ServerRole { kPrimary = 0, kReplica = 1, kRouter = 2 };

const char* ServerRoleName(ServerRole role);

/// Tuning knobs for QueryServer.
struct ServerOptions {
  /// TCP port to bind on loopback; 0 picks an ephemeral port (read it
  /// back with Port()).
  int port = 0;
  /// Worker threads executing admitted requests.
  size_t num_workers = 4;
  /// Bound of the admission queue. A request arriving while the queue is
  /// full is rejected immediately with RESOURCE_EXHAUSTED — explicit
  /// backpressure, never a silent drop or an unbounded buffer.
  size_t queue_capacity = 64;
  /// Per-frame payload cap (both directions).
  size_t max_payload_bytes = kMaxPayloadBytes;
};

/// The concurrent query service: a multi-client TCP front end over one
/// shared AnalysisSession.
///
/// ## Threading model
///
/// One accept thread hands each connection to a dedicated reader thread.
/// Readers decode frames and push requests onto a bounded admission
/// queue; `num_workers` workers drain it. Execution takes a
/// std::shared_mutex over the session: read-only commands (sql, tables,
/// explain, ...) run concurrently under a shared lock, mutating commands
/// (populate, aggregate, diff, checkpoint, ...) take it exclusively —
/// single-writer / many-readers, matching what AnalysisSession can
/// actually tolerate.
///
/// ## Admission control
///
/// The queue is bounded (ServerOptions::queue_capacity). When it is
/// full the *reader* thread sends RESOURCE_EXHAUSTED for that request
/// right away, so a slow server surfaces backpressure to clients instead
/// of buffering unboundedly. Each request may carry a deadline
/// (Request::deadline_ms, measured from receipt); a request whose
/// deadline has passed by the time a worker picks it up is answered with
/// DEADLINE_EXCEEDED without executing.
///
/// ## Sessions and authentication
///
/// The embedded AnalysisSession must already be logged in (the embedder
/// owns it; Start() enforces this). Each *connection* then authenticates
/// itself with the `login` command, checked against the same user
/// database via AnalysisSession::AuthenticateUser — per-connection auth
/// state on top of one shared session. Commands other than `ping` and
/// `login` require connection auth; `checkpoint` requires administrator.
///
/// ## Durability
///
/// Every mutating command goes through the session's normal Logged()
/// path, so it hits the query log, telemetry and — when storage is
/// attached — the WAL *before the response is sent*. An acknowledged
/// mutation therefore survives a crash: recovery replays it.
///
/// ## Commands
///
///   ping        [sleep_ms]                       no auth; echoes "pong"
///   login       user, password, level(user|admin)
///   logout
///   sql         query                             -> table
///   tables                                       -> table (name)
///   get_table   name                             -> table
///   explain                                      -> text (EXPLAIN last op)
///   query_log   [limit]                          -> table
///   aggregate   enum, out, [replace]
///   populate    sumy, base, out, [replace]
///   diff        sumy1, sumy2, gap, [replace]     (alias: create_gap)
///   top_gap     gap, x, [mode 0..2]              -> text (stored name)
///   compare_gaps a, b, kind(0..2), out, [replace]
///   gap_query   compared, query(1..13), out, [replace]
///   tissue_dataset tissue, [replace]
///   custom_dataset name, libs("1,2,3"), [replace]
///   generate_metadata dataset, percent, meta, [replace]
///   mine        dataset, meta, min_compact_tags, batch_size, min_size,
///               out_prefix                       -> table (fascicle names)
///   checkpoint                                   admin only
///
/// Boolean params accept "1"/"true"; absent means false.
///
/// ## Request tracing
///
/// Every request's pipeline stages (decode, queue wait, execute, WAL
/// append/fsync, encode, write, session-lock wait) are clocked and the
/// execution's accounted allocation bytes / peak live bytes are
/// attributed to the request; a v2+ request carrying a trace context
/// gets the breakdown echoed in its response (v3 adds lock_wait and the
/// memory pair). Sampled
/// requests — client sampled flag, GEA_TRACE_SAMPLE 1-in-N head
/// sampling, or the slow-query tail escape hatch — are published as
/// RequestTraceRecords (with the execution span tree when span-sampled)
/// into obs::RequestTraceRing, which feeds the gea_stat_requests view
/// and /tracez?format=chrome. See obs/request_trace.h.
///
/// ## Metrics
///
/// Counters gea.serve.{requests,errors,rejected_queue_full,
/// rejected_deadline,bytes_in,bytes_out,connections_total}, gauges
/// gea.serve.{queue_depth,connections}, histograms
/// gea.serve.{queue_wait_nanos,request_nanos} — all in /metrics and the
/// gea_stat_counters//gea_stat_histograms views (under GEA_METRICS).
/// The gea_stat_serve view reports per-server rows unconditionally.
class QueryServer {
 public:
  explicit QueryServer(workbench::AnalysisSession* session,
                       ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, spins up workers and starts accepting. FailedPrecondition
  /// when already running or when the session is not logged in.
  Status Start();

  /// Graceful drain: stops accepting, wakes the readers, lets workers
  /// finish every already-admitted request (responses are still
  /// delivered), then joins all threads. Idempotent.
  void Stop();

  bool Running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port while running (0 otherwise).
  int Port() const { return port_.load(std::memory_order_acquire); }

  /// Point-in-time serving stats (always live, not gated on GEA_METRICS).
  struct Stats {
    uint64_t requests = 0;            // admitted + rejected
    uint64_t errors = 0;              // executed requests that failed
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_deadline = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t connections_total = 0;
    int64_t connections = 0;          // currently open
    int64_t queue_depth = 0;
  };
  Stats GetStats() const;

  // ---- Roles + extension commands (the src/dist attachment points) ----

  /// Role changes are rare (replica promotion) and take effect for the
  /// next admitted request. Default kPrimary.
  void SetRole(ServerRole role) {
    role_.store(static_cast<int>(role), std::memory_order_release);
  }
  ServerRole Role() const {
    return static_cast<ServerRole>(role_.load(std::memory_order_acquire));
  }

  /// Extra (name, value) rows for the `role` command — the dist layer
  /// reports LSNs/lag/shard fan-out here. Set before Start().
  using RoleInfoProvider =
      std::function<std::map<std::string, std::string>()>;
  void SetRoleInfoProvider(RoleInfoProvider provider) {
    role_info_ = std::move(provider);
  }

  /// A custom wire command, consulted BEFORE the built-ins (an override
  /// of a built-in op replaces it wholesale). `mutating` picks the
  /// exclusive session lock; `needs_session_lock = false` skips the
  /// session lock entirely — required for handlers that block (the
  /// replication long-poll must not hold a session lock while waiting
  /// for a mutation that needs it exclusively); `allow_on_replica`
  /// exempts a mutating handler from the replica rejection (promotion).
  /// Register before Start(); the registry is read without a lock.
  struct HandlerSpec {
    bool mutating = false;
    bool needs_auth = true;
    bool admin_only = false;
    bool allow_on_replica = false;
    bool needs_session_lock = true;
  };
  using Handler = std::function<Response(const Request& request)>;
  void RegisterHandler(const std::string& op, HandlerSpec spec,
                       Handler handler);

  /// The single-writer/many-readers session lock, exposed so replication
  /// can apply shipped records with the same exclusion the workers use
  /// (the puller thread takes it exclusively per applied record).
  SharedTimedMutex& SessionMutex() { return session_mu_; }

 private:
  struct Connection;
  struct Task;

  void AcceptLoop(int listen_fd);
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();

  /// Executes one admitted request and writes its response.
  void RunTask(Task task);
  Response Execute(Connection& conn, const Request& request);
  Response Dispatch(Connection& conn, const Request& request);
  /// Encodes and writes one response. With `stages`, measures the encode
  /// and write stages into it and patches the response's wire timing
  /// block (when present) before framing; `account` supplies the v3
  /// memory-accounting fields of that block.
  Status WriteResponse(Connection& conn, const Response& response,
                       obs::StageNanos* stages = nullptr,
                       const obs::MemoryAccount* account = nullptr);
  /// Publishes the finished request into the global trace ring when it
  /// was sampled (or crossed the slow-query threshold).
  void PublishTrace(Task& task, const Response& response,
                    obs::StageCollectorScope& stage_scope,
                    const obs::MemoryAccount& account);

  workbench::AnalysisSession* session_;
  ServerOptions options_;

  std::atomic<int> role_{0};  // ServerRole
  RoleInfoProvider role_info_;
  struct HandlerEntry {
    HandlerSpec spec;
    Handler fn;
  };
  std::map<std::string, HandlerEntry> handlers_;  // frozen after Start()

  std::mutex lifecycle_mu_;  // serializes Start/Stop
  std::atomic<bool> running_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  // Reader threads and live connections, guarded by conns_mu_.
  std::mutex conns_mu_;
  std::vector<std::thread> readers_;
  std::vector<std::weak_ptr<Connection>> conns_;

  // Admission queue. The mutex is lock-wait instrumented
  // ("gea.lock.queue"); condition_variable_any works with any Lockable.
  TimedMutex queue_mu_{"gea.lock.queue"};
  std::condition_variable_any queue_cv_;
  std::deque<Task> queue_;
  bool draining_ = false;  // Stop() in progress: workers drain then exit

  // Single writer / many readers over the shared session, lock-wait
  // instrumented ("gea.lock.session" read/write histograms plus the
  // per-request lock_wait stage).
  SharedTimedMutex session_mu_{"gea.lock.session"};

  // Live stats (see Stats). Relaxed atomics; mirrored into gea.serve.*
  // registry metrics when metrics are enabled.
  struct LiveStats;
  std::unique_ptr<LiveStats> stats_;
};

}  // namespace gea::serve

#endif  // GEA_SERVE_SERVER_H_
