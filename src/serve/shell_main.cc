// gea_shell — interactive client for the GEA query service.
//
//   gea_shell --port=PORT [--deadline-ms=N]
//
// Reads one command per line from stdin and prints responses to stdout
// (errors to stderr), so it works identically at a terminal and under
// redirection in tests/scripts. Commands:
//
//   login <user> <password> [user|admin]
//   sql <query...>            rest of the line is the SQL text
//   <op> [key=value ...]      any protocol command, e.g.:
//                             aggregate enum=Brain out=Brain_SUMY
//   \timing [on|off]          print the server's per-stage latency
//                             breakdown after each command
//   \stats [view]             fetch a gea_stat_* view (default
//                             gea_stat_requests) via get_table;
//                             gea_stat_transactions shows MVCC epochs,
//                             pinned readers and group-commit batching
//   \role                     server role (primary/replica/router) + detail
//   \lag                      replication lag (the gea_stat_replication view)
//   \shards                   shard fan-out of a router (the `shards` op)
//   help | quit
//
// Tables render through rel::Table::ToText; a non-OK response prints
// "ERROR <code>: <message>" and the shell keeps going. Exit status is 0
// unless the connection could not be established or was lost.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/client.h"

namespace {

using gea::serve::QueryClient;
using gea::serve::Response;

void PrintHelp() {
  std::cout << "commands:\n"
               "  login <user> <password> [user|admin]\n"
               "  sql <query...>\n"
               "  <op> [key=value ...]   (ping, tables, explain, aggregate,\n"
               "                          populate, diff, top_gap, mine,\n"
               "                          checkpoint, ...)\n"
               "  \\timing [on|off]       server stage breakdown per command\n"
               "  \\stats [view]          show a gea_stat_* view (default\n"
               "                          gea_stat_requests; try\n"
               "                          gea_stat_transactions for MVCC\n"
               "                          epochs + group commit)\n"
               "  \\role                  server role + replication detail\n"
               "  \\lag                   the gea_stat_replication view\n"
               "  \\shards                shard fan-out (routers only)\n"
               "  help, quit\n";
}

void PrintTiming(const QueryClient& client) {
  const std::optional<gea::serve::StageBreakdown>& timing =
      client.LastTiming();
  if (!timing.has_value()) return;
  auto ms = [](uint64_t nanos) { return static_cast<double>(nanos) / 1e6; };
  char line[384];
  std::snprintf(line, sizeof(line),
                "Time: %.3f ms (decode %.3f, queue %.3f, execute %.3f, "
                "lock-wait %.3f, wal-append %.3f, wal-fsync %.3f, "
                "encode %.3f)\n",
                ms(timing->TotalNanos()), ms(timing->decode_nanos),
                ms(timing->queue_nanos), ms(timing->execute_nanos),
                ms(timing->lock_wait_nanos), ms(timing->wal_append_nanos),
                ms(timing->wal_fsync_nanos), ms(timing->encode_nanos));
  std::cout << line;
  // The memory pair rides the v3 timing block; a v2 server leaves both 0.
  if (timing->alloc_bytes > 0 || timing->peak_bytes > 0) {
    std::snprintf(line, sizeof(line),
                  "Memory: %llu bytes allocated, %llu peak\n",
                  static_cast<unsigned long long>(timing->alloc_bytes),
                  static_cast<unsigned long long>(timing->peak_bytes));
    std::cout << line;
  }
}

void PrintResponse(const Response& response) {
  if (!response.ok()) {
    std::cout << "ERROR " << gea::StatusCodeName(response.code) << ": "
              << response.message << "\n";
    return;
  }
  if (response.table.has_value()) {
    std::cout << response.table->ToText(/*max_rows=*/50);
    std::cout << "(" << response.table->NumRows() << " rows)\n";
  }
  if (!response.text.empty()) std::cout << response.text << "\n";
  if (!response.table.has_value() && response.text.empty()) {
    std::cout << "ok\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  uint32_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      deadline_ms = static_cast<uint32_t>(std::atoi(arg + 14));
    } else {
      std::cerr << "usage: gea_shell --port=PORT [--deadline-ms=N]\n";
      return 2;
    }
  }
  if (port <= 0) {
    std::cerr << "gea_shell: --port=PORT is required\n";
    return 2;
  }

  QueryClient client;
  client.SetDeadlineMs(deadline_ms);
  if (gea::Status status = client.Connect(port); !status.ok()) {
    std::cerr << "gea_shell: " << status.ToString() << "\n";
    return 1;
  }

  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::cout << "connected to 127.0.0.1:" << port
              << " — type 'help' for commands\n";
  }

  std::string line;
  while (true) {
    if (interactive) std::cout << "gea> " << std::flush;
    if (!std::getline(std::cin, line)) break;

    std::istringstream in(line);
    std::string op;
    in >> op;
    if (op.empty()) continue;
    if (op == "quit" || op == "exit") break;
    if (op == "help") {
      PrintHelp();
      continue;
    }
    if (op == "\\timing") {
      std::string mode;
      in >> mode;
      if (mode.empty()) {
        client.SetTracing(!client.Tracing());
      } else if (mode == "on") {
        client.SetTracing(true);
      } else if (mode == "off") {
        client.SetTracing(false);
      } else {
        std::cout << "ERROR InvalidArgument: \\timing [on|off]\n";
        continue;
      }
      std::cout << "Timing is " << (client.Tracing() ? "on" : "off") << ".\n";
      continue;
    }

    std::map<std::string, std::string> params;
    if (op == "\\role") {
      op = "role";
    } else if (op == "\\shards") {
      op = "shards";
    } else if (op == "\\lag") {
      // Sugar like \stats: the replication view is an ordinary stat table.
      op = "get_table";
      params["name"] = "gea_stat_replication";
    } else if (op == "\\stats") {
      // Sugar over get_table: the stat views are ordinary computed
      // tables, so the server path is identical to any table fetch.
      std::string view;
      in >> view;
      op = "get_table";
      params["name"] = view.empty() ? "gea_stat_requests" : view;
    } else if (op == "sql") {
      std::string query;
      std::getline(in, query);
      const size_t start = query.find_first_not_of(' ');
      if (start == std::string::npos) {
        std::cout << "ERROR InvalidArgument: sql needs a query\n";
        continue;
      }
      params["query"] = query.substr(start);
    } else if (op == "login") {
      std::string user, password, level;
      in >> user >> password >> level;
      if (user.empty() || password.empty()) {
        std::cout << "ERROR InvalidArgument: login <user> <password> "
                     "[user|admin]\n";
        continue;
      }
      params["user"] = user;
      params["password"] = password;
      if (!level.empty()) params["level"] = level;
    } else {
      std::string pair;
      bool bad = false;
      while (in >> pair) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::cout << "ERROR InvalidArgument: expected key=value, got '"
                    << pair << "'\n";
          bad = true;
          break;
        }
        params[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
      if (bad) continue;
    }

    gea::Result<Response> response = client.Call(op, std::move(params));
    if (!response.ok()) {
      std::cerr << "gea_shell: connection lost: "
                << response.status().ToString() << "\n";
      return 1;
    }
    PrintResponse(*response);
    if (client.Tracing()) PrintTiming(client);
  }
  return 0;
}
