#ifndef GEA_SERVE_PROTOCOL_H_
#define GEA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rel/table.h"

namespace gea::serve {

/// The GEA query-service wire protocol: a length-prefixed, CRC-framed
/// request/response exchange over one TCP connection. Clients are
/// synchronous — one request, one response, in order — which keeps the
/// framing trivial and still supports many concurrent clients because
/// each connection gets its own reader thread on the server.
///
/// Frame layout (all integers little-endian, as in the storage formats):
///
///   u32 payload_length | u32 crc32(payload) | payload bytes
///
/// The CRC is the same IEEE CRC-32 the WAL stamps on its records, so a
/// torn or corrupted frame is detected and the connection is dropped
/// instead of the server acting on garbage.
///
/// Request payload:
///   u8  version
///   u64 request_id       echoed verbatim in the response
///   u32 deadline_ms      0 = no deadline; measured from receipt
///   str op               command name, e.g. "sql", "populate"
///   u32 nparams, then nparams x (str key, str value)
///
/// Response payload:
///   u8  version
///   u64 request_id
///   u8  status code      StatusCode numeric value
///   str message          status message (empty on OK)
///   str text             human-readable payload (explain, ping, ...)
///   u8  has_table        1 => store::EncodeTable bytes follow as a str
///
/// Commands, parameters and their semantics are documented on
/// QueryServer (server.h); the protocol layer is content-agnostic.

inline constexpr uint8_t kProtocolVersion = 1;

/// Upper bound on one frame's payload; oversized frames are rejected at
/// the framing layer before any allocation of that size happens.
inline constexpr size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

struct Request {
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  std::string op;
  std::map<std::string, std::string> params;
};

struct Response {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;            // status message when code != kOk
  std::string text;               // optional human-readable payload
  std::optional<rel::Table> table;  // optional tabular payload

  bool ok() const { return code == StatusCode::kOk; }
  /// The response's status: OK, or code+message.
  Status ToStatus() const;
};

/// Builds an error response echoing `request_id`.
Response ErrorResponse(uint64_t request_id, const Status& status);

// ---- Payload codecs ----

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

// ---- Framing over a socket ----

/// Wraps `payload` in the length+CRC frame header.
std::string Frame(std::string_view payload);

/// Writes one framed payload to `fd`.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. Returns nullopt on a clean EOF *before*
/// the first header byte (the peer hung up between requests); any torn
/// frame, CRC mismatch or oversized length is an error.
Result<std::optional<std::string>> ReadFrame(
    int fd, size_t max_payload = kMaxPayloadBytes);

/// Validates a wire status-code byte. Unknown values fail (a response
/// from a newer/corrupt peer must not alias to OK).
Result<StatusCode> StatusCodeFromWire(uint8_t code);

}  // namespace gea::serve

#endif  // GEA_SERVE_PROTOCOL_H_
