#ifndef GEA_SERVE_PROTOCOL_H_
#define GEA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rel/table.h"

namespace gea::serve {

/// The GEA query-service wire protocol: a length-prefixed, CRC-framed
/// request/response exchange over one TCP connection. Clients are
/// synchronous — one request, one response, in order — which keeps the
/// framing trivial and still supports many concurrent clients because
/// each connection gets its own reader thread on the server.
///
/// Frame layout (all integers little-endian, as in the storage formats):
///
///   u32 payload_length | u32 crc32(payload) | payload bytes
///
/// The CRC is the same IEEE CRC-32 the WAL stamps on its records, so a
/// torn or corrupted frame is detected and the connection is dropped
/// instead of the server acting on garbage.
///
/// Request payload (version 2; version-1 frames stop after the params
/// block and still decode):
///   u8  version
///   u64 request_id       echoed verbatim in the response
///   u32 deadline_ms      0 = no deadline; measured from receipt
///   str op               command name, e.g. "sql", "populate"
///   u32 nparams, then nparams x (str key, str value)
///   u8  has_trace        v2+: 1 => a trace context follows
///   u64 trace_id         client-supplied id (0 = server assigns one)
///   u8  sampled          1 => force-sample this request server-side
///
/// Response payload (version 2; version-1 frames stop after the table
/// block and still decode):
///   u8  version
///   u64 request_id
///   u8  status code      StatusCode numeric value
///   str message          status message (empty on OK)
///   str text             human-readable payload (explain, ping, ...)
///   u8  has_table        1 => store::EncodeTable bytes follow as a str
///   u64 trace_id         v2+: the request's effective trace id (0 = none)
///   u8  has_timing       v2+: 1 => a stage breakdown follows
///   7 x u64              v2: stage nanos, fixed width, in RequestStage
///                        order: decode, queue_wait, execute, wal_append,
///                        wal_fsync, encode, write
///   10 x u64             v3: the 8 RequestStage nanos (the v2 seven plus
///                        lock_wait) followed by alloc_bytes and
///                        peak_bytes from per-query memory accounting
///
/// Version 3 requests are byte-identical to version 2 — only the version
/// byte and the response timing block changed.
///
/// The timing block is fixed-width and last on purpose: the server
/// encodes the response with zeros, measures the encode itself, then
/// patches the trailing bytes in place before framing (the frame CRC is
/// computed at write time). `write_nanos` is 0 on the wire — the time to
/// write a response cannot be known before writing it — but is recorded
/// with its real value in the server-side trace ring.
///
/// Commands, parameters and their semantics are documented on
/// QueryServer (server.h); the protocol layer is content-agnostic.

inline constexpr uint8_t kProtocolVersion = 3;
/// Oldest version the decoders still accept.
inline constexpr uint8_t kMinProtocolVersion = 1;

/// Upper bound on one frame's payload; oversized frames are rejected at
/// the framing layer before any allocation of that size happens.
inline constexpr size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

/// Wire-level trace context a client attaches to a request.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = let the server assign one
  bool sampled = false;   // force-sample server-side (head sampling aside)
};

/// Server-side stage timing echoed in a v2+ response, nanoseconds per
/// stage in pipeline order. Matches obs::RequestStage. The v3-only
/// fields (lock_wait_nanos, alloc_bytes, peak_bytes) decode as zero from
/// a v2 peer.
struct StageBreakdown {
  uint64_t decode_nanos = 0;
  uint64_t queue_nanos = 0;
  uint64_t execute_nanos = 0;
  uint64_t wal_append_nanos = 0;  // subset of execute
  uint64_t wal_fsync_nanos = 0;   // subset of execute
  uint64_t encode_nanos = 0;
  uint64_t write_nanos = 0;  // always 0 on the wire; see layout note
  uint64_t lock_wait_nanos = 0;  // v3: session-lock wait, subset of execute
  uint64_t alloc_bytes = 0;      // v3: bytes allocated during execution
  uint64_t peak_bytes = 0;       // v3: high-water mark of live bytes

  /// Server-side pipeline total (WAL and lock-wait stages excluded —
  /// they are already inside execute).
  uint64_t TotalNanos() const {
    return decode_nanos + queue_nanos + execute_nanos + encode_nanos +
           write_nanos;
  }
};

/// Number of u64 slots in the fixed-width wire timing block, per version.
inline constexpr size_t kStageBreakdownSlots = 7;     // v2
inline constexpr size_t kStageBreakdownSlotsV3 = 10;  // v3

struct Request {
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  std::string op;
  std::map<std::string, std::string> params;
  std::optional<TraceContext> trace;  // v2+: request tracing opt-in
  /// Version the frame was decoded from (DecodeRequest sets it); the
  /// server answers in the same version so v1 peers keep working.
  uint8_t wire_version = kProtocolVersion;
};

struct Response {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;            // status message when code != kOk
  std::string text;               // optional human-readable payload
  std::optional<rel::Table> table;  // optional tabular payload
  uint64_t trace_id = 0;          // v2+: effective trace id (0 = none)
  std::optional<StageBreakdown> timing;  // v2+: stage breakdown
  /// Version to encode as / the version the frame was decoded from.
  uint8_t wire_version = kProtocolVersion;

  bool ok() const { return code == StatusCode::kOk; }
  /// The response's status: OK, or code+message.
  Status ToStatus() const;
};

/// Builds an error response echoing `request_id`.
Response ErrorResponse(uint64_t request_id, const Status& status);

// ---- Payload codecs ----

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

/// Rewrites the trailing fixed-width timing block of a v2/v3 response
/// payload that was encoded with a timing breakdown present (the block
/// width follows the payload's version byte). Returns false (payload
/// untouched) if the payload is not a v2+ response carrying a timing
/// block. This is how the server stamps the encode stage's own duration
/// after measuring it.
bool PatchResponseTiming(std::string* payload, const StageBreakdown& timing);

// ---- Framing over a socket ----

/// Wraps `payload` in the length+CRC frame header.
std::string Frame(std::string_view payload);

/// Writes one framed payload to `fd`.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. Returns nullopt on a clean EOF *before*
/// the first header byte (the peer hung up between requests); any torn
/// frame, CRC mismatch or oversized length is an error.
Result<std::optional<std::string>> ReadFrame(
    int fd, size_t max_payload = kMaxPayloadBytes);

/// Validates a wire status-code byte. Unknown values fail (a response
/// from a newer/corrupt peer must not alias to OK).
Result<StatusCode> StatusCodeFromWire(uint8_t code);

}  // namespace gea::serve

#endif  // GEA_SERVE_PROTOCOL_H_
