#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/net.h"
#include "common/strings.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/statviews.h"
#include "obs/trace.h"
#include "sage/library.h"
#include "txn/group_commit.h"

namespace gea::serve {

namespace {

using Clock = std::chrono::steady_clock;

// ---- Registry metrics (gated on GEA_METRICS like every subsystem) ----

obs::Counter& RequestsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("gea.serve.requests");
  return c;
}
obs::Counter& ErrorsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("gea.serve.errors");
  return c;
}
obs::Counter& RejectedQueueFullCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.serve.rejected_queue_full");
  return c;
}
obs::Counter& RejectedDeadlineCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.serve.rejected_deadline");
  return c;
}
obs::Counter& BytesInCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("gea.serve.bytes_in");
  return c;
}
obs::Counter& BytesOutCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("gea.serve.bytes_out");
  return c;
}
obs::Counter& ConnectionsTotalCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "gea.serve.connections_total");
  return c;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("gea.serve.queue_depth");
  return g;
}
obs::Gauge& ConnectionsGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("gea.serve.connections");
  return g;
}
obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "gea.serve.queue_wait_nanos");
  return h;
}
obs::Histogram& RequestHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("gea.serve.request_nanos");
  return h;
}

// Commands that mutate the shared session (exclusive session lock); all
// others execute under a shared lock.
bool IsMutating(const std::string& op) {
  static const std::set<std::string>* const kMutating =
      new std::set<std::string>{
          "aggregate",      "populate",          "diff",
          "create_gap",     "top_gap",           "compare_gaps",
          "gap_query",      "tissue_dataset",    "custom_dataset",
          "generate_metadata", "mine",           "fascicles",
          "checkpoint"};
  return kMutating->count(op) > 0;
}

bool RequiresAdmin(const std::string& op) { return op == "checkpoint"; }

// Built-in reads that execute against a pinned MVCC catalog epoch (or
// per-connection auth state) and therefore take NO session lock at all —
// a checkpoint or writer burst can never block them. `ping` is absent on
// purpose: it is the probe the admission/lock-wait tests park on the
// shared lock, and it reads no catalog state that would benefit.
bool LockFreeRead(const std::string& op) {
  static const std::set<std::string>* const kLockFree =
      new std::set<std::string>{"sql",       "tables", "get_table",
                                "explain",   "query_log", "role",
                                "login",     "logout"};
  return kLockFree->count(op) > 0;
}

bool NeedsAuth(const std::string& op) {
  // `role` is a health probe: failover tooling must be able to ask who
  // the primary is before it can log in anywhere.
  return op != "ping" && op != "login" && op != "logout" && op != "role";
}

// ---- Param helpers ----

Result<std::string> GetParam(const Request& request, const std::string& key) {
  auto it = request.params.find(key);
  if (it == request.params.end()) {
    return Status::InvalidArgument(request.op + ": missing parameter '" + key +
                                   "'");
  }
  return it->second;
}

Result<int64_t> GetIntParam(const Request& request, const std::string& key) {
  GEA_ASSIGN_OR_RETURN(std::string text, GetParam(request, key));
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(request.op + ": parameter '" + key +
                                   "' is not an integer: " + text);
  }
  return static_cast<int64_t>(value);
}

Result<double> GetDoubleParam(const Request& request, const std::string& key) {
  GEA_ASSIGN_OR_RETURN(std::string text, GetParam(request, key));
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(request.op + ": parameter '" + key +
                                   "' is not a number: " + text);
  }
  return value;
}

bool GetBoolParam(const Request& request, const std::string& key) {
  auto it = request.params.find(key);
  return it != request.params.end() &&
         (it->second == "1" || it->second == "true");
}

rel::Table NamesTable(const std::string& column,
                      const std::vector<std::string>& names) {
  rel::Table table("query", rel::Schema({{column, rel::ValueType::kString}}));
  for (const std::string& name : names) {
    table.AppendRowUnchecked({rel::Value::String(name)});
  }
  return table;
}

}  // namespace

const char* ServerRoleName(ServerRole role) {
  switch (role) {
    case ServerRole::kPrimary:
      return "primary";
    case ServerRole::kReplica:
      return "replica";
    case ServerRole::kRouter:
      return "router";
  }
  return "unknown";
}

void QueryServer::RegisterHandler(const std::string& op, HandlerSpec spec,
                                  Handler handler) {
  handlers_[op] = HandlerEntry{spec, std::move(handler)};
}

// ---- Live stats + the gea_stat_serve view ----

struct QueryServer::LiveStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> rejected_queue_full{0};
  std::atomic<uint64_t> rejected_deadline{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> connections_total{0};
  std::atomic<int64_t> connections{0};
  std::atomic<int64_t> queue_depth{0};
};

namespace {

// Live servers, so the gea_stat_serve view can report them without obs
// linking against serve (mirrors the gea_stat_storage registration).
std::mutex g_servers_mu;
std::vector<QueryServer*>& Servers() {
  static std::vector<QueryServer*>* servers = new std::vector<QueryServer*>();
  return *servers;
}

rel::Table ServeStatTable() {
  rel::Table table(
      obs::kStatServeView,
      rel::Schema({{"port", rel::ValueType::kInt},
                   {"running", rel::ValueType::kInt},
                   {"connections", rel::ValueType::kInt},
                   {"queue_depth", rel::ValueType::kInt},
                   {"requests", rel::ValueType::kInt},
                   {"errors", rel::ValueType::kInt},
                   {"rejected_queue_full", rel::ValueType::kInt},
                   {"rejected_deadline", rel::ValueType::kInt},
                   {"bytes_in", rel::ValueType::kInt},
                   {"bytes_out", rel::ValueType::kInt}}));
  std::lock_guard<std::mutex> lock(g_servers_mu);
  for (QueryServer* server : Servers()) {
    const QueryServer::Stats stats = server->GetStats();
    table.AppendRowUnchecked(
        {rel::Value::Int(server->Port()),
         rel::Value::Int(server->Running() ? 1 : 0),
         rel::Value::Int(stats.connections),
         rel::Value::Int(stats.queue_depth),
         rel::Value::Int(static_cast<int64_t>(stats.requests)),
         rel::Value::Int(static_cast<int64_t>(stats.errors)),
         rel::Value::Int(static_cast<int64_t>(stats.rejected_queue_full)),
         rel::Value::Int(static_cast<int64_t>(stats.rejected_deadline)),
         rel::Value::Int(static_cast<int64_t>(stats.bytes_in)),
         rel::Value::Int(static_cast<int64_t>(stats.bytes_out))});
  }
  return table;
}

const bool g_serve_view_registered = [] {
  obs::RegisterStatViewProvider(obs::kStatServeView, ServeStatTable);
  return true;
}();

}  // namespace

// ---- Connection / Task ----

struct QueryServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() { net::CloseFd(fd); }

  const int fd;
  /// Serializes response frames: the reader writes queue-full rejections
  /// while workers write admitted responses on the same socket.
  std::mutex write_mu;
  std::atomic<bool> authenticated{false};
  std::atomic<int> level{0};  // workbench::AccessLevel numeric value

  /// Authenticated user name, for trace attribution ("" before login).
  std::string User() {
    std::lock_guard<std::mutex> lock(user_mu);
    return user;
  }
  void SetUser(std::string name) {
    std::lock_guard<std::mutex> lock(user_mu);
    user = std::move(name);
  }

 private:
  std::mutex user_mu;
  std::string user;
};

struct QueryServer::Task {
  std::shared_ptr<Connection> conn;
  Request request;
  Clock::time_point received;
  Clock::time_point deadline;  // meaningful when has_deadline
  bool has_deadline = false;

  // Request tracing (see obs/request_trace.h).
  uint64_t trace_id = 0;          // 0 = not traced (may be tail-assigned)
  bool sampled = false;           // head-sampled or client-forced
  uint64_t decode_start_nanos = 0;
  uint64_t decode_nanos = 0;
  uint32_t reader_tid = 0;
};

// ---- Lifecycle ----

QueryServer::QueryServer(workbench::AnalysisSession* session,
                         ServerOptions options)
    : session_(session),
      options_(options),
      stats_(std::make_unique<LiveStats>()) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  std::lock_guard<std::mutex> lock(g_servers_mu);
  Servers().push_back(this);
}

QueryServer::~QueryServer() {
  Stop();
  std::lock_guard<std::mutex> lock(g_servers_mu);
  auto& servers = Servers();
  servers.erase(std::remove(servers.begin(), servers.end(), this),
                servers.end());
}

Status QueryServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("query server already running");
  }
  if (session_ == nullptr || !session_->IsLoggedIn()) {
    return Status::FailedPrecondition(
        "the embedded session must be logged in before serving");
  }
  // Served writes collect their commit ticket inside the writer lock and
  // wait for the group-commit fsync outside it (see Execute()).
  session_->SetDeferredCommits(true);
  GEA_ASSIGN_OR_RETURN(net::ListenSocket listener,
                       net::ListenLoopback(options_.port));
  listen_fd_ = listener.fd;
  port_.store(listener.port, std::memory_order_release);
  {
    std::lock_guard<TimedMutex> queue_lock(queue_mu_);
    draining_ = false;
  }
  running_.store(true, std::memory_order_release);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryServer::WorkerLoop, this);
  }
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this, listener.fd);
  obs::LogRecord(obs::LogLevel::kInfo, "serve_started")
      .Int("port", Port())
      .Int("workers", static_cast<int64_t>(options_.num_workers))
      .Int("queue_capacity", static_cast<int64_t>(options_.queue_capacity))
      .Emit();
  return Status::OK();
}

void QueryServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);

  // 1. Stop accepting.
  shutdown(listen_fd_, SHUT_RDWR);
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Wake every reader: SHUT_RD turns their blocking recv into EOF.
  //    In-flight responses can still be written (write side stays open).
  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    for (const std::weak_ptr<Connection>& weak : conns_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        shutdown(conn->fd, SHUT_RD);
      }
    }
  }
  {
    // Readers exit on EOF; join them so no new requests can be admitted.
    std::vector<std::thread> readers;
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      readers.swap(readers_);
    }
    for (std::thread& reader : readers) {
      if (reader.joinable()) reader.join();
    }
  }

  // 3. Drain: workers finish every admitted request, then exit.
  {
    std::lock_guard<TimedMutex> queue_lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    conns_.clear();  // remaining Connection refs die with their tasks
  }
  port_.store(0, std::memory_order_release);
  // Back to inline durability for direct (unserved) session use.
  if (session_ != nullptr) session_->SetDeferredCommits(false);
  obs::LogRecord(obs::LogLevel::kInfo, "serve_stopped").Emit();
}

QueryServer::Stats QueryServer::GetStats() const {
  Stats out;
  out.requests = stats_->requests.load(std::memory_order_relaxed);
  out.errors = stats_->errors.load(std::memory_order_relaxed);
  out.rejected_queue_full =
      stats_->rejected_queue_full.load(std::memory_order_relaxed);
  out.rejected_deadline =
      stats_->rejected_deadline.load(std::memory_order_relaxed);
  out.bytes_in = stats_->bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = stats_->bytes_out.load(std::memory_order_relaxed);
  out.connections_total =
      stats_->connections_total.load(std::memory_order_relaxed);
  out.connections = stats_->connections.load(std::memory_order_relaxed);
  out.queue_depth = stats_->queue_depth.load(std::memory_order_relaxed);
  return out;
}

// ---- Accept / read / admission ----

void QueryServer::AcceptLoop(int listen_fd) {
  while (running_.load(std::memory_order_acquire)) {
    Result<int> fd = net::Accept(listen_fd);
    if (!fd.ok()) break;  // Stop() closed the listener
    auto conn = std::make_shared<Connection>(*fd);
    stats_->connections_total.fetch_add(1, std::memory_order_relaxed);
    stats_->connections.fetch_add(1, std::memory_order_relaxed);
    ConnectionsTotalCounter().Add(1);
    ConnectionsGauge().Add(1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(std::remove_if(
                     conns_.begin(), conns_.end(),
                     [](const std::weak_ptr<Connection>& w) {
                       return w.expired();
                     }),
                 conns_.end());
    conns_.push_back(conn);
    readers_.emplace_back(&QueryServer::ConnectionLoop, this, std::move(conn));
  }
}

void QueryServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    Result<std::optional<std::string>> frame =
        ReadFrame(conn->fd, options_.max_payload_bytes);
    if (!frame.ok() || !frame->has_value()) {
      // Torn frame / CRC mismatch / peer gone: nothing trustworthy left
      // on this stream, so drop the connection.
      break;
    }
    const std::string& payload = **frame;
    stats_->bytes_in.fetch_add(payload.size() + 8, std::memory_order_relaxed);
    BytesInCounter().Add(payload.size() + 8);

    const uint64_t decode_start = obs::NowNanos();
    Result<Request> request = DecodeRequest(payload);
    const uint64_t decode_nanos = obs::NowNanos() - decode_start;
    if (!request.ok()) {
      // The frame was intact but the payload is not a request we
      // understand; tell the client, then drop the stream.
      (void)WriteResponse(*conn, ErrorResponse(0, request.status()));
      break;
    }

    Task task;
    task.conn = conn;
    task.request = std::move(*request);
    task.received = Clock::now();
    if (task.request.deadline_ms > 0) {
      task.has_deadline = true;
      task.deadline =
          task.received + std::chrono::milliseconds(task.request.deadline_ms);
    }
    task.decode_start_nanos = decode_start;
    task.decode_nanos = decode_nanos;
    task.reader_tid = obs::CurrentThreadId();
    // Sampling: the client's sampled flag forces it; otherwise 1-in-N
    // head sampling (GEA_TRACE_SAMPLE). A client-supplied trace id is
    // kept either way so the response can echo it.
    if (task.request.trace.has_value()) {
      task.sampled =
          task.request.trace->sampled || obs::SampleThisRequest();
      task.trace_id = task.request.trace->trace_id != 0
                          ? task.request.trace->trace_id
                          : obs::NextTraceId();
    } else {
      task.sampled = obs::SampleThisRequest();
      if (task.sampled) task.trace_id = obs::NextTraceId();
    }

    bool admitted = false;
    {
      std::lock_guard<TimedMutex> lock(queue_mu_);
      if (queue_.size() < options_.queue_capacity) {
        queue_.push_back(std::move(task));
        stats_->queue_depth.store(static_cast<int64_t>(queue_.size()),
                                  std::memory_order_relaxed);
        QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
      continue;
    }

    // Queue full: explicit backpressure from the reader thread itself —
    // the client hears RESOURCE_EXHAUSTED now instead of waiting on an
    // unbounded buffer.
    stats_->requests.fetch_add(1, std::memory_order_relaxed);
    stats_->rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
    RequestsCounter().Add(1);
    RejectedQueueFullCounter().Add(1);
    (void)WriteResponse(
        *conn, ErrorResponse(task.request.request_id,
                             Status::ResourceExhausted(
                                 "admission queue full (capacity " +
                                 std::to_string(options_.queue_capacity) +
                                 "); retry later")));
  }
  stats_->connections.fetch_add(-1, std::memory_order_relaxed);
  ConnectionsGauge().Add(-1);
}

void QueryServer::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<TimedMutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_->queue_depth.store(static_cast<int64_t>(queue_.size()),
                                std::memory_order_relaxed);
      QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
    }
    RunTask(std::move(task));
  }
}

void QueryServer::RunTask(Task task) {
  const Clock::time_point start = Clock::now();
  const uint64_t queue_wait_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                           task.received)
          .count();
  QueueWaitHistogram().Record(queue_wait_nanos);
  stats_->requests.fetch_add(1, std::memory_order_relaxed);
  RequestsCounter().Add(1);

  // Stage accumulator for this request: the WAL attributes append/fsync
  // time into it from below, the session contributes execution spans,
  // and the slow-query log reads queue/fsync from it. Unsampled cost per
  // stage stays one clock read + the accumulate branch.
  obs::StageCollectorScope stage_scope;
  obs::StageNanos& stages = stage_scope.stages();
  stages[obs::RequestStage::kDecode] = task.decode_nanos;
  stages[obs::RequestStage::kQueue] = queue_wait_nanos;

  // Per-query memory account: allocation sites in the data containers
  // charge it while it is bound to the executing threads (ParallelFor
  // propagates the binding like TraceBinding).
  obs::MemoryAccount account;

  Response response;
  if (task.has_deadline && start >= task.deadline) {
    // Expired while queued: reject before doing any work.
    stats_->rejected_deadline.fetch_add(1, std::memory_order_relaxed);
    RejectedDeadlineCounter().Add(1);
    response = ErrorResponse(
        task.request.request_id,
        Status::DeadlineExceeded("deadline of " +
                                 std::to_string(task.request.deadline_ms) +
                                 " ms expired before execution"));
  } else {
    // Bind the trace id (and, when sampled, forced span recording) to
    // this thread for the execution; ParallelFor propagates it into pool
    // helpers, so the whole span tree lands in this request's trace.
    obs::TraceBindingScope binding({task.trace_id, task.sampled});
    obs::MemoryAccountScope account_scope(&account);
    // Visible to the stalled-request watchdog for the execution window.
    obs::InflightRequest inflight;
    inflight.trace_id = task.trace_id;
    inflight.op = task.request.op;
    inflight.user = task.conn->User();
    inflight.start_nanos = obs::NowNanos();
    inflight.mark = obs::TraceCollector::Global().Mark();
    inflight.worker_tid = obs::CurrentThreadId();
    obs::ScopedInflightRequest inflight_scope(std::move(inflight));
    const uint64_t execute_start = obs::NowNanos();
    response = Execute(*task.conn, task.request);
    stages[obs::RequestStage::kExecute] = obs::NowNanos() - execute_start;
    response.request_id = task.request.request_id;
  }
  if (!response.ok()) {
    stats_->errors.fetch_add(1, std::memory_order_relaxed);
    ErrorsCounter().Add(1);
  }
  RequestHistogram().Record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());

  // Answer in the requester's protocol version; echo the trace id and —
  // when the client sent a trace context — the stage breakdown
  // (WriteResponse fills encode and patches the block in place).
  response.wire_version = task.request.wire_version;
  if (task.request.wire_version >= 2) {
    response.trace_id = task.trace_id;
    if (task.request.trace.has_value()) response.timing.emplace();
  }
  (void)WriteResponse(*task.conn, response, &stages, &account);

  PublishTrace(task, response, stage_scope, account);
}

void QueryServer::PublishTrace(Task& task, const Response& response,
                               obs::StageCollectorScope& stage_scope,
                               const obs::MemoryAccount& account) {
  const uint64_t total_nanos = obs::NowNanos() - task.decode_start_nanos;
  // Tail-sampling escape hatch: a request that crossed the slow-query
  // threshold is recorded even when head sampling missed it (its span
  // tree is empty — spans were never recorded — but stages are real).
  bool slow = false;
  if (!task.sampled) {
    const std::optional<uint64_t> slow_ms = obs::SlowQueryThresholdMs();
    slow = slow_ms.has_value() && total_nanos >= *slow_ms * 1000000ull;
  }
  if (!task.sampled && !slow) return;

  obs::RequestTraceRecord record;
  record.trace_id = task.trace_id != 0 ? task.trace_id : obs::NextTraceId();
  record.request_id = task.request.request_id;
  record.op = task.request.op;
  record.user = task.conn->User();
  record.status_code = static_cast<int>(response.code);
  record.slow = slow;
  record.start_nanos = task.decode_start_nanos;
  record.total_nanos = total_nanos;
  record.stages = stage_scope.stages();
  record.alloc_bytes = account.AllocatedBytes();
  record.peak_bytes = account.PeakBytes();
  record.reader_tid = task.reader_tid;
  record.worker_tid = obs::CurrentThreadId();
  record.spans = std::move(stage_scope.spans());
  obs::RequestTraceRing::Global().Publish(std::move(record));
}

Status QueryServer::WriteResponse(Connection& conn, const Response& response,
                                  obs::StageNanos* stages,
                                  const obs::MemoryAccount* account) {
  const uint64_t encode_start = stages != nullptr ? obs::NowNanos() : 0;
  std::string payload = EncodeResponse(response);
  if (stages != nullptr) {
    (*stages)[obs::RequestStage::kEncode] = obs::NowNanos() - encode_start;
    if (response.timing.has_value()) {
      // Stamp the measured stages into the trailing timing block. The
      // write stage stays 0 on the wire (unknowable before the write);
      // the trace ring gets its real value below.
      StageBreakdown timing;
      timing.decode_nanos = (*stages)[obs::RequestStage::kDecode];
      timing.queue_nanos = (*stages)[obs::RequestStage::kQueue];
      timing.execute_nanos = (*stages)[obs::RequestStage::kExecute];
      timing.wal_append_nanos = (*stages)[obs::RequestStage::kWalAppend];
      timing.wal_fsync_nanos = (*stages)[obs::RequestStage::kWalFsync];
      timing.encode_nanos = (*stages)[obs::RequestStage::kEncode];
      timing.lock_wait_nanos = (*stages)[obs::RequestStage::kLockWait];
      if (account != nullptr) {
        timing.alloc_bytes = account->AllocatedBytes();
        timing.peak_bytes = account->PeakBytes();
      }
      PatchResponseTiming(&payload, timing);
    }
  }
  std::lock_guard<std::mutex> lock(conn.write_mu);
  const uint64_t write_start = stages != nullptr ? obs::NowNanos() : 0;
  Status status = WriteFrame(conn.fd, payload);
  if (stages != nullptr) {
    (*stages)[obs::RequestStage::kWrite] = obs::NowNanos() - write_start;
  }
  if (status.ok()) {
    stats_->bytes_out.fetch_add(payload.size() + 8, std::memory_order_relaxed);
    BytesOutCounter().Add(payload.size() + 8);
  }
  return status;
}

// ---- Execution ----

Response QueryServer::Execute(Connection& conn, const Request& request) {
  // Registered handlers are consulted before the built-ins, so a router
  // can override e.g. `aggregate` with a scatter-gather implementation
  // while everything else falls through to the local session.
  const HandlerEntry* handler = nullptr;
  if (auto it = handlers_.find(request.op); it != handlers_.end()) {
    handler = &it->second;
  }
  const bool needs_auth =
      handler != nullptr ? handler->spec.needs_auth : NeedsAuth(request.op);
  const bool admin_only = handler != nullptr ? handler->spec.admin_only
                                             : RequiresAdmin(request.op);
  const bool mutating =
      handler != nullptr ? handler->spec.mutating : IsMutating(request.op);

  if (needs_auth && !conn.authenticated.load(std::memory_order_acquire)) {
    return ErrorResponse(
        request.request_id,
        Status::PermissionDenied("please authenticate with 'login' first"));
  }
  if (admin_only && conn.level.load(std::memory_order_acquire) !=
                        static_cast<int>(workbench::AccessLevel::kAdministrator)) {
    return ErrorResponse(request.request_id,
                         Status::PermissionDenied(
                             request.op + " requires administrator access"));
  }
  // Role-aware admission: a replica serves reads and refuses writes, so
  // a client that mistakes a replica for the primary hears a clean
  // FailedPrecondition instead of diverging the copies. Promotion ops
  // opt out via allow_on_replica.
  if (mutating && Role() == ServerRole::kReplica &&
      (handler == nullptr || !handler->spec.allow_on_replica)) {
    return ErrorResponse(
        request.request_id,
        Status::FailedPrecondition(
            request.op +
            ": this server is a read-only replica; send writes to the "
            "primary"));
  }

  auto run = [&]() -> Response {
    if (handler != nullptr) {
      Response response = handler->fn(request);
      response.request_id = request.request_id;
      return response;
    }
    return Dispatch(conn, request);
  };
  if (handler != nullptr && !handler->spec.needs_session_lock) {
    // Blocking handlers (the replication long-poll) synchronize on their
    // own state; holding a session lock here could deadlock against the
    // very mutation the poll is waiting for.
    return run();
  }
  if (handler == nullptr && !mutating && LockFreeRead(request.op)) {
    // MVCC read path: the operator pins the current catalog epoch and
    // runs against that immutable version, so no lock is needed and no
    // writer can ever block it.
    return run();
  }
  if (mutating) {
    // The exclusive lock now orders only writer-vs-writer catalog
    // mutation. Durability is NOT awaited under the lock: the session
    // runs with deferred commits, we collect the ticket here and wait
    // after unlocking, so concurrent writers' records coalesce into one
    // group-commit fsync.
    Response response;
    std::shared_ptr<txn::CommitTicket> ticket;
    {
      std::unique_lock<SharedTimedMutex> lock(session_mu_);
      response = run();
      ticket = session_->TakePendingCommit();
    }
    if (ticket != nullptr) {
      if (Status durable = ticket->Wait();
          !durable.ok() && response.code == StatusCode::kOk) {
        return ErrorResponse(request.request_id, durable);
      }
    }
    return response;
  }
  std::shared_lock<SharedTimedMutex> lock(session_mu_);
  return run();
}

Response QueryServer::Dispatch(Connection& conn, const Request& request) {
  Response response;
  response.request_id = request.request_id;
  const std::string& op = request.op;

  auto fail = [&](const Status& status) {
    return ErrorResponse(request.request_id, status);
  };

  if (op == "ping") {
    auto it = request.params.find("sleep_ms");
    if (it != request.params.end()) {
      // Test hook: occupy this worker for a bounded while, so admission
      // tests can fill the queue deterministically.
      const long ms = std::min(std::strtol(it->second.c_str(), nullptr, 10),
                               1000L);
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    response.text = "pong";
    return response;
  }

  if (op == "role") {
    // Role + dist-layer detail as (name, value) rows — the health probe
    // behind the shell's \role and QueryClient::WaitForLsn. Auth-free
    // like ping: failover tooling must see the role before logging in.
    rel::Table table("role",
                     rel::Schema({{"name", rel::ValueType::kString},
                                  {"value", rel::ValueType::kString}}));
    table.AppendRowUnchecked({rel::Value::String("role"),
                              rel::Value::String(ServerRoleName(Role()))});
    if (role_info_) {
      for (const auto& [name, value] : role_info_()) {
        table.AppendRowUnchecked(
            {rel::Value::String(name), rel::Value::String(value)});
      }
    }
    response.table = std::move(table);
    return response;
  }

  if (op == "login") {
    Result<std::string> user = GetParam(request, "user");
    Result<std::string> password = GetParam(request, "password");
    if (!user.ok()) return fail(user.status());
    if (!password.ok()) return fail(password.status());
    workbench::AccessLevel level = workbench::AccessLevel::kUser;
    auto level_it = request.params.find("level");
    if (level_it != request.params.end()) {
      if (level_it->second == "admin" ||
          level_it->second == "administrator") {
        level = workbench::AccessLevel::kAdministrator;
      } else if (level_it->second != "user") {
        return fail(Status::InvalidArgument("unknown access level: " +
                                            level_it->second));
      }
    }
    Result<workbench::AccessLevel> granted =
        session_->AuthenticateUser(*user, *password, level);
    if (!granted.ok()) return fail(granted.status());
    conn.level.store(static_cast<int>(*granted), std::memory_order_release);
    conn.authenticated.store(true, std::memory_order_release);
    conn.SetUser(*user);
    response.text = "logged in as " + *user + " (" +
                    workbench::AccessLevelName(*granted) + ")";
    return response;
  }

  if (op == "logout") {
    conn.authenticated.store(false, std::memory_order_release);
    conn.level.store(0, std::memory_order_release);
    conn.SetUser("");
    response.text = "logged out";
    return response;
  }

  if (op == "sql") {
    Result<std::string> query = GetParam(request, "query");
    if (!query.ok()) return fail(query.status());
    Result<rel::Table> table = session_->Query(*query);
    if (!table.ok()) return fail(table.status());
    response.table = std::move(*table);
    return response;
  }

  if (op == "tables") {
    // Snapshot-based: runs lock-free against the pinned epoch.
    response.table = NamesTable("name", session_->SnapshotTableNames());
    return response;
  }

  if (op == "get_table") {
    Result<std::string> name = GetParam(request, "name");
    if (!name.ok()) return fail(name.status());
    Result<rel::Table> table = session_->MaterializeAnyTable(*name);
    if (!table.ok()) return fail(table.status());
    response.table = std::move(*table);
    return response;
  }

  if (op == "explain") {
    Result<std::string> rendered = session_->ExplainLast();
    if (!rendered.ok()) return fail(rendered.status());
    response.text = std::move(*rendered);
    return response;
  }

  if (op == "query_log") {
    std::vector<workbench::AnalysisSession::QueryLogEntry> log =
        session_->QueryLog();
    size_t first = 0;
    if (auto it = request.params.find("limit"); it != request.params.end()) {
      Result<int64_t> limit = GetIntParam(request, "limit");
      if (!limit.ok()) return fail(limit.status());
      if (*limit >= 0 && static_cast<size_t>(*limit) < log.size()) {
        first = log.size() - static_cast<size_t>(*limit);
      }
    }
    rel::Table table("query",
                     rel::Schema({{"operation", rel::ValueType::kString},
                                  {"detail", rel::ValueType::kString},
                                  {"elapsed_ms", rel::ValueType::kDouble},
                                  {"ok", rel::ValueType::kInt},
                                  {"error", rel::ValueType::kString}}));
    for (size_t i = first; i < log.size(); ++i) {
      table.AppendRowUnchecked(
          {rel::Value::String(log[i].operation),
           rel::Value::String(log[i].detail),
           rel::Value::Double(static_cast<double>(log[i].elapsed_nanos) / 1e6),
           rel::Value::Int(log[i].ok ? 1 : 0),
           rel::Value::String(log[i].error)});
    }
    response.table = std::move(table);
    return response;
  }

  if (op == "aggregate") {
    Result<std::string> enum_name = GetParam(request, "enum");
    Result<std::string> out = GetParam(request, "out");
    if (!enum_name.ok()) return fail(enum_name.status());
    if (!out.ok()) return fail(out.status());
    Status status = session_->Aggregate(*enum_name, *out,
                                        GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *out;
    return response;
  }

  if (op == "populate") {
    Result<std::string> sumy = GetParam(request, "sumy");
    Result<std::string> base = GetParam(request, "base");
    Result<std::string> out = GetParam(request, "out");
    if (!sumy.ok()) return fail(sumy.status());
    if (!base.ok()) return fail(base.status());
    if (!out.ok()) return fail(out.status());
    Status status = session_->Populate(*sumy, *base, *out,
                                       GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *out;
    return response;
  }

  if (op == "diff" || op == "create_gap") {
    Result<std::string> sumy1 = GetParam(request, "sumy1");
    Result<std::string> sumy2 = GetParam(request, "sumy2");
    Result<std::string> gap = GetParam(request, "gap");
    if (!sumy1.ok()) return fail(sumy1.status());
    if (!sumy2.ok()) return fail(sumy2.status());
    if (!gap.ok()) return fail(gap.status());
    Status status = session_->CreateGap(*sumy1, *sumy2, *gap,
                                        GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *gap;
    return response;
  }

  if (op == "top_gap") {
    Result<std::string> gap = GetParam(request, "gap");
    Result<int64_t> x = GetIntParam(request, "x");
    if (!gap.ok()) return fail(gap.status());
    if (!x.ok()) return fail(x.status());
    if (*x < 0) return fail(Status::InvalidArgument("x must be >= 0"));
    core::TopGapMode mode = core::TopGapMode::kLargestMagnitude;
    if (request.params.count("mode") > 0) {
      Result<int64_t> m = GetIntParam(request, "mode");
      if (!m.ok()) return fail(m.status());
      if (*m < 0 || *m > 2) {
        return fail(Status::InvalidArgument("mode must be in 0..2"));
      }
      mode = static_cast<core::TopGapMode>(*m);
    }
    Result<std::string> name =
        session_->CalculateTopGap(*gap, static_cast<size_t>(*x), mode);
    if (!name.ok()) return fail(name.status());
    response.text = std::move(*name);
    return response;
  }

  if (op == "compare_gaps") {
    Result<std::string> a = GetParam(request, "a");
    Result<std::string> b = GetParam(request, "b");
    Result<int64_t> kind = GetIntParam(request, "kind");
    Result<std::string> out = GetParam(request, "out");
    if (!a.ok()) return fail(a.status());
    if (!b.ok()) return fail(b.status());
    if (!kind.ok()) return fail(kind.status());
    if (!out.ok()) return fail(out.status());
    if (*kind < 0 || *kind > 2) {
      return fail(Status::InvalidArgument("kind must be in 0..2"));
    }
    Status status = session_->CompareGapTables(
        *a, *b, static_cast<core::GapCompareKind>(*kind), *out,
        GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *out;
    return response;
  }

  if (op == "gap_query") {
    Result<std::string> compared = GetParam(request, "compared");
    Result<int64_t> query = GetIntParam(request, "query");
    Result<std::string> out = GetParam(request, "out");
    if (!compared.ok()) return fail(compared.status());
    if (!query.ok()) return fail(query.status());
    if (!out.ok()) return fail(out.status());
    if (*query < 1 || *query > 13) {
      return fail(Status::InvalidArgument("query must be in 1..13"));
    }
    Status status = session_->RunGapQuery(
        *compared, static_cast<core::GapCompareQuery>(*query), *out,
        GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *out;
    return response;
  }

  if (op == "tissue_dataset") {
    Result<std::string> tissue = GetParam(request, "tissue");
    if (!tissue.ok()) return fail(tissue.status());
    Result<sage::TissueType> type = sage::ParseTissueType(*tissue);
    if (!type.ok()) return fail(type.status());
    Status status = session_->CreateTissueDataSet(
        *type, GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *tissue;
    return response;
  }

  if (op == "custom_dataset") {
    Result<std::string> name = GetParam(request, "name");
    Result<std::string> libs = GetParam(request, "libs");
    if (!name.ok()) return fail(name.status());
    if (!libs.ok()) return fail(libs.status());
    std::vector<int> library_ids;
    for (const std::string& part : Split(*libs, ',')) {
      char* end = nullptr;
      const long id = std::strtol(part.c_str(), &end, 10);
      if (end == part.c_str() || *end != '\0') {
        return fail(
            Status::InvalidArgument("bad library id in libs: " + part));
      }
      library_ids.push_back(static_cast<int>(id));
    }
    Status status = session_->CreateCustomDataSet(
        *name, library_ids, GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *name;
    return response;
  }

  if (op == "generate_metadata") {
    Result<std::string> dataset = GetParam(request, "dataset");
    Result<double> percent = GetDoubleParam(request, "percent");
    Result<std::string> meta = GetParam(request, "meta");
    if (!dataset.ok()) return fail(dataset.status());
    if (!percent.ok()) return fail(percent.status());
    if (!meta.ok()) return fail(meta.status());
    Status status = session_->GenerateMetadata(
        *dataset, *percent, *meta, GetBoolParam(request, "replace"));
    if (!status.ok()) return fail(status);
    response.text = "created " + *meta;
    return response;
  }

  if (op == "mine" || op == "fascicles") {
    Result<std::string> dataset = GetParam(request, "dataset");
    Result<std::string> meta = GetParam(request, "meta");
    Result<int64_t> min_compact = GetIntParam(request, "min_compact_tags");
    Result<int64_t> batch_size = GetIntParam(request, "batch_size");
    Result<int64_t> min_size = GetIntParam(request, "min_size");
    Result<std::string> out_prefix = GetParam(request, "out_prefix");
    if (!dataset.ok()) return fail(dataset.status());
    if (!meta.ok()) return fail(meta.status());
    if (!min_compact.ok()) return fail(min_compact.status());
    if (!batch_size.ok()) return fail(batch_size.status());
    if (!min_size.ok()) return fail(min_size.status());
    if (!out_prefix.ok()) return fail(out_prefix.status());
    if (*min_compact < 0 || *batch_size < 0 || *min_size < 0) {
      return fail(Status::InvalidArgument("sizes must be >= 0"));
    }
    Result<std::vector<std::string>> fascicles = session_->CalculateFascicles(
        *dataset, *meta, static_cast<size_t>(*min_compact),
        static_cast<size_t>(*batch_size), static_cast<size_t>(*min_size),
        *out_prefix);
    if (!fascicles.ok()) return fail(fascicles.status());
    response.table = NamesTable("fascicle", *fascicles);
    return response;
  }

  if (op == "checkpoint") {
    Status status = session_->Checkpoint();
    if (!status.ok()) return fail(status);
    response.text = "checkpoint complete";
    return response;
  }

  return fail(Status::InvalidArgument("unknown command: " + op));
}

}  // namespace gea::serve
