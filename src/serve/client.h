#ifndef GEA_SERVE_CLIENT_H_
#define GEA_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "serve/protocol.h"

namespace gea::serve {

/// Synchronous client for the GEA query service: one TCP connection, one
/// outstanding request at a time. Thread-compatible, not thread-safe —
/// concurrency is achieved by giving each thread its own client, which
/// is exactly how the stress tests and bench_serve drive the server.
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient();

  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connects to the server on 127.0.0.1:`port`.
  Status Connect(int port);
  bool Connected() const { return fd_ >= 0; }
  void Close();

  /// Every request sent through this client carries this deadline
  /// (milliseconds from server receipt); 0 disables.
  void SetDeadlineMs(uint32_t deadline_ms) { deadline_ms_ = deadline_ms; }

  /// When enabled, every request carries a trace context with the
  /// sampled flag set: the server records it into its trace ring and
  /// echoes the per-stage timing breakdown, exposed via LastTiming().
  void SetTracing(bool enabled) { tracing_ = enabled; }
  bool Tracing() const { return tracing_; }

  /// The stage breakdown from the most recent response that carried one
  /// (cleared by each Call), and its server-side trace id.
  const std::optional<StageBreakdown>& LastTiming() const {
    return last_timing_;
  }
  uint64_t LastTraceId() const { return last_trace_id_; }

  /// Sends `op` with `params` and waits for the response. Request ids
  /// are assigned internally and verified on the response. A transport
  /// error closes the connection (the stream is no longer trustworthy);
  /// an application error (non-OK response) leaves it open.
  Result<Response> Call(const std::string& op,
                        std::map<std::string, std::string> params = {});

  // ---- Convenience wrappers ----

  Status Ping();
  Status Login(const std::string& user, const std::string& password,
               const std::string& level = "user");
  Status Logout();
  /// Runs SQL; returns the result table.
  Result<rel::Table> Sql(const std::string& query);

  /// The `role` command as (name -> value) pairs: "role" plus whatever
  /// the server's RoleInfoProvider reports (applied_lsn, lag_bytes, ...).
  Result<std::map<std::string, std::string>> RoleInfo();

  /// Read-your-writes against a replica: polls RoleInfo() until the
  /// server's `applied_lsn` reaches `lsn` or `timeout_ms` elapses
  /// (DeadlineExceeded). A server that never reports applied_lsn (a
  /// primary) fails FailedPrecondition immediately.
  Status WaitForLsn(uint64_t lsn, uint32_t timeout_ms = 5000);

 private:
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint32_t deadline_ms_ = 0;
  bool tracing_ = false;
  uint64_t trace_id_base_ = 0;  // lazily derived; trace_id = base ^ req id
  std::optional<StageBreakdown> last_timing_;
  uint64_t last_trace_id_ = 0;
};

}  // namespace gea::serve

#endif  // GEA_SERVE_CLIENT_H_
