#include "serve/client.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/net.h"
#include "obs/clock.h"

namespace gea::serve {

QueryClient::~QueryClient() { Close(); }

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      deadline_ms_(other.deadline_ms_),
      tracing_(other.tracing_),
      trace_id_base_(other.trace_id_base_),
      last_timing_(other.last_timing_),
      last_trace_id_(other.last_trace_id_) {
  other.fd_ = -1;
}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    deadline_ms_ = other.deadline_ms_;
    tracing_ = other.tracing_;
    trace_id_base_ = other.trace_id_base_;
    last_timing_ = other.last_timing_;
    last_trace_id_ = other.last_trace_id_;
    other.fd_ = -1;
  }
  return *this;
}

Status QueryClient::Connect(int port) {
  if (Connected()) {
    return Status::FailedPrecondition("client already connected");
  }
  GEA_ASSIGN_OR_RETURN(fd_, net::ConnectLoopback(port));
  return Status::OK();
}

void QueryClient::Close() {
  net::CloseFd(fd_);
  fd_ = -1;
}

Result<Response> QueryClient::Call(const std::string& op,
                                   std::map<std::string, std::string> params) {
  if (!Connected()) {
    return Status::FailedPrecondition("client is not connected");
  }
  Request request;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms_;
  request.op = op;
  request.params = std::move(params);
  last_timing_.reset();
  last_trace_id_ = 0;
  if (tracing_) {
    // Client-supplied trace ids: a per-client base (wall-ish entropy, so
    // concurrent clients do not collide) XOR the monotonic request id.
    if (trace_id_base_ == 0) {
      trace_id_base_ = obs::NowNanos() | 1;  // never 0
    }
    TraceContext trace;
    trace.trace_id = trace_id_base_ ^ (request.request_id << 1);
    trace.sampled = true;
    request.trace = trace;
  }

  Status sent = WriteFrame(fd_, EncodeRequest(request));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Result<std::optional<std::string>> frame = ReadFrame(fd_);
  if (!frame.ok()) {
    Close();
    return frame.status();
  }
  if (!frame->has_value()) {
    Close();
    return Status::IoError("server closed the connection");
  }
  Result<Response> response = DecodeResponse(**frame);
  if (!response.ok()) {
    Close();
    return response.status();
  }
  if (response->request_id != request.request_id) {
    Close();
    return Status::Internal(
        "response id mismatch: sent " + std::to_string(request.request_id) +
        ", got " + std::to_string(response->request_id));
  }
  last_timing_ = response->timing;
  last_trace_id_ = response->trace_id;
  return response;
}

Status QueryClient::Ping() {
  GEA_ASSIGN_OR_RETURN(Response response, Call("ping"));
  return response.ToStatus();
}

Status QueryClient::Login(const std::string& user, const std::string& password,
                          const std::string& level) {
  GEA_ASSIGN_OR_RETURN(
      Response response,
      Call("login",
           {{"user", user}, {"password", password}, {"level", level}}));
  return response.ToStatus();
}

Status QueryClient::Logout() {
  GEA_ASSIGN_OR_RETURN(Response response, Call("logout"));
  return response.ToStatus();
}

Result<rel::Table> QueryClient::Sql(const std::string& query) {
  GEA_ASSIGN_OR_RETURN(Response response, Call("sql", {{"query", query}}));
  GEA_RETURN_IF_ERROR(response.ToStatus());
  if (!response.table.has_value()) {
    return Status::Internal("sql response carried no table");
  }
  return std::move(*response.table);
}

Result<std::map<std::string, std::string>> QueryClient::RoleInfo() {
  GEA_ASSIGN_OR_RETURN(Response response, Call("role"));
  GEA_RETURN_IF_ERROR(response.ToStatus());
  if (!response.table.has_value()) {
    return Status::Internal("role response carried no table");
  }
  std::map<std::string, std::string> info;
  const rel::Table& table = *response.table;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    info[table.At(i, 0).AsString()] = table.At(i, 1).AsString();
  }
  return info;
}

Status QueryClient::WaitForLsn(uint64_t lsn, uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    GEA_ASSIGN_OR_RETURN(auto info, RoleInfo());
    auto it = info.find("applied_lsn");
    if (it == info.end()) {
      return Status::FailedPrecondition(
          "server does not report applied_lsn (not a replica)");
    }
    if (std::strtoull(it->second.c_str(), nullptr, 10) >= lsn) {
      return Status::OK();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("replica did not reach lsn " +
                                      std::to_string(lsn) + " in " +
                                      std::to_string(timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace gea::serve
