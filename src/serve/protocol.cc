#include "serve/protocol.h"

#include <utility>

#include "common/crc32.h"
#include "common/net.h"
#include "store/format.h"

namespace gea::serve {

Status Response::ToStatus() const {
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, message);
}

Response ErrorResponse(uint64_t request_id, const Status& status) {
  Response response;
  response.request_id = request_id;
  response.code = status.code();
  response.message = std::string(status.message());
  return response;
}

// ---- Payload codecs ----

namespace {

bool SupportedVersion(uint8_t version) {
  return version >= kMinProtocolVersion && version <= kProtocolVersion;
}

/// The fixed-width timing block, in RequestStage order. v3 appends the
/// lock-wait stage and the memory-accounting pair.
void PutStageBreakdown(std::string* out, const StageBreakdown& timing,
                       uint8_t version) {
  store::PutU64(out, timing.decode_nanos);
  store::PutU64(out, timing.queue_nanos);
  store::PutU64(out, timing.execute_nanos);
  store::PutU64(out, timing.wal_append_nanos);
  store::PutU64(out, timing.wal_fsync_nanos);
  store::PutU64(out, timing.encode_nanos);
  store::PutU64(out, timing.write_nanos);
  if (version >= 3) {
    store::PutU64(out, timing.lock_wait_nanos);
    store::PutU64(out, timing.alloc_bytes);
    store::PutU64(out, timing.peak_bytes);
  }
}

constexpr size_t TimingBlockBytes(uint8_t version) {
  return (version >= 3 ? kStageBreakdownSlotsV3 : kStageBreakdownSlots) * 8;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  std::string out;
  store::PutU8(&out, kProtocolVersion);
  store::PutU64(&out, request.request_id);
  store::PutU32(&out, request.deadline_ms);
  store::PutString(&out, request.op);
  store::PutU32(&out, static_cast<uint32_t>(request.params.size()));
  for (const auto& [key, value] : request.params) {
    store::PutString(&out, key);
    store::PutString(&out, value);
  }
  if (request.trace.has_value()) {
    store::PutU8(&out, 1);
    store::PutU64(&out, request.trace->trace_id);
    store::PutU8(&out, request.trace->sampled ? 1 : 0);
  } else {
    store::PutU8(&out, 0);
  }
  return out;
}

Result<Request> DecodeRequest(std::string_view payload) {
  store::ByteReader reader(payload);
  GEA_ASSIGN_OR_RETURN(uint8_t version, reader.ReadU8());
  if (!SupportedVersion(version)) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  Request request;
  request.wire_version = version;
  GEA_ASSIGN_OR_RETURN(request.request_id, reader.ReadU64());
  GEA_ASSIGN_OR_RETURN(request.deadline_ms, reader.ReadU32());
  GEA_ASSIGN_OR_RETURN(request.op, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(uint32_t nparams, reader.ReadU32());
  for (uint32_t i = 0; i < nparams; ++i) {
    GEA_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
    request.params[std::move(key)] = std::move(value);
  }
  if (version >= 2) {
    GEA_ASSIGN_OR_RETURN(uint8_t has_trace, reader.ReadU8());
    if (has_trace == 1) {
      TraceContext trace;
      GEA_ASSIGN_OR_RETURN(trace.trace_id, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(uint8_t sampled, reader.ReadU8());
      if (sampled > 1) {
        return Status::InvalidArgument("bad sampled flag in trace context");
      }
      trace.sampled = sampled == 1;
      request.trace = trace;
    } else if (has_trace != 0) {
      return Status::InvalidArgument("bad has_trace flag in request");
    }
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes after request payload");
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  store::PutU8(&out, response.wire_version);
  store::PutU64(&out, response.request_id);
  store::PutU8(&out, static_cast<uint8_t>(response.code));
  store::PutString(&out, response.message);
  store::PutString(&out, response.text);
  if (response.table.has_value()) {
    store::PutU8(&out, 1);
    store::PutString(&out, store::EncodeTable(*response.table));
  } else {
    store::PutU8(&out, 0);
  }
  if (response.wire_version >= 2) {
    store::PutU64(&out, response.trace_id);
    if (response.timing.has_value()) {
      store::PutU8(&out, 1);
      PutStageBreakdown(&out, *response.timing, response.wire_version);
    } else {
      store::PutU8(&out, 0);
    }
  }
  return out;
}

Result<Response> DecodeResponse(std::string_view payload) {
  store::ByteReader reader(payload);
  GEA_ASSIGN_OR_RETURN(uint8_t version, reader.ReadU8());
  if (!SupportedVersion(version)) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  Response response;
  response.wire_version = version;
  GEA_ASSIGN_OR_RETURN(response.request_id, reader.ReadU64());
  GEA_ASSIGN_OR_RETURN(uint8_t code, reader.ReadU8());
  GEA_ASSIGN_OR_RETURN(response.code, StatusCodeFromWire(code));
  GEA_ASSIGN_OR_RETURN(response.message, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(response.text, reader.ReadString());
  GEA_ASSIGN_OR_RETURN(uint8_t has_table, reader.ReadU8());
  if (has_table == 1) {
    GEA_ASSIGN_OR_RETURN(std::string encoded, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(rel::Table table, store::DecodeTable(encoded));
    response.table = std::move(table);
  } else if (has_table != 0) {
    return Status::InvalidArgument("bad has_table flag in response");
  }
  if (version >= 2) {
    GEA_ASSIGN_OR_RETURN(response.trace_id, reader.ReadU64());
    GEA_ASSIGN_OR_RETURN(uint8_t has_timing, reader.ReadU8());
    if (has_timing == 1) {
      StageBreakdown timing;
      GEA_ASSIGN_OR_RETURN(timing.decode_nanos, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(timing.queue_nanos, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(timing.execute_nanos, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(timing.wal_append_nanos, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(timing.wal_fsync_nanos, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(timing.encode_nanos, reader.ReadU64());
      GEA_ASSIGN_OR_RETURN(timing.write_nanos, reader.ReadU64());
      if (version >= 3) {
        GEA_ASSIGN_OR_RETURN(timing.lock_wait_nanos, reader.ReadU64());
        GEA_ASSIGN_OR_RETURN(timing.alloc_bytes, reader.ReadU64());
        GEA_ASSIGN_OR_RETURN(timing.peak_bytes, reader.ReadU64());
      }
      response.timing = timing;
    } else if (has_timing != 0) {
      return Status::InvalidArgument("bad has_timing flag in response");
    }
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes after response payload");
  }
  return response;
}

bool PatchResponseTiming(std::string* payload, const StageBreakdown& timing) {
  // v2+ payloads with a timing block end in: u8 has_timing=1 | N x u64,
  // where N follows the payload's version byte.
  if (payload == nullptr || payload->empty()) return false;
  const uint8_t version = static_cast<uint8_t>((*payload)[0]);
  if (version < 2) return false;
  const size_t block_bytes = TimingBlockBytes(version);
  if (payload->size() < block_bytes + 1) return false;
  const size_t flag_at = payload->size() - block_bytes - 1;
  if (static_cast<uint8_t>((*payload)[flag_at]) != 1) return false;
  std::string block;
  block.reserve(block_bytes);
  PutStageBreakdown(&block, timing, version);
  payload->replace(flag_at + 1, block_bytes, block);
  return true;
}

// ---- Framing ----

std::string Frame(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  store::PutU32(&out, static_cast<uint32_t>(payload.size()));
  store::PutU32(&out, Crc32(payload));
  out.append(payload);
  return out;
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  return net::SendAll(fd, Frame(payload));
}

Result<std::optional<std::string>> ReadFrame(int fd, size_t max_payload) {
  char header[8];
  GEA_ASSIGN_OR_RETURN(
      size_t got, net::RecvExact(fd, header, sizeof(header), /*eof_ok=*/true));
  if (got == 0) return std::optional<std::string>();  // clean EOF

  store::ByteReader reader(std::string_view(header, sizeof(header)));
  GEA_ASSIGN_OR_RETURN(uint32_t length, reader.ReadU32());
  GEA_ASSIGN_OR_RETURN(uint32_t expected_crc, reader.ReadU32());
  if (length > max_payload) {
    return Status::InvalidArgument("frame payload too large: " +
                                   std::to_string(length) + " bytes (max " +
                                   std::to_string(max_payload) + ")");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    GEA_RETURN_IF_ERROR(net::RecvExact(fd, payload.data(), length).status());
  }
  if (Crc32(payload) != expected_crc) {
    return Status::IoError("frame CRC mismatch (corrupt or torn frame)");
  }
  return std::optional<std::string>(std::move(payload));
}

Result<StatusCode> StatusCodeFromWire(uint8_t code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kPermissionDenied:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return static_cast<StatusCode>(code);
  }
  return Status::InvalidArgument("unknown status code on the wire: " +
                                 std::to_string(code));
}

}  // namespace gea::serve
