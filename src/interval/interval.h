#ifndef GEA_INTERVAL_INTERVAL_H_
#define GEA_INTERVAL_INTERVAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace gea::interval {

/// A closed interval [lo, hi] over doubles. SUMY range columns (Section
/// 3.1.2) are intervals of expression levels, and the range-arithmetic
/// feature of Section 4.4.1 queries them with Allen's interval algebra.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// Validated constructor: requires lo <= hi.
  static Result<Interval> Make(double lo, double hi);

  double Width() const { return hi - lo; }
  bool Contains(double x) const { return lo <= x && x <= hi; }

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi;
  }

  /// "[lo, hi]"
  std::string ToString() const;
};

/// Allen's thirteen basic interval relations (Allen 1983/1984), as listed
/// in the thesis's Table 4.1. `kBefore` means A strictly precedes B, etc.
/// For every ordered pair of intervals exactly one basic relation holds.
enum class AllenRelation {
  kBefore = 0,       // b   : A ends strictly before B starts
  kAfter,            // bi  : A starts strictly after B ends
  kMeets,            // m   : A.hi == B.lo, no further overlap
  kMetBy,            // mi  : B meets A
  kOverlaps,         // o   : A starts first, they overlap, A ends inside B
  kOverlappedBy,     // oi  : B overlaps A
  kDuring,           // d   : A strictly inside B
  kIncludes,         // di  : B strictly inside A (a.k.a. "contains")
  kStarts,           // s   : same start, A ends first
  kStartedBy,        // si  : same start, B ends first
  kFinishes,         // f   : same end, A starts later
  kFinishedBy,       // fi  : same end, B starts later
  kEquals,           // e   : identical
};

/// Number of basic relations.
inline constexpr int kNumAllenRelations = 13;

/// Long name ("overlaps") and Table 4.1 symbol ("o").
const char* AllenRelationName(AllenRelation r);
const char* AllenRelationSymbol(AllenRelation r);

/// Parses either the long name or the symbol.
Result<AllenRelation> ParseAllenRelation(const std::string& text);

/// The inverse relation (A r B  <=>  B inverse(r) A).
AllenRelation Inverse(AllenRelation r);

/// The unique basic relation holding between `a` and `b`.
AllenRelation Relate(const Interval& a, const Interval& b);

/// True when relation `r` holds between `a` and `b`.
bool Holds(AllenRelation r, const Interval& a, const Interval& b);

/// True when `a` and `b` share at least one point — the disjunction
/// {o, oi, s, si, f, fi, d, di, e, m, mi}. This is the "overlap" predicate
/// GEA's gap definition (Fig. 3.4) and the range search (Fig. 4.16) use.
bool Intersects(const Interval& a, const Interval& b);

/// Intersection of `a` and `b`, or nullopt when disjoint.
std::optional<Interval> Intersection(const Interval& a, const Interval& b);

/// All thirteen relations in enum order (useful for sweeps).
std::vector<AllenRelation> AllAllenRelations();

/// Allen's composition: the set of basic relations r3 for which intervals
/// a, b, c with (a r1 b) and (b r2 c) can stand in (a r3 c). This is the
/// machinery behind the "possibly indefinite relationships" Allen's
/// algebra expresses (Section 4.4.1). Defined over proper intervals
/// (lo < hi); returned in enum order. The full 13x13 table is computed
/// once by exhaustive enumeration and cached.
const std::vector<AllenRelation>& Compose(AllenRelation r1,
                                          AllenRelation r2);

/// True when `r3` is a possible relation between a and c given a r1 b and
/// b r2 c.
bool CompositionAdmits(AllenRelation r1, AllenRelation r2,
                       AllenRelation r3);

}  // namespace gea::interval

#endif  // GEA_INTERVAL_INTERVAL_H_
