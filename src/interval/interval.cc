#include "interval/interval.h"

#include <algorithm>

namespace gea::interval {

Result<Interval> Interval::Make(double lo, double hi) {
  if (!(lo <= hi)) {
    return Status::InvalidArgument("interval requires lo <= hi, got [" +
                                   std::to_string(lo) + ", " +
                                   std::to_string(hi) + "]");
  }
  return Interval{lo, hi};
}

std::string Interval::ToString() const {
  auto fmt = [](double x) {
    if (x == static_cast<int64_t>(x)) {
      return std::to_string(static_cast<int64_t>(x));
    }
    return std::to_string(x);
  };
  return "[" + fmt(lo) + ", " + fmt(hi) + "]";
}

const char* AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kAfter:
      return "after";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kIncludes:
      return "includes";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kEquals:
      return "equals";
  }
  return "?";
}

const char* AllenRelationSymbol(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "b";
    case AllenRelation::kAfter:
      return "bi";
    case AllenRelation::kMeets:
      return "m";
    case AllenRelation::kMetBy:
      return "mi";
    case AllenRelation::kOverlaps:
      return "o";
    case AllenRelation::kOverlappedBy:
      return "oi";
    case AllenRelation::kDuring:
      return "d";
    case AllenRelation::kIncludes:
      return "di";
    case AllenRelation::kStarts:
      return "s";
    case AllenRelation::kStartedBy:
      return "si";
    case AllenRelation::kFinishes:
      return "f";
    case AllenRelation::kFinishedBy:
      return "fi";
    case AllenRelation::kEquals:
      return "e";
  }
  return "?";
}

Result<AllenRelation> ParseAllenRelation(const std::string& text) {
  for (AllenRelation r : AllAllenRelations()) {
    if (text == AllenRelationName(r) || text == AllenRelationSymbol(r)) {
      return r;
    }
  }
  return Status::InvalidArgument("unknown Allen relation: " + text);
}

AllenRelation Inverse(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kDuring:
      return AllenRelation::kIncludes;
    case AllenRelation::kIncludes:
      return AllenRelation::kDuring;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
  }
  return AllenRelation::kEquals;
}

AllenRelation Relate(const Interval& a, const Interval& b) {
  if (a.lo == b.lo && a.hi == b.hi) return AllenRelation::kEquals;
  if (a.hi < b.lo) return AllenRelation::kBefore;
  if (b.hi < a.lo) return AllenRelation::kAfter;
  if (a.hi == b.lo) return AllenRelation::kMeets;
  if (b.hi == a.lo) return AllenRelation::kMetBy;
  if (a.lo == b.lo) {
    return a.hi < b.hi ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a.hi == b.hi) {
    return a.lo > b.lo ? AllenRelation::kFinishes
                       : AllenRelation::kFinishedBy;
  }
  if (a.lo > b.lo && a.hi < b.hi) return AllenRelation::kDuring;
  if (b.lo > a.lo && b.hi < a.hi) return AllenRelation::kIncludes;
  // Proper overlap: starts differ, ends differ, intervals intersect.
  return a.lo < b.lo ? AllenRelation::kOverlaps
                     : AllenRelation::kOverlappedBy;
}

bool Holds(AllenRelation r, const Interval& a, const Interval& b) {
  return Relate(a, b) == r;
}

bool Intersects(const Interval& a, const Interval& b) {
  return a.lo <= b.hi && b.lo <= a.hi;
}

std::optional<Interval> Intersection(const Interval& a, const Interval& b) {
  if (!Intersects(a, b)) return std::nullopt;
  return Interval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

std::vector<AllenRelation> AllAllenRelations() {
  std::vector<AllenRelation> out;
  out.reserve(kNumAllenRelations);
  for (int i = 0; i < kNumAllenRelations; ++i) {
    out.push_back(static_cast<AllenRelation>(i));
  }
  return out;
}

namespace {

/// The full composition table, built once by enumeration.
///
/// Only the qualitative order of the six endpoints matters, so fixing
/// b = [5, 10] and ranging a and c over every proper interval with
/// endpoints on the grid 0..15 realizes every possible configuration:
/// the grid leaves enough distinct slots below 5 (five), strictly between
/// 5 and 10 (four), and above 10 (five) to place all four remaining
/// endpoints in any order, plus the two shared values 5 and 10.
struct CompositionTable {
  // witnessed[r1][r2] is the sorted set of possible r3.
  std::vector<AllenRelation> entries[kNumAllenRelations][kNumAllenRelations];

  CompositionTable() {
    bool seen[kNumAllenRelations][kNumAllenRelations][kNumAllenRelations] =
        {};
    const Interval b{5, 10};
    std::vector<Interval> grid;
    for (int lo = 0; lo <= 15; ++lo) {
      for (int hi = lo + 1; hi <= 15; ++hi) {
        grid.push_back({static_cast<double>(lo), static_cast<double>(hi)});
      }
    }
    for (const Interval& a : grid) {
      AllenRelation r1 = Relate(a, b);
      for (const Interval& c : grid) {
        AllenRelation r2 = Relate(b, c);
        AllenRelation r3 = Relate(a, c);
        seen[static_cast<int>(r1)][static_cast<int>(r2)]
            [static_cast<int>(r3)] = true;
      }
    }
    for (int r1 = 0; r1 < kNumAllenRelations; ++r1) {
      for (int r2 = 0; r2 < kNumAllenRelations; ++r2) {
        for (int r3 = 0; r3 < kNumAllenRelations; ++r3) {
          if (seen[r1][r2][r3]) {
            entries[r1][r2].push_back(static_cast<AllenRelation>(r3));
          }
        }
      }
    }
  }
};

const CompositionTable& GetCompositionTable() {
  static const CompositionTable* table = new CompositionTable();
  return *table;
}

}  // namespace

const std::vector<AllenRelation>& Compose(AllenRelation r1,
                                          AllenRelation r2) {
  return GetCompositionTable()
      .entries[static_cast<int>(r1)][static_cast<int>(r2)];
}

bool CompositionAdmits(AllenRelation r1, AllenRelation r2,
                       AllenRelation r3) {
  const std::vector<AllenRelation>& possible = Compose(r1, r2);
  return std::find(possible.begin(), possible.end(), r3) != possible.end();
}

}  // namespace gea::interval
