#ifndef GEA_REL_VALUE_H_
#define GEA_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace gea::rel {

/// The column types supported by the relational substrate. These are the
/// types GEA needs from its host DBMS: integers for counts and identifiers,
/// doubles for normalized expression levels and aggregates, strings for
/// names, plus SQL-style NULL (used for the null gap values of Section
/// 3.2.2).
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// Parses "int" / "double" / "string" / "null".
Result<ValueType> ParseValueType(const std::string& name);

/// A single cell: NULL, int64, double, or string.
///
/// Ordering and equality follow SQL-ish conventions with one deviation kept
/// for determinism: NULL compares equal to NULL and sorts before every
/// non-null value; ints and doubles compare numerically with each other.
/// Comparing a number to a string is an ordering by type tag (numbers sort
/// before strings) so sorting mixed columns is total and deterministic.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors require the matching type.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: ints widen to double. Requires a numeric type.
  double AsNumeric() const;
  bool IsNumeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  /// Three-way comparison; see the class comment for NULL and cross-type
  /// rules. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Renders the value for CSV/reports; NULL renders as "NULL".
  std::string ToString() const;

  /// Parses `text` as `type` ("NULL" or empty parses to NULL for any type).
  static Result<Value> Parse(const std::string& text, ValueType type);

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace gea::rel

#endif  // GEA_REL_VALUE_H_
