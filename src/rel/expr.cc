#include "rel/expr.h"

namespace gea::rel {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

class ComparePredicate : public Predicate {
 public:
  ComparePredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    const Value& v = row[index_];
    if (v.is_null() || literal_.is_null()) return false;
    return ApplyOp(op_, v.Compare(literal_));
  }

  std::string ToString() const override {
    return column_ + " " + CompareOpName(op_) + " " + literal_.ToString();
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
  size_t index_ = 0;
};

class CompareColumnsPredicate : public Predicate {
 public:
  CompareColumnsPredicate(std::string lhs, CompareOp op, std::string rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(lhs_index_, schema.ColumnIndex(lhs_));
    GEA_ASSIGN_OR_RETURN(rhs_index_, schema.ColumnIndex(rhs_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    const Value& a = row[lhs_index_];
    const Value& b = row[rhs_index_];
    if (a.is_null() || b.is_null()) return false;
    return ApplyOp(op_, a.Compare(b));
  }

  std::string ToString() const override {
    return lhs_ + " " + CompareOpName(op_) + " " + rhs_;
  }

 private:
  std::string lhs_;
  CompareOp op_;
  std::string rhs_;
  size_t lhs_index_ = 0;
  size_t rhs_index_ = 0;
};

class IsNullPredicate : public Predicate {
 public:
  IsNullPredicate(std::string column, bool negate)
      : column_(std::move(column)), negate_(negate) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    return row[index_].is_null() != negate_;
  }

  std::string ToString() const override {
    return column_ + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  std::string column_;
  bool negate_;
  size_t index_ = 0;
};

class BetweenPredicate : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    const Value& v = row[index_];
    if (v.is_null()) return false;
    return v.Compare(lo_) >= 0 && v.Compare(hi_) <= 0;
  }

  std::string ToString() const override {
    return column_ + " BETWEEN " + lo_.ToString() + " AND " + hi_.ToString();
  }

 private:
  std::string column_;
  Value lo_;
  Value hi_;
  size_t index_ = 0;
};

class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override {
    for (auto& child : children_) GEA_RETURN_IF_ERROR(child->Bind(schema));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    for (const auto& child : children_) {
      if (!child->EvalBound(row)) return false;
    }
    return true;
  }

  std::string ToString() const override { return Combine(" AND "); }

 protected:
  std::string Combine(const std::string& sep) const {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += sep;
      out += children_[i]->ToString();
    }
    out += ")";
    return out;
  }

  std::vector<PredicatePtr> children_;
};

class OrPredicate : public AndPredicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : AndPredicate(std::move(children)) {}

  bool EvalBound(const Row& row) const override {
    for (const auto& child : children_) {
      if (child->EvalBound(row)) return true;
    }
    return false;
  }

  std::string ToString() const override { return Combine(" OR "); }
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }

  bool EvalBound(const Row& row) const override {
    return !child_->EvalBound(row);
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

class TruePredicate : public Predicate {
 public:
  Status Bind(const Schema&) override { return Status::OK(); }
  bool EvalBound(const Row&) const override { return true; }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr Compare(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparePredicate>(std::move(column), op,
                                            std::move(literal));
}

PredicatePtr CompareColumns(std::string lhs, CompareOp op, std::string rhs) {
  return std::make_unique<CompareColumnsPredicate>(std::move(lhs), op,
                                                   std::move(rhs));
}

PredicatePtr IsNull(std::string column) {
  return std::make_unique<IsNullPredicate>(std::move(column), false);
}

PredicatePtr IsNotNull(std::string column) {
  return std::make_unique<IsNullPredicate>(std::move(column), true);
}

PredicatePtr Between(std::string column, Value lo, Value hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_unique<AndPredicate>(std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_unique<OrPredicate>(std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_unique<NotPredicate>(std::move(child));
}

PredicatePtr True() { return std::make_unique<TruePredicate>(); }

}  // namespace gea::rel
