#include "rel/expr.h"

#include <cstring>

namespace gea::rel {

void Predicate::EvalColumnar(const Table& table, size_t begin, size_t end,
                             uint8_t* out) const {
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = EvalBound(table.GetRow(i)) ? 1 : 0;
  }
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Tight per-op loops over a typed array versus one literal. Each form is
// spelled with only operator< so the three-way semantics of Value::Compare
// (including "incomparable compares equal", which NaN hits for doubles)
// carry over exactly: cmp==0 <=> !(v<l) && !(l<v).
template <typename T, typename L>
void CompareFill(const T* vals, size_t n, L lit, CompareOp op, uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i)
        out[i] = !(static_cast<L>(vals[i]) < lit) &&
                 !(lit < static_cast<L>(vals[i]));
      break;
    case CompareOp::kNe:
      for (size_t i = 0; i < n; ++i)
        out[i] =
            static_cast<L>(vals[i]) < lit || lit < static_cast<L>(vals[i]);
      break;
    case CompareOp::kLt:
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<L>(vals[i]) < lit;
      break;
    case CompareOp::kLe:
      for (size_t i = 0; i < n; ++i)
        out[i] = !(lit < static_cast<L>(vals[i]));
      break;
    case CompareOp::kGt:
      for (size_t i = 0; i < n; ++i) out[i] = lit < static_cast<L>(vals[i]);
      break;
    case CompareOp::kGe:
      for (size_t i = 0; i < n; ++i)
        out[i] = !(static_cast<L>(vals[i]) < lit);
      break;
  }
}

// Zeroes mask slots whose row is NULL (comparisons against NULL are false).
void MaskNulls(const Column& col, size_t begin, size_t end, uint8_t* out) {
  if (col.null_count() == 0) return;
  const uint64_t* words = col.null_words();
  for (size_t i = begin; i < end; ++i) {
    if ((words[i >> 6] >> (i & 63)) & 1) out[i - begin] = 0;
  }
}

// Batch form of `ApplyOp(op, cell.Compare(lit))` for non-null cells of one
// column against a non-null literal; NULL cells come out 0. String columns
// resolve the comparison once per dictionary entry and then map codes, so
// an equality/IN probe over a tag column is one table lookup per row.
void EvalCompareMask(const Column& col, size_t begin, size_t end,
                     CompareOp op, const Value& lit, uint8_t* out) {
  const size_t n = end - begin;
  const bool lit_numeric = lit.IsNumeric();
  switch (col.type()) {
    case ValueType::kInt:
      if (lit.type() == ValueType::kInt) {
        CompareFill(col.int_data() + begin, n, lit.AsInt(), op, out);
      } else if (lit.type() == ValueType::kDouble) {
        CompareFill(col.int_data() + begin, n, lit.AsDouble(), op, out);
      } else {
        std::memset(out, ApplyOp(op, -1) ? 1 : 0, n);  // number < string
      }
      break;
    case ValueType::kDouble:
      if (lit_numeric) {
        CompareFill(col.double_data() + begin, n, lit.AsNumeric(), op, out);
      } else {
        std::memset(out, ApplyOp(op, -1) ? 1 : 0, n);
      }
      break;
    case ValueType::kString:
      if (lit.type() == ValueType::kString) {
        const std::vector<std::string>& dict = col.dict();
        std::vector<uint8_t> verdict(dict.size());
        for (size_t d = 0; d < dict.size(); ++d) {
          const int c = dict[d].compare(lit.AsString());
          verdict[d] = ApplyOp(op, c < 0 ? -1 : (c > 0 ? 1 : 0)) ? 1 : 0;
        }
        const uint32_t* codes = col.code_data() + begin;
        for (size_t i = 0; i < n; ++i) out[i] = verdict[codes[i]];
      } else {
        std::memset(out, ApplyOp(op, 1) ? 1 : 0, n);  // string > number
      }
      break;
    case ValueType::kNull:
      std::memset(out, 0, n);
      return;  // every cell is NULL; nothing to mask
  }
  MaskNulls(col, begin, end, out);
}

class ComparePredicate : public Predicate {
 public:
  ComparePredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    const Value& v = row[index_];
    if (v.is_null() || literal_.is_null()) return false;
    return ApplyOp(op_, v.Compare(literal_));
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    if (literal_.is_null()) {
      std::memset(out, 0, end - begin);
      return;
    }
    EvalCompareMask(table.column(index_), begin, end, op_, literal_, out);
  }

  std::string ToString() const override {
    return column_ + " " + CompareOpName(op_) + " " + literal_.ToString();
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
  size_t index_ = 0;
};

class CompareColumnsPredicate : public Predicate {
 public:
  CompareColumnsPredicate(std::string lhs, CompareOp op, std::string rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(lhs_index_, schema.ColumnIndex(lhs_));
    GEA_ASSIGN_OR_RETURN(rhs_index_, schema.ColumnIndex(rhs_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    const Value& a = row[lhs_index_];
    const Value& b = row[rhs_index_];
    if (a.is_null() || b.is_null()) return false;
    return ApplyOp(op_, a.Compare(b));
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    const Column& a = table.column(lhs_index_);
    const Column& b = table.column(rhs_index_);
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] = (!a.IsNull(i) && !b.IsNull(i) &&
                        ApplyOp(op_, Column::CompareAcross(a, i, b, i)))
                           ? 1
                           : 0;
    }
  }

  std::string ToString() const override {
    return lhs_ + " " + CompareOpName(op_) + " " + rhs_;
  }

 private:
  std::string lhs_;
  CompareOp op_;
  std::string rhs_;
  size_t lhs_index_ = 0;
  size_t rhs_index_ = 0;
};

class IsNullPredicate : public Predicate {
 public:
  IsNullPredicate(std::string column, bool negate)
      : column_(std::move(column)), negate_(negate) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    return row[index_].is_null() != negate_;
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    const Column& col = table.column(index_);
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] = (col.IsNull(i) != negate_) ? 1 : 0;
    }
  }

  std::string ToString() const override {
    return column_ + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  std::string column_;
  bool negate_;
  size_t index_ = 0;
};

class BetweenPredicate : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  Status Bind(const Schema& schema) override {
    GEA_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(column_));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    const Value& v = row[index_];
    if (v.is_null()) return false;
    return v.Compare(lo_) >= 0 && v.Compare(hi_) <= 0;
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    const size_t n = end - begin;
    const Column& col = table.column(index_);
    // NULL bounds follow Value::Compare's rank rule: any non-null cell is
    // > NULL, so a NULL lo passes every non-null cell and a NULL hi fails
    // all of them.
    if (hi_.is_null()) {
      std::memset(out, 0, n);
      return;
    }
    if (lo_.is_null()) {
      std::memset(out, 1, n);
      MaskNulls(col, begin, end, out);
    } else {
      EvalCompareMask(col, begin, end, CompareOp::kGe, lo_, out);
    }
    std::vector<uint8_t> hi_ok(n);
    EvalCompareMask(col, begin, end, CompareOp::kLe, hi_, hi_ok.data());
    for (size_t i = 0; i < n; ++i) out[i] &= hi_ok[i];
  }

  std::string ToString() const override {
    return column_ + " BETWEEN " + lo_.ToString() + " AND " + hi_.ToString();
  }

 private:
  std::string column_;
  Value lo_;
  Value hi_;
  size_t index_ = 0;
};

class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override {
    for (auto& child : children_) GEA_RETURN_IF_ERROR(child->Bind(schema));
    return Status::OK();
  }

  bool EvalBound(const Row& row) const override {
    for (const auto& child : children_) {
      if (!child->EvalBound(row)) return false;
    }
    return true;
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    const size_t n = end - begin;
    if (children_.empty()) {
      std::memset(out, 1, n);
      return;
    }
    children_[0]->EvalColumnar(table, begin, end, out);
    std::vector<uint8_t> child_mask(n);
    for (size_t c = 1; c < children_.size(); ++c) {
      children_[c]->EvalColumnar(table, begin, end, child_mask.data());
      for (size_t i = 0; i < n; ++i) out[i] &= child_mask[i];
    }
  }

  std::string ToString() const override { return Combine(" AND "); }

 protected:
  std::string Combine(const std::string& sep) const {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += sep;
      out += children_[i]->ToString();
    }
    out += ")";
    return out;
  }

  std::vector<PredicatePtr> children_;
};

class OrPredicate : public AndPredicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : AndPredicate(std::move(children)) {}

  bool EvalBound(const Row& row) const override {
    for (const auto& child : children_) {
      if (child->EvalBound(row)) return true;
    }
    return false;
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    const size_t n = end - begin;
    std::memset(out, 0, n);
    std::vector<uint8_t> child_mask(n);
    for (const auto& child : children_) {
      child->EvalColumnar(table, begin, end, child_mask.data());
      for (size_t i = 0; i < n; ++i) out[i] |= child_mask[i];
    }
  }

  std::string ToString() const override { return Combine(" OR "); }
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }

  bool EvalBound(const Row& row) const override {
    return !child_->EvalBound(row);
  }

  void EvalColumnar(const Table& table, size_t begin, size_t end,
                    uint8_t* out) const override {
    child_->EvalColumnar(table, begin, end, out);
    for (size_t i = 0; i < end - begin; ++i) out[i] = out[i] ? 0 : 1;
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

class TruePredicate : public Predicate {
 public:
  Status Bind(const Schema&) override { return Status::OK(); }
  bool EvalBound(const Row&) const override { return true; }
  void EvalColumnar(const Table&, size_t begin, size_t end,
                    uint8_t* out) const override {
    std::memset(out, 1, end - begin);
  }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr Compare(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparePredicate>(std::move(column), op,
                                            std::move(literal));
}

PredicatePtr CompareColumns(std::string lhs, CompareOp op, std::string rhs) {
  return std::make_unique<CompareColumnsPredicate>(std::move(lhs), op,
                                                   std::move(rhs));
}

PredicatePtr IsNull(std::string column) {
  return std::make_unique<IsNullPredicate>(std::move(column), false);
}

PredicatePtr IsNotNull(std::string column) {
  return std::make_unique<IsNullPredicate>(std::move(column), true);
}

PredicatePtr Between(std::string column, Value lo, Value hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_unique<AndPredicate>(std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_unique<OrPredicate>(std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_unique<NotPredicate>(std::move(child));
}

PredicatePtr True() { return std::make_unique<TruePredicate>(); }

}  // namespace gea::rel
