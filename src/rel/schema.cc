#include "rel/schema.h"

#include <unordered_set>

namespace gea::rel {

Result<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  std::unordered_set<std::string> seen;
  for (const ColumnDef& col : columns) {
    if (col.name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!seen.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column name: " + col.name);
    }
  }
  return Schema(std::move(columns));
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  std::optional<size_t> idx = FindColumn(name);
  if (!idx.has_value()) {
    return Status::NotFound("no such column: " + name);
  }
  return *idx;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ':';
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace gea::rel
