#ifndef GEA_REL_INDEX_H_
#define GEA_REL_INDEX_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"

namespace gea::rel {

/// A sorted secondary index over one column of a table: the host-DBMS
/// facility that Section 3.3.2 exploits to accelerate populate()'s huge
/// conjunctive range queries.
///
/// The index materializes (value, row id) pairs sorted by value; range
/// lookups are two binary searches. The index does not track table
/// mutations — rebuild after the table changes.
class SortedIndex {
 public:
  /// Builds an index over `column` of `table`. NULL cells are excluded.
  static Result<SortedIndex> Build(const Table& table,
                                   const std::string& column);

  const std::string& column() const { return column_; }

  /// Row ids whose value v satisfies lo <= v <= hi, in ascending value
  /// order.
  std::vector<size_t> RangeLookup(const Value& lo, const Value& hi) const;

  /// Number of rows in [lo, hi] without materializing them — used by the
  /// populate planner to pick the most selective index first.
  size_t RangeCount(const Value& lo, const Value& hi) const;

  size_t NumEntries() const { return entries_.size(); }

 private:
  struct Entry {
    Value value;
    size_t row_id;
  };

  SortedIndex(std::string column, std::vector<Entry> entries)
      : column_(std::move(column)), entries_(std::move(entries)) {}

  // Index of the first entry with value >= v.
  size_t LowerBound(const Value& v) const;
  // Index of the first entry with value > v.
  size_t UpperBound(const Value& v) const;

  std::string column_;
  std::vector<Entry> entries_;
};

}  // namespace gea::rel

#endif  // GEA_REL_INDEX_H_
