#ifndef GEA_REL_TABLE_IO_H_
#define GEA_REL_TABLE_IO_H_

#include <string>

#include "common/result.h"
#include "rel/table.h"

namespace gea::rel {

/// CSV persistence for relations (the LOAD / EXPORT utilities of Section
/// 4.6.2 and Appendix III.2.1). The header encodes both name and type of
/// each column as "name:type"; NULL cells round-trip as the literal
/// "NULL".

/// Serializes `table` to typed CSV text.
std::string TableToCsv(const Table& table);

/// Parses typed CSV text into a table named `name`.
Result<Table> TableFromCsv(const std::string& name, const std::string& text);

/// File variants.
Status SaveTable(const Table& table, const std::string& path);
Result<Table> LoadTable(const std::string& name, const std::string& path);

}  // namespace gea::rel

#endif  // GEA_REL_TABLE_IO_H_
