#include "rel/value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace gea::rel {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<ValueType> ParseValueType(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "null") return ValueType::kNull;
  return Status::InvalidArgument("unknown value type: " + name);
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

double Value::AsNumeric() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

namespace {

// Rank used to order values of incomparable types: NULL < numbers < strings.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int rank_a = TypeRank(type());
  int rank_b = TypeRank(other.type());
  if (rank_a != rank_b) return rank_a < rank_b ? -1 : 1;
  switch (rank_a) {
    case 0:
      return 0;  // NULL == NULL (deterministic sorting convention)
    case 1: {
      // Compare ints exactly when both are ints, else numerically.
      if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
        int64_t a = AsInt();
        int64_t b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = AsNumeric();
      double b = other.AsNumeric();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const std::string& a = AsString();
      const std::string& b = other.AsString();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      // Shortest round-trippable-ish rendering with stable formatting.
      std::string s = FormatDouble(AsDouble(), 6);
      // Trim trailing zeros but keep one digit after the point.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (last == dot) last = dot + 1;
        s.erase(last + 1);
      }
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

Result<Value> Value::Parse(const std::string& text, ValueType type) {
  // "NULL" always parses as NULL (so a string cell containing the literal
  // word NULL does not round-trip — documented limitation). The empty
  // string is NULL for numeric types but a legitimate empty string value.
  if (text == "NULL" || (text.empty() && type != ValueType::kString)) {
    return Value::Null();
  }
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse int: " + text);
      }
      // strtoll clamps to LLONG_MIN/MAX on overflow; accepting that would
      // silently change the stored value, so it is an error instead.
      if (errno == ERANGE) {
        return Status::InvalidArgument("int out of range: " + text);
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse double: " + text);
      }
      // Overflow ("1e999") turns finite input into infinity — reject it.
      // Gradual underflow to a subnormal or zero keeps the sign and an
      // honest approximation, so that stays accepted.
      if (errno == ERANGE && std::isinf(v)) {
        return Status::InvalidArgument("double out of range: " + text);
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(text);
  }
  return Status::InvalidArgument("bad value type");
}

}  // namespace gea::rel
