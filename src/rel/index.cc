#include "rel/index.h"

#include <algorithm>

namespace gea::rel {

Result<SortedIndex> SortedIndex::Build(const Table& table,
                                       const std::string& column) {
  GEA_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(column));
  std::vector<Entry> entries;
  entries.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const Value v = table.At(r, idx);
    if (v.is_null()) continue;
    entries.push_back({v, r});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.value.Compare(b.value) < 0;
                   });
  return SortedIndex(column, std::move(entries));
}

size_t SortedIndex::LowerBound(const Value& v) const {
  size_t lo = 0;
  size_t hi = entries_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (entries_[mid].value.Compare(v) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t SortedIndex::UpperBound(const Value& v) const {
  size_t lo = 0;
  size_t hi = entries_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (entries_[mid].value.Compare(v) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<size_t> SortedIndex::RangeLookup(const Value& lo,
                                             const Value& hi) const {
  std::vector<size_t> out;
  size_t begin = LowerBound(lo);
  size_t end = UpperBound(hi);
  out.reserve(end > begin ? end - begin : 0);
  for (size_t i = begin; i < end; ++i) out.push_back(entries_[i].row_id);
  return out;
}

size_t SortedIndex::RangeCount(const Value& lo, const Value& hi) const {
  size_t begin = LowerBound(lo);
  size_t end = UpperBound(hi);
  return end > begin ? end - begin : 0;
}

}  // namespace gea::rel
