#ifndef GEA_REL_OPS_H_
#define GEA_REL_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rel/expr.h"
#include "rel/table.h"

namespace gea::rel {

/// Relational algebra extended with aggregation and sorting — exactly the
/// algebra the paper assigns to the extensional world (Section 3.2.4).
/// All operators are pure: they take input tables by const reference and
/// return freshly materialized tables.

/// σ: rows of `input` satisfying `pred`.
Result<Table> Select(const Table& input, const PredicatePtr& pred,
                     const std::string& output_name);

/// π: the named columns, in the given order. Duplicate rows are kept
/// (bag semantics); use Distinct for set semantics.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      const std::string& output_name);

/// Removes duplicate rows.
Result<Table> Distinct(const Table& input, const std::string& output_name);

/// Renames a column.
Result<Table> RenameColumn(const Table& input, const std::string& from,
                           const std::string& to,
                           const std::string& output_name);

/// One sort key: column plus direction.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// ORDER BY: stable multi-key sort.
Result<Table> Sort(const Table& input, const std::vector<SortKey>& keys,
                   const std::string& output_name);

/// First `n` rows.
Result<Table> Limit(const Table& input, size_t n,
                    const std::string& output_name);

/// Equi-join of `left` and `right` on left.`left_key` = right.`right_key`
/// (hash join). Output columns: all of left's, then all of right's except
/// `right_key`; clashing names from the right get a "r_" prefix.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key,
                       const std::string& right_key,
                       const std::string& output_name);

/// Aggregation functions supported by GroupAggregate.
enum class AggFn {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kStdDev,  // population standard deviation, as used by SUMY tables
};

const char* AggFnName(AggFn fn);

/// One aggregate output column.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;       // ignored for kCount
  std::string output_name;  // name of the output column
};

/// GROUP BY `group_columns` computing `aggs`. With empty `group_columns`
/// produces exactly one row over the whole input (NULLs are skipped inside
/// aggregates; COUNT counts rows). Group order is first-seen order.
Result<Table> GroupAggregate(const Table& input,
                             const std::vector<std::string>& group_columns,
                             const std::vector<AggSpec>& aggs,
                             const std::string& output_name);

/// Set operators (set semantics; schemas must be equal).
Result<Table> Union(const Table& a, const Table& b,
                    const std::string& output_name);
Result<Table> Intersect(const Table& a, const Table& b,
                        const std::string& output_name);
Result<Table> Minus(const Table& a, const Table& b,
                    const std::string& output_name);

}  // namespace gea::rel

#endif  // GEA_REL_OPS_H_
