#ifndef GEA_REL_EXPR_H_
#define GEA_REL_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/schema.h"
#include "rel/table.h"
#include "rel/value.h"

namespace gea::rel {

/// Comparison operators usable in selection predicates.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

/// A boolean predicate over rows of a given schema. Predicates are built
/// with the factory functions below and evaluated row-at-a-time; they are
/// the WHERE clauses of the extensional world (Section 3.2.4).
///
/// SQL-style NULL handling: a comparison against NULL is false (except
/// IsNull), so selections silently drop NULL cells, matching how GEA's
/// selections skip null gap values.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Binds column names to indices in `schema`; must be called (directly or
  /// through Eval helpers) before EvalBound.
  virtual Status Bind(const Schema& schema) = 0;

  /// Evaluates on a row of the bound schema.
  virtual bool EvalBound(const Row& row) const = 0;

  /// Batch evaluation: writes 1/0 into out[i - begin] for rows
  /// [begin, end) of `table`, which must match the bound schema. The
  /// default materializes each row and calls EvalBound; the typed
  /// predicates override it with kernels over raw column arrays (no Value
  /// boxing). Results are identical to EvalBound row by row.
  virtual void EvalColumnar(const Table& table, size_t begin, size_t end,
                            uint8_t* out) const;

  /// Human-readable form for lineage metadata.
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::unique_ptr<Predicate>;

/// column <op> literal
PredicatePtr Compare(std::string column, CompareOp op, Value literal);

/// columnA <op> columnB
PredicatePtr CompareColumns(std::string lhs, CompareOp op, std::string rhs);

/// column IS NULL / IS NOT NULL
PredicatePtr IsNull(std::string column);
PredicatePtr IsNotNull(std::string column);

/// lo <= column <= hi (both inclusive); NULL cells fail. This is the range
/// condition populate() evaluates tens of thousands of times (Section
/// 3.3.2).
PredicatePtr Between(std::string column, Value lo, Value hi);

/// Boolean combinators.
PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr Or(std::vector<PredicatePtr> children);
PredicatePtr Not(PredicatePtr child);

/// Always-true predicate.
PredicatePtr True();

}  // namespace gea::rel

#endif  // GEA_REL_EXPR_H_
