#include "rel/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "rel/expr.h"
#include "rel/ops.h"

namespace gea::rel {

namespace {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokenKind {
  kIdentifier,  // bare or double-quoted
  kNumber,
  kString,      // single-quoted
  kSymbol,      // one of , * = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keyword/identifier text, literal value, or symbol
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= sql_.size()) break;
      char c = sql_[pos_];
      if (c == '\'') {
        GEA_ASSIGN_OR_RETURN(Token t, QuotedString());
        out.push_back(std::move(t));
      } else if (c == '"') {
        GEA_ASSIGN_OR_RETURN(Token t, QuotedIdentifier());
        out.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+' || c == '.') {
        out.push_back(Number());
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(Identifier());
      } else {
        GEA_ASSIGN_OR_RETURN(Token t, Symbol());
        out.push_back(std::move(t));
      }
    }
    out.push_back({TokenKind::kEnd, ""});
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
  }

  Result<Token> QuotedString() {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_++];
      if (c == '\'') {
        if (pos_ < sql_.size() && sql_[pos_] == '\'') {
          value += '\'';  // '' escapes a quote
          ++pos_;
        } else {
          return Token{TokenKind::kString, std::move(value)};
        }
      } else {
        value += c;
      }
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Token> QuotedIdentifier() {
    ++pos_;
    std::string value;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_++];
      if (c == '"') return Token{TokenKind::kIdentifier, std::move(value)};
      value += c;
    }
    return Status::InvalidArgument("unterminated quoted identifier");
  }

  Token Number() {
    size_t start = pos_;
    if (sql_[pos_] == '-' || sql_[pos_] == '+') ++pos_;
    while (pos_ < sql_.size() &&
           (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
            ((sql_[pos_] == '-' || sql_[pos_] == '+') &&
             (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return {TokenKind::kNumber, std::string(sql_.substr(start, pos_ - start))};
  }

  Token Identifier() {
    size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      ++pos_;
    }
    return {TokenKind::kIdentifier,
            std::string(sql_.substr(start, pos_ - start))};
  }

  Result<Token> Symbol() {
    char c = sql_[pos_];
    ++pos_;
    switch (c) {
      case ',':
      case '*':
      case '=':
      case '(':
      case ')':
        return Token{TokenKind::kSymbol, std::string(1, c)};
      case '!':
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          ++pos_;
          return Token{TokenKind::kSymbol, "!="};
        }
        return Status::InvalidArgument("stray '!'");
      case '<':
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          ++pos_;
          return Token{TokenKind::kSymbol, "<="};
        }
        if (pos_ < sql_.size() && sql_[pos_] == '>') {
          ++pos_;
          return Token{TokenKind::kSymbol, "!="};  // <> is !=
        }
        return Token{TokenKind::kSymbol, "<"};
      case '>':
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          ++pos_;
          return Token{TokenKind::kSymbol, ">="};
        }
        return Token{TokenKind::kSymbol, ">"};
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
    }
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Parser / executor
// ---------------------------------------------------------------------

class Parser {
 public:
  Parser(const Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  // One SELECT-list entry: a plain column, or an aggregate call.
  struct SelectItem {
    bool is_aggregate = false;
    AggFn fn = AggFn::kCount;
    std::string column;       // aggregate argument or the plain column
    std::string output_name;  // rendered name or the AS alias
  };

  Result<Table> Run() {
    GEA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    bool star = false;
    std::vector<SelectItem> items;
    bool any_aggregate = false;
    if (PeekSymbol("*")) {
      Advance();
      star = true;
    } else {
      while (true) {
        GEA_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        any_aggregate = any_aggregate || item.is_aggregate;
        items.push_back(std::move(item));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }
    GEA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    GEA_ASSIGN_OR_RETURN(std::string table_name, ExpectIdentifier());
    // By-value materialization: computed stat views rebuild fresh without
    // touching the catalog's shared cache, so concurrent queries (the
    // serve layer runs read-only SQL from many workers) never race on it.
    GEA_ASSIGN_OR_RETURN(Table table, catalog_.MaterializeTable(table_name));

    // WHERE: full boolean expression, OR binds looser than AND.
    PredicatePtr where;
    if (PeekKeyword("WHERE")) {
      Advance();
      GEA_ASSIGN_OR_RETURN(where, OrExpr());
    }

    // GROUP BY
    std::vector<std::string> group_columns;
    bool has_group_by = false;
    if (PeekKeyword("GROUP")) {
      Advance();
      GEA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      has_group_by = true;
      while (true) {
        GEA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        group_columns.push_back(std::move(col));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }

    // ORDER BY
    std::vector<SortKey> sort_keys;
    if (PeekKeyword("ORDER")) {
      Advance();
      GEA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SortKey key;
        GEA_ASSIGN_OR_RETURN(key.column, ExpectIdentifier());
        if (PeekKeyword("ASC")) {
          Advance();
        } else if (PeekKeyword("DESC")) {
          Advance();
          key.ascending = false;
        }
        sort_keys.push_back(std::move(key));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }

    // LIMIT
    std::optional<size_t> limit;
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (tokens_[pos_].kind != TokenKind::kNumber) {
        return Status::InvalidArgument("LIMIT expects a number");
      }
      long long n = std::atoll(tokens_[pos_].text.c_str());
      if (n < 0) return Status::InvalidArgument("LIMIT must be >= 0");
      limit = static_cast<size_t>(n);
      Advance();
    }

    if (tokens_[pos_].kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing input: " +
                                     tokens_[pos_].text);
    }

    // Semantic checks for aggregation.
    const bool aggregated = any_aggregate || has_group_by;
    if (aggregated) {
      if (star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with GROUP BY / aggregates");
      }
      for (const SelectItem& item : items) {
        if (item.is_aggregate) continue;
        if (std::find(group_columns.begin(), group_columns.end(),
                      item.column) == group_columns.end()) {
          return Status::InvalidArgument(
              "column '" + item.column +
              "' must appear in GROUP BY or inside an aggregate");
        }
      }
    }

    // Execute: WHERE -> (GROUP BY + aggregates) -> ORDER BY -> LIMIT ->
    // projection.
    Table result = std::move(table);
    if (where != nullptr) {
      GEA_ASSIGN_OR_RETURN(result, Select(result, where, "query"));
    }
    if (aggregated) {
      std::vector<AggSpec> aggs;
      for (const SelectItem& item : items) {
        if (!item.is_aggregate) continue;
        aggs.push_back({item.fn, item.column, item.output_name});
      }
      GEA_ASSIGN_OR_RETURN(
          result, GroupAggregate(result, group_columns, aggs, "query"));
    }
    if (!sort_keys.empty()) {
      GEA_ASSIGN_OR_RETURN(result, Sort(result, sort_keys, "query"));
    }
    if (limit.has_value()) {
      GEA_ASSIGN_OR_RETURN(result, Limit(result, *limit, "query"));
    }
    if (!star) {
      // Project to the select list's order and names.
      std::vector<std::string> names;
      for (const SelectItem& item : items) {
        names.push_back(item.is_aggregate ? item.output_name : item.column);
      }
      GEA_ASSIGN_OR_RETURN(result, Project(result, names, "query"));
    }
    result.set_name("query");
    return result;
  }

 private:
  void Advance() { ++pos_; }

  bool PeekKeyword(const std::string& keyword) const {
    return tokens_[pos_].kind == TokenKind::kIdentifier &&
           ToLower(tokens_[pos_].text) == ToLower(keyword);
  }

  bool PeekSymbol(const std::string& symbol) const {
    return tokens_[pos_].kind == TokenKind::kSymbol &&
           tokens_[pos_].text == symbol;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::InvalidArgument("expected " + keyword + ", got '" +
                                     tokens_[pos_].text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    GEA_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    const std::string upper = [&first] {
      std::string u = first;
      for (char& c : u) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return u;
    }();
    bool known_aggregate = true;
    if (upper == "COUNT") {
      item.fn = AggFn::kCount;
    } else if (upper == "SUM") {
      item.fn = AggFn::kSum;
    } else if (upper == "AVG") {
      item.fn = AggFn::kAvg;
    } else if (upper == "MIN") {
      item.fn = AggFn::kMin;
    } else if (upper == "MAX") {
      item.fn = AggFn::kMax;
    } else if (upper == "STDDEV") {
      item.fn = AggFn::kStdDev;
    } else {
      known_aggregate = false;
    }
    if (known_aggregate && PeekSymbol("(")) {
      Advance();
      item.is_aggregate = true;
      if (item.fn == AggFn::kCount && PeekSymbol("*")) {
        Advance();
        item.output_name = "count";
      } else {
        GEA_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        item.output_name = std::string(AggFnName(item.fn)) + "_" +
                           item.column;
      }
      if (!PeekSymbol(")")) {
        return Status::InvalidArgument("expected ')' after aggregate");
      }
      Advance();
    } else {
      item.column = std::move(first);
      item.output_name = item.column;
    }
    if (PeekKeyword("AS")) {
      Advance();
      GEA_ASSIGN_OR_RETURN(item.output_name, ExpectIdentifier());
      if (!item.is_aggregate) {
        return Status::InvalidArgument(
            "AS aliases are supported on aggregates only");
      }
    }
    return item;
  }

  Result<std::string> ExpectIdentifier() {
    if (tokens_[pos_].kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected an identifier, got '" +
                                     tokens_[pos_].text + "'");
    }
    std::string text = tokens_[pos_].text;
    Advance();
    return text;
  }

  Result<Value> Literal() {
    const Token& t = tokens_[pos_];
    switch (t.kind) {
      case TokenKind::kNumber: {
        Advance();
        // Integral unless it carries a point or exponent.
        if (t.text.find_first_of(".eE") == std::string::npos) {
          return Value::Int(std::atoll(t.text.c_str()));
        }
        return Value::Double(std::strtod(t.text.c_str(), nullptr));
      }
      case TokenKind::kString: {
        Advance();
        return Value::String(t.text);
      }
      case TokenKind::kIdentifier:
        if (ToLower(t.text) == "null") {
          Advance();
          return Value::Null();
        }
        [[fallthrough]];
      default:
        return Status::InvalidArgument("expected a literal, got '" + t.text +
                                       "'");
    }
  }

  // or_expr := and_expr (OR and_expr)*
  Result<PredicatePtr> OrExpr() {
    std::vector<PredicatePtr> terms;
    GEA_ASSIGN_OR_RETURN(PredicatePtr first, AndExpr());
    terms.push_back(std::move(first));
    while (PeekKeyword("OR")) {
      Advance();
      GEA_ASSIGN_OR_RETURN(PredicatePtr next, AndExpr());
      terms.push_back(std::move(next));
    }
    if (terms.size() == 1) return std::move(terms.front());
    return Or(std::move(terms));
  }

  // and_expr := primary (AND primary)*. BETWEEN's interior AND is consumed
  // inside Condition(), so the AND seen here is always the conjunction.
  Result<PredicatePtr> AndExpr() {
    std::vector<PredicatePtr> terms;
    GEA_ASSIGN_OR_RETURN(PredicatePtr first, PrimaryCondition());
    terms.push_back(std::move(first));
    while (PeekKeyword("AND")) {
      Advance();
      GEA_ASSIGN_OR_RETURN(PredicatePtr next, PrimaryCondition());
      terms.push_back(std::move(next));
    }
    if (terms.size() == 1) return std::move(terms.front());
    return And(std::move(terms));
  }

  // primary := '(' or_expr ')' | condition
  Result<PredicatePtr> PrimaryCondition() {
    if (PeekSymbol("(")) {
      Advance();
      GEA_ASSIGN_OR_RETURN(PredicatePtr inner, OrExpr());
      if (!PeekSymbol(")")) {
        return Status::InvalidArgument("expected ')' to close condition group");
      }
      Advance();
      return inner;
    }
    return Condition();
  }

  Result<PredicatePtr> Condition() {
    GEA_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    // IS [NOT] NULL
    if (PeekKeyword("IS")) {
      Advance();
      bool negated = false;
      if (PeekKeyword("NOT")) {
        Advance();
        negated = true;
      }
      if (!PeekKeyword("NULL")) {
        return Status::InvalidArgument("expected NULL after IS [NOT]");
      }
      Advance();
      return negated ? IsNotNull(column) : IsNull(column);
    }
    // BETWEEN lo AND hi
    if (PeekKeyword("BETWEEN")) {
      Advance();
      GEA_ASSIGN_OR_RETURN(Value lo, Literal());
      GEA_RETURN_IF_ERROR(ExpectKeyword("AND"));
      GEA_ASSIGN_OR_RETURN(Value hi, Literal());
      return Between(column, std::move(lo), std::move(hi));
    }
    // IN (literal, literal, ...) — sugar for an OR of equalities.
    if (PeekKeyword("IN")) {
      Advance();
      if (!PeekSymbol("(")) {
        return Status::InvalidArgument("expected '(' after IN");
      }
      Advance();
      std::vector<PredicatePtr> options;
      while (true) {
        GEA_ASSIGN_OR_RETURN(Value v, Literal());
        options.push_back(Compare(column, CompareOp::kEq, std::move(v)));
        if (!PeekSymbol(",")) break;
        Advance();
      }
      if (!PeekSymbol(")")) {
        return Status::InvalidArgument("expected ')' to close IN list");
      }
      Advance();
      if (options.size() == 1) return std::move(options.front());
      return Or(std::move(options));
    }
    // column <op> literal
    if (tokens_[pos_].kind != TokenKind::kSymbol) {
      return Status::InvalidArgument("expected a comparison operator");
    }
    const std::string op = tokens_[pos_].text;
    Advance();
    GEA_ASSIGN_OR_RETURN(Value literal, Literal());
    CompareOp compare;
    if (op == "=") {
      compare = CompareOp::kEq;
    } else if (op == "!=") {
      compare = CompareOp::kNe;
    } else if (op == "<") {
      compare = CompareOp::kLt;
    } else if (op == "<=") {
      compare = CompareOp::kLe;
    } else if (op == ">") {
      compare = CompareOp::kGt;
    } else if (op == ">=") {
      compare = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator: " + op);
    }
    return Compare(column, compare, std::move(literal));
  }

  const Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Table> ExecuteQuery(const Catalog& catalog, const std::string& sql) {
  GEA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenizer(sql).Run());
  return Parser(catalog, std::move(tokens)).Run();
}

}  // namespace gea::rel
