#ifndef GEA_REL_TABLE_H_
#define GEA_REL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace gea::rel {

/// A row is one value per schema column.
using Row = std::vector<Value>;

/// An in-memory relation: a name, a schema, and a bag of rows.
///
/// This is the extensional world's storage substrate (Section 3.1.1): ENUM
/// tables, library metadata, and the auxiliary genomic databases are all
/// instances of this class. Row order is insertion order; operators that
/// need set semantics (union/minus/intersect) deduplicate explicitly.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends `row`, checking arity and per-column types (NULL is accepted
  /// in any column).
  Status AppendRow(Row row);

  /// Appends without validation; caller guarantees the row is well-formed.
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Cell accessor with no bounds checking.
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  /// Cell accessor by column name.
  Result<Value> Get(size_t row, const std::string& column) const;

  void Clear() { rows_.clear(); }

  /// Renders a fixed-width textual view of the first `max_rows` rows,
  /// suitable for reports and examples.
  std::string ToText(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace gea::rel

#endif  // GEA_REL_TABLE_H_
