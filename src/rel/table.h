#ifndef GEA_REL_TABLE_H_
#define GEA_REL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/column.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace gea::rel {

/// A row is one value per schema column.
using Row = std::vector<Value>;

/// An in-memory relation: a name, a schema, and typed column vectors.
///
/// This is the extensional world's storage substrate (Section 3.1.1): ENUM
/// tables, library metadata, and the auxiliary genomic databases are all
/// instances of this class. Row order is insertion order; operators that
/// need set semantics (union/minus/intersect) deduplicate explicitly.
///
/// Storage is columnar (one `Column` per schema entry — contiguous typed
/// vectors, null bitmaps, dictionary-coded strings) while the logical API
/// stays row-shaped: `AppendRow` takes a `Row`, `At`/`GetRow` materialize
/// boxed `Value`s on demand. Batch kernels read `column(c)` raw views
/// instead of materializing cells.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  /// Materializes row `i` as boxed Values. O(columns) with a string copy
  /// per string cell — fine for spill paths, wrong inside hot loops (read
  /// `column(c)` there).
  Row GetRow(size_t i) const;

  /// Appends `row`, checking arity and per-column types (NULL is accepted
  /// in any column).
  Status AppendRow(Row row);

  /// Appends without validation; caller guarantees the row is well-formed.
  void AppendRowUnchecked(const Row& row);

  /// Cell accessor with no bounds checking; materializes the boxed Value.
  Value At(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// Cell accessor by column name.
  Result<Value> Get(size_t row, const std::string& column) const;

  /// Physical column view for batch kernels.
  const Column& column(size_t c) const { return columns_[c]; }

  /// Bulk-appends rows `rows[0..n)` of `src`, which must have a
  /// positionally compatible schema (same column types). Gathers column by
  /// column, adopting string dictionaries where possible.
  void GatherAppendRows(const Table& src, const uint32_t* rows, size_t n);

  void Reserve(size_t rows);
  void Clear();

  /// Adopts pre-built columns (binary codec decode path). `columns` must
  /// match `schema` positionally and all hold `num_rows` rows.
  static Table FromColumns(std::string name, Schema schema,
                           std::vector<Column> columns, size_t num_rows);

  /// Renders a fixed-width textual view of the first `max_rows` rows,
  /// suitable for reports and examples.
  std::string ToText(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace gea::rel

#endif  // GEA_REL_TABLE_H_
