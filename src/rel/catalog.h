#ifndef GEA_REL_CATALOG_H_
#define GEA_REL_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"

namespace gea::rel {

/// The table registry of the analysis database. Mirrors the roles the
/// thesis assigns to its DBMS catalog: it owns every named relation (the
/// SAGE base tables, tissue-type ENUM tables, SUMY/GAP/top-gap tables, the
/// auxiliary metadata relations) and implements the redundancy check of
/// Section 4.4.5.2: creating a table that already exists fails with
/// AlreadyExists unless `replace` is requested.
///
/// Besides stored tables the catalog holds **computed tables**: read-only
/// relations materialized from a builder function on every GetTable()
/// call, the pg_stat_* idiom. The SQL layer resolves FROM through
/// GetTable(), so a query over a computed table always sees live data.
class Catalog {
 public:
  /// Builds one materialization of a computed table. Must return a table
  /// whose name() matches the registered name.
  using TableBuilder = std::function<Table()>;

  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers `table` under its own name. Fails with AlreadyExists when a
  /// table of that name exists and `replace` is false (the caller is
  /// expected to surface this to the user as the Figure 4.28 dialog).
  Status CreateTable(Table table, bool replace = false);

  /// Registers a computed (view-style) table: GetTable(name) re-runs
  /// `builder` and returns the fresh materialization. Fails with
  /// AlreadyExists when the name is taken by a stored or computed table
  /// and `replace` is false. Computed tables are read-only:
  /// GetMutableTable on one fails with FailedPrecondition.
  Status RegisterComputed(const std::string& name, TableBuilder builder,
                          bool replace = false);

  bool HasTable(const std::string& name) const;

  /// True when `name` names a computed (read-only) table.
  bool IsComputed(const std::string& name) const;

  /// Borrowed pointer. For stored tables: valid until the table is
  /// dropped or replaced. For computed tables: the builder runs and the
  /// result is cached per name, so the pointer is valid until the next
  /// GetTable() of the same name (or drop). NOT safe for concurrent
  /// callers reading the same computed table — use MaterializeTable()
  /// from multi-threaded readers.
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  /// A by-value materialization of `name`. Stored tables are copied;
  /// computed tables run their builder without touching the shared cache,
  /// so concurrent MaterializeTable() calls over the same view never
  /// invalidate each other. The serve layer's read-only query path uses
  /// this exclusively.
  Result<Table> MaterializeTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Drops every table, stored and computed: the "initialize database"
  /// operation of Appendix III.2.1.
  void Initialize();

  /// Names of all registered tables (stored + computed), sorted.
  std::vector<std::string> TableNames() const;

  /// A deep copy: stored tables are copied, computed builders are shared
  /// (std::function copy), the materialization cache starts empty. The
  /// MVCC layer clones the catalog into each published epoch so frozen
  /// snapshots can materialize views concurrently with the live catalog.
  Catalog Clone() const;

  /// Approximate heap footprint of the stored tables (computed views
  /// materialize on demand and are not counted). Feeds the epoch
  /// retired-bytes accounting.
  uint64_t ApproxBytes() const;

  size_t NumTables() const { return tables_.size() + computed_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, TableBuilder> computed_;
  // Last materialization per computed table; mutable so the const
  // GetTable() can refresh it (caching is bookkeeping, not state).
  mutable std::map<std::string, std::unique_ptr<Table>> computed_cache_;
};

}  // namespace gea::rel

#endif  // GEA_REL_CATALOG_H_
