#ifndef GEA_REL_CATALOG_H_
#define GEA_REL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"

namespace gea::rel {

/// The table registry of the analysis database. Mirrors the roles the
/// thesis assigns to its DBMS catalog: it owns every named relation (the
/// SAGE base tables, tissue-type ENUM tables, SUMY/GAP/top-gap tables, the
/// auxiliary metadata relations) and implements the redundancy check of
/// Section 4.4.5.2: creating a table that already exists fails with
/// AlreadyExists unless `replace` is requested.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers `table` under its own name. Fails with AlreadyExists when a
  /// table of that name exists and `replace` is false (the caller is
  /// expected to surface this to the user as the Figure 4.28 dialog).
  Status CreateTable(Table table, bool replace = false);

  bool HasTable(const std::string& name) const;

  /// Borrowed pointer, valid until the table is dropped or replaced.
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  Status DropTable(const std::string& name);

  /// Drops every table: the "initialize database" operation of
  /// Appendix III.2.1.
  void Initialize();

  /// Names of all registered tables, sorted.
  std::vector<std::string> TableNames() const;

  size_t NumTables() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace gea::rel

#endif  // GEA_REL_CATALOG_H_
