#include "rel/catalog.h"

#include <algorithm>

namespace gea::rel {

Status Catalog::CreateTable(Table table, bool replace) {
  const std::string name = table.name();
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (computed_.count(name) > 0) {
    if (!replace) {
      return Status::AlreadyExists("a table already exists: " + name);
    }
    computed_.erase(name);
    computed_cache_.erase(name);
  }
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    if (!replace) {
      return Status::AlreadyExists("a table already exists: " + name);
    }
    it->second = std::make_unique<Table>(std::move(table));
    return Status::OK();
  }
  tables_.emplace(name, std::make_unique<Table>(std::move(table)));
  return Status::OK();
}

Status Catalog::RegisterComputed(const std::string& name, TableBuilder builder,
                                 bool replace) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("computed table needs a builder: " + name);
  }
  if (!replace && (tables_.count(name) > 0 || computed_.count(name) > 0)) {
    return Status::AlreadyExists("a table already exists: " + name);
  }
  tables_.erase(name);
  computed_cache_.erase(name);
  computed_[name] = std::move(builder);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0 || computed_.count(name) > 0;
}

bool Catalog::IsComputed(const std::string& name) const {
  return computed_.count(name) > 0;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto computed = computed_.find(name);
  if (computed != computed_.end()) {
    std::unique_ptr<Table>& slot = computed_cache_[name];
    slot = std::make_unique<Table>(computed->second());
    return static_cast<const Table*>(slot.get());
  }
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table> Catalog::MaterializeTable(const std::string& name) const {
  auto computed = computed_.find(name);
  if (computed != computed_.end()) {
    // Run the builder into a local — deliberately no computed_cache_
    // write, so concurrent readers of the same view cannot race or see a
    // borrowed pointer invalidated underneath them.
    return computed->second();
  }
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return Table(*it->second);
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  if (computed_.count(name) > 0) {
    return Status::FailedPrecondition("computed table is read-only: " + name);
  }
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (computed_.erase(name) > 0) {
    computed_cache_.erase(name);
    return Status::OK();
  }
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

void Catalog::Initialize() {
  tables_.clear();
  computed_.clear();
  computed_cache_.clear();
}

Catalog Catalog::Clone() const {
  Catalog copy;
  for (const auto& [name, table] : tables_) {
    copy.tables_.emplace(name, std::make_unique<Table>(*table));
  }
  copy.computed_ = computed_;
  return copy;
}

uint64_t Catalog::ApproxBytes() const {
  // Coarse estimate: 16 bytes per cell covers the typed column storage
  // plus null bitmap and dictionary overhead without walking every
  // column. Reclamation accounting wants magnitude, not exactness.
  uint64_t bytes = 0;
  for (const auto& [name, table] : tables_) {
    bytes += 16u * table->NumRows() * std::max<size_t>(1, table->NumColumns());
  }
  return bytes;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size() + computed_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  for (const auto& [name, builder] : computed_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace gea::rel
