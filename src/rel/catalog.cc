#include "rel/catalog.h"

namespace gea::rel {

Status Catalog::CreateTable(Table table, bool replace) {
  const std::string name = table.name();
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    if (!replace) {
      return Status::AlreadyExists("a table already exists: " + name);
    }
    it->second = std::make_unique<Table>(std::move(table));
    return Status::OK();
  }
  tables_.emplace(name, std::make_unique<Table>(std::move(table)));
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

void Catalog::Initialize() { tables_.clear(); }

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace gea::rel
