#ifndef GEA_REL_SQL_H_
#define GEA_REL_SQL_H_

#include <string>

#include "common/result.h"
#include "rel/catalog.h"
#include "rel/table.h"

namespace gea::rel {

/// A small SQL-style query interface over the catalog — the stand-in for
/// the SQL the thesis issues to DB2 through JDBC. Supported grammar:
///
///   SELECT <select_item [, select_item ...] | *>
///   FROM <table>
///   [WHERE <where_expr>]
///   [GROUP BY <column> [, <column>] ...]
///   [ORDER BY <column> [ASC|DESC] [, <column> [ASC|DESC]] ...]
///   [LIMIT <n>]
///
///   select_item :=
///       <column>
///     | COUNT(*) | SUM(col) | AVG(col) | MIN(col) | MAX(col) | STDDEV(col)
///       [AS <name>]
///
///   where_expr := and_expr [OR and_expr] ...      -- OR binds loosest
///   and_expr   := primary [AND primary] ...       -- AND binds tighter
///   primary    := ( where_expr ) | condition
///
///   condition :=
///       <column> <op> <literal>      op in { =, !=, <>, <, <=, >, >= }
///     | <column> BETWEEN <literal> AND <literal>
///     | <column> IN ( <literal> [, <literal>] ... )
///     | <column> IS NULL
///     | <column> IS NOT NULL
///
/// Literals are integers, doubles, single-quoted strings ('' escapes a
/// quote) or NULL. Keywords are case-insensitive; identifiers are
/// case-sensitive and may be double-quoted to include spaces. AND binds
/// tighter than OR, so `a = 1 OR b = 2 AND c = 3` selects rows matching
/// `a = 1` or matching both `b = 2` and `c = 3`; parentheses override.
/// IN desugars to an OR of equalities; an empty IN list is an error.
/// Aggregate select items require either a GROUP BY clause or an
/// all-aggregate select list (a global aggregate); plain columns in an
/// aggregated query must appear in GROUP BY. The result is a fresh
/// materialized table named "query". FROM materializes the table by value
/// (Catalog::MaterializeTable), so queries are safe to run concurrently,
/// including over computed stat views.
Result<Table> ExecuteQuery(const Catalog& catalog, const std::string& sql);

}  // namespace gea::rel

#endif  // GEA_REL_SQL_H_
