#ifndef GEA_REL_SQL_H_
#define GEA_REL_SQL_H_

#include <string>

#include "common/result.h"
#include "rel/catalog.h"
#include "rel/table.h"

namespace gea::rel {

/// A small SQL-style query interface over the catalog — the stand-in for
/// the SQL the thesis issues to DB2 through JDBC. Supported grammar:
///
///   SELECT <select_item [, select_item ...] | *>
///   FROM <table>
///   [WHERE <condition> [AND <condition>] ...]
///   [GROUP BY <column> [, <column>] ...]
///   [ORDER BY <column> [ASC|DESC] [, <column> [ASC|DESC]] ...]
///   [LIMIT <n>]
///
///   select_item :=
///       <column>
///     | COUNT(*) | SUM(col) | AVG(col) | MIN(col) | MAX(col) | STDDEV(col)
///       [AS <name>]
///
///   condition :=
///       <column> <op> <literal>      op in { =, !=, <>, <, <=, >, >= }
///     | <column> BETWEEN <literal> AND <literal>
///     | <column> IS NULL
///     | <column> IS NOT NULL
///
/// Literals are integers, doubles, single-quoted strings ('' escapes a
/// quote) or NULL. Keywords are case-insensitive; identifiers are
/// case-sensitive and may be double-quoted to include spaces. WHERE
/// conditions combine with AND only (the conjunctive selections GEA
/// issues). Aggregate select items require either a GROUP BY clause or an
/// all-aggregate select list (a global aggregate); plain columns in an
/// aggregated query must appear in GROUP BY. The result is a fresh
/// materialized table named "query".
Result<Table> ExecuteQuery(const Catalog& catalog, const std::string& sql);

}  // namespace gea::rel

#endif  // GEA_REL_SQL_H_
