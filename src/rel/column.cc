#include "rel/column.h"

#include <utility>

namespace gea::rel {

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt:
      return Value::Int(ints_[row]);
    case ValueType::kDouble:
      return Value::Double(doubles_[row]);
    case ValueType::kString:
      return Value::String(dict_[codes_[row]]);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kInt:
      if (v.IsNumeric()) {
        AppendInt(v.type() == ValueType::kInt
                      ? v.AsInt()
                      : static_cast<int64_t>(v.AsDouble()));
        return;
      }
      break;
    case ValueType::kDouble:
      if (v.IsNumeric()) {
        AppendDouble(v.AsNumeric());
        return;
      }
      break;
    case ValueType::kString:
      if (v.type() == ValueType::kString) {
        AppendString(v.AsString());
        return;
      }
      break;
    case ValueType::kNull:
      break;
  }
  AppendNull();
}

void Column::AppendNull() {
  GrowBitmap();
  switch (type_) {
    case ValueType::kInt:
      ints_.push_back(0);
      obs::AccountAllocation(sizeof(int64_t));
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      obs::AccountAllocation(sizeof(double));
      break;
    case ValueType::kString:
      codes_.push_back(0);
      obs::AccountAllocation(sizeof(uint32_t));
      break;
    case ValueType::kNull:
      break;
  }
  MarkNull(size_);
  ++size_;
}

void Column::AppendInt(int64_t v) {
  GrowBitmap();
  ints_.push_back(v);
  obs::AccountAllocation(sizeof(int64_t));
  ++size_;
}

void Column::AppendDouble(double v) {
  GrowBitmap();
  doubles_.push_back(v);
  obs::AccountAllocation(sizeof(double));
  ++size_;
}

void Column::AppendString(const std::string& v) {
  GrowBitmap();
  codes_.push_back(Intern(v));
  obs::AccountAllocation(sizeof(uint32_t));
  ++size_;
}

uint32_t Column::Intern(const std::string& s) {
  auto it = dict_index_.find(s);
  if (it != dict_index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(dict_.size());
  dict_.push_back(s);
  dict_index_.emplace(s, code);
  obs::AccountAllocation(s.size());
  return code;
}

void Column::GatherAppend(const Column& src, const uint32_t* rows, size_t n) {
  Reserve(size_ + n);
  if (type_ == ValueType::kString && size_ == 0 && dict_.empty()) {
    // Adopt the source dictionary so codes copy without re-interning.
    dict_ = src.dict_;
    dict_index_ = src.dict_index_;
    if (obs::MemoryAccountingActive()) {
      uint64_t bytes = n * sizeof(uint32_t);
      for (const std::string& s : dict_) bytes += s.size();
      obs::AccountAllocation(bytes);
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = rows[i];
      GrowBitmap();
      codes_.push_back(src.codes_[r]);
      if (src.IsNull(r)) MarkNull(size_);
      ++size_;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows[i];
    if (src.IsNull(r)) {
      AppendNull();
      continue;
    }
    switch (type_) {
      case ValueType::kInt:
        AppendInt(src.ints_[r]);
        break;
      case ValueType::kDouble:
        AppendDouble(src.doubles_[r]);
        break;
      case ValueType::kString:
        AppendString(src.dict_[src.codes_[r]]);
        break;
      case ValueType::kNull:
        AppendNull();
        break;
    }
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kInt:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      codes_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
  null_words_.reserve(NullWordsFor(n));
}

void Column::Clear() {
  if (obs::MemoryAccountingActive()) obs::AccountFree(PayloadBytes());
  size_ = 0;
  null_count_ = 0;
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  dict_.clear();
  dict_index_.clear();
  null_words_.clear();
}

uint64_t Column::PayloadBytes() const {
  uint64_t bytes = ints_.size() * sizeof(int64_t) +
                   doubles_.size() * sizeof(double) +
                   codes_.size() * sizeof(uint32_t) +
                   null_words_.size() * sizeof(uint64_t);
  for (const std::string& s : dict_) bytes += s.size();
  return bytes;
}

int Column::CompareAcross(const Column& a, size_t ra, const Column& b,
                          size_t rb) {
  const bool an = a.IsNull(ra);
  const bool bn = b.IsNull(rb);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  // Both non-null. Numeric types compare numerically with each other;
  // numbers sort before strings (Value::Compare's type-tag rule).
  const bool a_num =
      a.type_ == ValueType::kInt || a.type_ == ValueType::kDouble;
  const bool b_num =
      b.type_ == ValueType::kInt || b.type_ == ValueType::kDouble;
  if (a_num && b_num) {
    if (a.type_ == ValueType::kInt && b.type_ == ValueType::kInt) {
      const int64_t x = a.ints_[ra];
      const int64_t y = b.ints_[rb];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.type_ == ValueType::kInt
                         ? static_cast<double>(a.ints_[ra])
                         : a.doubles_[ra];
    const double y = b.type_ == ValueType::kInt
                         ? static_cast<double>(b.ints_[rb])
                         : b.doubles_[rb];
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a_num != b_num) return a_num ? -1 : 1;
  const int c = a.dict_[a.codes_[ra]].compare(b.dict_[b.codes_[rb]]);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

void Column::MarkNull(size_t row) {
  null_words_[row >> 6] |= uint64_t{1} << (row & 63);
  ++null_count_;
}

void Column::RebuildDictIndex() {
  dict_index_.clear();
  dict_index_.reserve(dict_.size());
  for (uint32_t i = 0; i < dict_.size(); ++i) dict_index_.emplace(dict_[i], i);
}

Column Column::FromRawInts(std::vector<int64_t> vals,
                           std::vector<uint64_t> nulls, size_t n) {
  Column c(ValueType::kInt);
  c.ints_ = std::move(vals);
  c.null_words_ = std::move(nulls);
  c.size_ = n;
  c.null_count_ = 0;
  for (uint64_t w : c.null_words_) c.null_count_ += __builtin_popcountll(w);
  if (obs::MemoryAccountingActive()) obs::AccountAllocation(c.PayloadBytes());
  return c;
}

Column Column::FromRawDoubles(std::vector<double> vals,
                              std::vector<uint64_t> nulls, size_t n) {
  Column c(ValueType::kDouble);
  c.doubles_ = std::move(vals);
  c.null_words_ = std::move(nulls);
  c.size_ = n;
  c.null_count_ = 0;
  for (uint64_t w : c.null_words_) c.null_count_ += __builtin_popcountll(w);
  if (obs::MemoryAccountingActive()) obs::AccountAllocation(c.PayloadBytes());
  return c;
}

Column Column::FromRawStrings(std::vector<std::string> dict,
                              std::vector<uint32_t> codes,
                              std::vector<uint64_t> nulls, size_t n) {
  Column c(ValueType::kString);
  c.dict_ = std::move(dict);
  c.codes_ = std::move(codes);
  c.null_words_ = std::move(nulls);
  c.size_ = n;
  c.null_count_ = 0;
  for (uint64_t w : c.null_words_) c.null_count_ += __builtin_popcountll(w);
  c.RebuildDictIndex();
  if (obs::MemoryAccountingActive()) obs::AccountAllocation(c.PayloadBytes());
  return c;
}

Column Column::FromRawNulls(size_t n) {
  Column c(ValueType::kNull);
  c.null_words_.assign(NullWordsFor(n), 0);
  c.size_ = 0;
  for (size_t i = 0; i < n; ++i) {
    c.null_words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  c.size_ = n;
  c.null_count_ = n;
  if (obs::MemoryAccountingActive()) obs::AccountAllocation(c.PayloadBytes());
  return c;
}

}  // namespace gea::rel
