#ifndef GEA_REL_SCHEMA_H_
#define GEA_REL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/value.h"

namespace gea::rel {

/// A named, typed column of a relation.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns. Column names are unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  /// Builds a schema, failing on duplicate column names.
  static Result<Schema> Create(std::vector<ColumnDef> columns);

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of column `name`, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Index of column `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  /// "name:type, name:type, ..."
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace gea::rel

#endif  // GEA_REL_SCHEMA_H_
