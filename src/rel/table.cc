#include "rel/table.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace gea::rel {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.NumColumns());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    columns_.emplace_back(schema_.column(c).type);
  }
}

Row Table::GetRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const Column& col : columns_) row.push_back(col.GetValue(i));
  return row;
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" + name_ +
        "' has " + std::to_string(schema_.NumColumns()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "': expected " + ValueTypeName(schema_.column(i).type) + ", got " +
          ValueTypeName(row[i].type()));
    }
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Append(row[c]);
  ++num_rows_;
}

Result<Value> Table::Get(size_t row, const std::string& column) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("row index " + std::to_string(row) +
                              " out of range");
  }
  GEA_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  return columns_[col].GetValue(row);
}

void Table::GatherAppendRows(const Table& src, const uint32_t* rows,
                             size_t n) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].GatherAppend(src.columns_[c], rows, n);
  }
  num_rows_ += n;
}

void Table::Reserve(size_t rows) {
  for (Column& col : columns_) col.Reserve(rows);
}

void Table::Clear() {
  for (Column& col : columns_) col.Clear();
  num_rows_ = 0;
}

Table Table::FromColumns(std::string name, Schema schema,
                         std::vector<Column> columns, size_t num_rows) {
  Table table(std::move(name), std::move(schema));
  table.columns_ = std::move(columns);
  table.num_rows_ = num_rows;
  return table;
}

std::string Table::ToText(size_t max_rows) const {
  std::vector<size_t> widths(schema_.NumColumns());
  std::vector<std::vector<std::string>> cells;
  size_t shown = std::min(max_rows, num_rows_);
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_text;
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      row_text.push_back(columns_[c].GetValue(r).ToString());
      widths[c] = std::max(widths[c], row_text.back().size());
    }
    cells.push_back(std::move(row_text));
  }
  std::string out = name_ + " (" + std::to_string(num_rows_) + " rows)\n";
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    out += PadRight(schema_.column(c).name, widths[c] + 2);
  }
  out += '\n';
  for (const auto& row_text : cells) {
    for (size_t c = 0; c < row_text.size(); ++c) {
      out += PadRight(row_text[c], widths[c] + 2);
    }
    out += '\n';
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace gea::rel
