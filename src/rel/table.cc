#include "rel/table.h"

#include <algorithm>

#include "common/strings.h"

namespace gea::rel {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" + name_ +
        "' has " + std::to_string(schema_.NumColumns()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "': expected " + ValueTypeName(schema_.column(i).type) + ", got " +
          ValueTypeName(row[i].type()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::Get(size_t row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row index " + std::to_string(row) +
                              " out of range");
  }
  GEA_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  return rows_[row][col];
}

std::string Table::ToText(size_t max_rows) const {
  std::vector<size_t> widths(schema_.NumColumns());
  std::vector<std::vector<std::string>> cells;
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_text;
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      row_text.push_back(rows_[r][c].ToString());
      widths[c] = std::max(widths[c], row_text.back().size());
    }
    cells.push_back(std::move(row_text));
  }
  std::string out = name_ + " (" + std::to_string(rows_.size()) + " rows)\n";
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    out += PadRight(schema_.column(c).name, widths[c] + 2);
  }
  out += '\n';
  for (const auto& row_text : cells) {
    for (size_t c = 0; c < row_text.size(); ++c) {
      out += PadRight(row_text[c], widths[c] + 2);
    }
    out += '\n';
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace gea::rel
