#include "rel/ops.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::rel {

namespace {

obs::Counter& RowsScannedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gea.rel.rows_scanned");
  return counter;
}

obs::Counter& RowsMaterializedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gea.rel.rows_materialized");
  return counter;
}

}  // namespace

Result<Table> Select(const Table& input, const PredicatePtr& pred,
                     const std::string& output_name) {
  GEA_RETURN_IF_ERROR(pred->Bind(input.schema()));
  obs::TraceSpan span("rel.select");
  RowsScannedCounter().Add(input.NumRows());

  // Phase 1: evaluate the predicate into a selection mask, chunked over
  // the existing pool. Each mask slot depends only on its own row, so the
  // result is identical for any chunking (serial == parallel).
  const size_t n = input.NumRows();
  std::vector<uint8_t> mask(n);
  ParallelFor(0, n, 1024, [&](size_t begin, size_t end) {
    pred->EvalColumnar(input, begin, end, mask.data() + begin);
  });

  // Phase 2: gather the selected rows column by column.
  std::vector<uint32_t> selected;
  for (size_t i = 0; i < n; ++i) {
    if (mask[i]) selected.push_back(static_cast<uint32_t>(i));
  }
  Table out(output_name, input.schema());
  out.GatherAppendRows(input, selected.data(), selected.size());
  RowsMaterializedCounter().Add(out.NumRows());
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      const std::string& output_name) {
  std::vector<size_t> indices;
  std::vector<ColumnDef> defs;
  for (const std::string& name : columns) {
    GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(name));
    indices.push_back(idx);
    defs.push_back(input.schema().column(idx));
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  // Columns are self-contained, so projection is a column copy — no
  // per-row materialization.
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (size_t idx : indices) cols.push_back(input.column(idx));
  return Table::FromColumns(output_name, std::move(schema), std::move(cols),
                            input.NumRows());
}

namespace {

// Lexicographic row comparison via Value::Compare.
int CompareRows(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    int cmp = a[i].Compare(b[i]);
    if (cmp != 0) return cmp;
  }
  return 0;
}

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) < 0;
  }
};

// Appends rows `ids` of `src` to `out` (same schema).
void GatherInto(Table& out, const Table& src,
                const std::vector<uint32_t>& ids) {
  out.GatherAppendRows(src, ids.data(), ids.size());
}

}  // namespace

Result<Table> Distinct(const Table& input, const std::string& output_name) {
  std::map<Row, bool, RowLess> seen;
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < input.NumRows(); ++r) {
    if (seen.emplace(input.GetRow(r), true).second) {
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  Table out(output_name, input.schema());
  GatherInto(out, input, keep);
  return out;
}

Result<Table> RenameColumn(const Table& input, const std::string& from,
                           const std::string& to,
                           const std::string& output_name) {
  GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(from));
  std::vector<ColumnDef> defs = input.schema().columns();
  defs[idx].name = to;
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  std::vector<Column> cols;
  cols.reserve(input.NumColumns());
  for (size_t c = 0; c < input.NumColumns(); ++c) {
    cols.push_back(input.column(c));
  }
  return Table::FromColumns(output_name, std::move(schema), std::move(cols),
                            input.NumRows());
}

Result<Table> Sort(const Table& input, const std::vector<SortKey>& keys,
                   const std::string& output_name) {
  std::vector<std::pair<size_t, bool>> bound;  // column index, ascending
  for (const SortKey& key : keys) {
    GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(key.column));
    bound.emplace_back(idx, key.ascending);
  }
  std::vector<uint32_t> order(input.NumRows());
  std::iota(order.begin(), order.end(), 0);
  // Keys compare through the typed columns (Column::CompareRows preserves
  // Value::Compare semantics) — no per-comparison Value boxing.
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (const auto& [idx, ascending] : bound) {
      int cmp = input.column(idx).CompareRows(a, b);
      if (cmp != 0) return ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  Table out(output_name, input.schema());
  GatherInto(out, input, order);
  return out;
}

Result<Table> Limit(const Table& input, size_t n,
                    const std::string& output_name) {
  std::vector<uint32_t> ids(std::min(n, input.NumRows()));
  std::iota(ids.begin(), ids.end(), 0);
  Table out(output_name, input.schema());
  GatherInto(out, input, ids);
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key,
                       const std::string& right_key,
                       const std::string& output_name) {
  GEA_ASSIGN_OR_RETURN(size_t lidx, left.schema().ColumnIndex(left_key));
  GEA_ASSIGN_OR_RETURN(size_t ridx, right.schema().ColumnIndex(right_key));

  std::vector<ColumnDef> defs = left.schema().columns();
  std::vector<size_t> right_cols;
  for (size_t c = 0; c < right.schema().NumColumns(); ++c) {
    if (c == ridx) continue;
    ColumnDef def = right.schema().column(c);
    if (left.schema().FindColumn(def.name).has_value()) {
      def.name = "r_" + def.name;
    }
    defs.push_back(def);
    right_cols.push_back(c);
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  obs::TraceSpan span("rel.join");
  RowsScannedCounter().Add(left.NumRows() + right.NumRows());
  Table out(output_name, std::move(schema));

  // Build side: right table keyed by the textual form of the key. Values
  // hash via ToString; Compare-based equality is rechecked on probe.
  std::unordered_multimap<std::string, size_t> build;
  build.reserve(right.NumRows());
  for (size_t r = 0; r < right.NumRows(); ++r) {
    const Value key = right.At(r, ridx);
    if (key.is_null()) continue;  // NULL never joins
    build.emplace(key.ToString(), r);
  }
  for (size_t l = 0; l < left.NumRows(); ++l) {
    const Value key = left.At(l, lidx);
    if (key.is_null()) continue;
    auto [begin, end] = build.equal_range(key.ToString());
    Row lrow;  // materialized on first match only
    for (auto it = begin; it != end; ++it) {
      const Row rrow = right.GetRow(it->second);
      if (rrow[ridx].Compare(key) != 0) continue;
      if (lrow.empty()) lrow = left.GetRow(l);
      Row joined = lrow;
      for (size_t c : right_cols) joined.push_back(rrow[c]);
      out.AppendRowUnchecked(joined);
    }
  }
  RowsMaterializedCounter().Add(out.NumRows());
  return out;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kStdDev:
      return "stddev";
  }
  return "?";
}

namespace {

// Streaming accumulator for one aggregate column.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;
  Value min = Value::Null();
  Value max = Value::Null();

  void Add(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.IsNumeric()) {
      double x = v.AsNumeric();
      sum += x;
      sum_squares += x * x;
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value Finish(AggFn fn, int64_t non_null) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::Int(count);
      case AggFn::kSum:
        return non_null == 0 ? Value::Null() : Value::Double(sum);
      case AggFn::kAvg:
        return non_null == 0 ? Value::Null()
                             : Value::Double(sum / static_cast<double>(non_null));
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
      case AggFn::kStdDev: {
        if (non_null == 0) return Value::Null();
        double n = static_cast<double>(non_null);
        double mean = sum / n;
        double variance = sum_squares / n - mean * mean;
        return Value::Double(std::sqrt(std::max(0.0, variance)));
      }
    }
    return Value::Null();
  }
};

}  // namespace

Result<Table> GroupAggregate(const Table& input,
                             const std::vector<std::string>& group_columns,
                             const std::vector<AggSpec>& aggs,
                             const std::string& output_name) {
  std::vector<size_t> group_idx;
  std::vector<ColumnDef> defs;
  for (const std::string& name : group_columns) {
    GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(name));
    group_idx.push_back(idx);
    defs.push_back(input.schema().column(idx));
  }
  std::vector<size_t> agg_idx;
  for (const AggSpec& spec : aggs) {
    size_t idx = 0;
    if (spec.fn != AggFn::kCount) {
      GEA_ASSIGN_OR_RETURN(idx, input.schema().ColumnIndex(spec.column));
      const ValueType type = input.schema().column(idx).type;
      const bool numeric_fn = spec.fn == AggFn::kSum ||
                              spec.fn == AggFn::kAvg ||
                              spec.fn == AggFn::kStdDev;
      if (numeric_fn && type == ValueType::kString) {
        return Status::InvalidArgument(
            std::string(AggFnName(spec.fn)) +
            " requires a numeric column, got string column '" + spec.column +
            "'");
      }
    }
    agg_idx.push_back(idx);
    ValueType out_type = ValueType::kDouble;
    if (spec.fn == AggFn::kCount) {
      out_type = ValueType::kInt;
    } else if (spec.fn == AggFn::kMin || spec.fn == AggFn::kMax) {
      out_type = input.schema().column(idx).type;
    }
    defs.push_back({spec.output_name, out_type});
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  Table out(output_name, std::move(schema));

  // Group rows, preserving first-seen order. Keys materialize only the
  // grouping columns; aggregate inputs read straight from the columns.
  std::map<Row, size_t, RowLess> group_of;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> states;
  std::vector<std::vector<int64_t>> non_null_counts;

  for (size_t r = 0; r < input.NumRows(); ++r) {
    Row key;
    key.reserve(group_idx.size());
    for (size_t idx : group_idx) key.push_back(input.At(r, idx));
    auto [it, inserted] = group_of.emplace(std::move(key), group_keys.size());
    if (inserted) {
      group_keys.push_back(it->first);
      states.emplace_back(aggs.size());
      non_null_counts.emplace_back(aggs.size(), 0);
    }
    size_t g = it->second;
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].fn == AggFn::kCount) {
        states[g][a].count++;
      } else {
        const Value v = input.At(r, agg_idx[a]);
        states[g][a].Add(v);
        if (!v.is_null()) non_null_counts[g][a]++;
      }
    }
  }

  // With no group columns, emit a single row even for empty input.
  if (group_columns.empty() && group_keys.empty()) {
    group_keys.emplace_back();
    states.emplace_back(aggs.size());
    non_null_counts.emplace_back(aggs.size(), 0);
  }

  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(states[g][a].Finish(aggs[a].fn, non_null_counts[g][a]));
    }
    out.AppendRowUnchecked(row);
  }
  return out;
}

namespace {

Status CheckSameSchema(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument(
        "set operation requires identical schemas: (" +
        a.schema().ToString() + ") vs (" + b.schema().ToString() + ")");
  }
  return Status::OK();
}

}  // namespace

Result<Table> Union(const Table& a, const Table& b,
                    const std::string& output_name) {
  GEA_RETURN_IF_ERROR(CheckSameSchema(a, b));
  std::map<Row, bool, RowLess> seen;
  Table out(output_name, a.schema());
  for (const Table* t : {&a, &b}) {
    std::vector<uint32_t> keep;
    for (size_t r = 0; r < t->NumRows(); ++r) {
      if (seen.emplace(t->GetRow(r), true).second) {
        keep.push_back(static_cast<uint32_t>(r));
      }
    }
    GatherInto(out, *t, keep);
  }
  return out;
}

Result<Table> Intersect(const Table& a, const Table& b,
                        const std::string& output_name) {
  GEA_RETURN_IF_ERROR(CheckSameSchema(a, b));
  std::map<Row, bool, RowLess> in_b;
  for (size_t r = 0; r < b.NumRows(); ++r) in_b.emplace(b.GetRow(r), true);
  std::map<Row, bool, RowLess> emitted;
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < a.NumRows(); ++r) {
    Row row = a.GetRow(r);
    if (in_b.count(row) > 0 && emitted.emplace(std::move(row), true).second) {
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  Table out(output_name, a.schema());
  GatherInto(out, a, keep);
  return out;
}

Result<Table> Minus(const Table& a, const Table& b,
                    const std::string& output_name) {
  GEA_RETURN_IF_ERROR(CheckSameSchema(a, b));
  std::map<Row, bool, RowLess> in_b;
  for (size_t r = 0; r < b.NumRows(); ++r) in_b.emplace(b.GetRow(r), true);
  std::map<Row, bool, RowLess> emitted;
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < a.NumRows(); ++r) {
    Row row = a.GetRow(r);
    if (in_b.count(row) == 0 && emitted.emplace(std::move(row), true).second) {
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  Table out(output_name, a.schema());
  GatherInto(out, a, keep);
  return out;
}

}  // namespace gea::rel
