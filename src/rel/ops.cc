#include "rel/ops.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::rel {

namespace {

obs::Counter& RowsScannedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gea.rel.rows_scanned");
  return counter;
}

obs::Counter& RowsMaterializedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gea.rel.rows_materialized");
  return counter;
}

}  // namespace

Result<Table> Select(const Table& input, const PredicatePtr& pred,
                     const std::string& output_name) {
  GEA_RETURN_IF_ERROR(pred->Bind(input.schema()));
  obs::TraceSpan span("rel.select");
  RowsScannedCounter().Add(input.NumRows());
  Table out(output_name, input.schema());
  for (const Row& row : input.rows()) {
    if (pred->EvalBound(row)) out.AppendRowUnchecked(row);
  }
  RowsMaterializedCounter().Add(out.NumRows());
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      const std::string& output_name) {
  std::vector<size_t> indices;
  std::vector<ColumnDef> defs;
  for (const std::string& name : columns) {
    GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(name));
    indices.push_back(idx);
    defs.push_back(input.schema().column(idx));
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  Table out(output_name, std::move(schema));
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.AppendRowUnchecked(std::move(projected));
  }
  return out;
}

namespace {

// Lexicographic row comparison via Value::Compare.
int CompareRows(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    int cmp = a[i].Compare(b[i]);
    if (cmp != 0) return cmp;
  }
  return 0;
}

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) < 0;
  }
};

}  // namespace

Result<Table> Distinct(const Table& input, const std::string& output_name) {
  std::map<Row, bool, RowLess> seen;
  Table out(output_name, input.schema());
  for (const Row& row : input.rows()) {
    if (seen.emplace(row, true).second) out.AppendRowUnchecked(row);
  }
  return out;
}

Result<Table> RenameColumn(const Table& input, const std::string& from,
                           const std::string& to,
                           const std::string& output_name) {
  GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(from));
  std::vector<ColumnDef> defs = input.schema().columns();
  defs[idx].name = to;
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  Table out(output_name, std::move(schema));
  for (const Row& row : input.rows()) out.AppendRowUnchecked(row);
  return out;
}

Result<Table> Sort(const Table& input, const std::vector<SortKey>& keys,
                   const std::string& output_name) {
  std::vector<std::pair<size_t, bool>> bound;  // column index, ascending
  for (const SortKey& key : keys) {
    GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(key.column));
    bound.emplace_back(idx, key.ascending);
  }
  std::vector<size_t> order(input.NumRows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (const auto& [idx, ascending] : bound) {
      int cmp = input.row(a)[idx].Compare(input.row(b)[idx]);
      if (cmp != 0) return ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  Table out(output_name, input.schema());
  for (size_t i : order) out.AppendRowUnchecked(input.row(i));
  return out;
}

Result<Table> Limit(const Table& input, size_t n,
                    const std::string& output_name) {
  Table out(output_name, input.schema());
  for (size_t i = 0; i < std::min(n, input.NumRows()); ++i) {
    out.AppendRowUnchecked(input.row(i));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key,
                       const std::string& right_key,
                       const std::string& output_name) {
  GEA_ASSIGN_OR_RETURN(size_t lidx, left.schema().ColumnIndex(left_key));
  GEA_ASSIGN_OR_RETURN(size_t ridx, right.schema().ColumnIndex(right_key));

  std::vector<ColumnDef> defs = left.schema().columns();
  std::vector<size_t> right_cols;
  for (size_t c = 0; c < right.schema().NumColumns(); ++c) {
    if (c == ridx) continue;
    ColumnDef def = right.schema().column(c);
    if (left.schema().FindColumn(def.name).has_value()) {
      def.name = "r_" + def.name;
    }
    defs.push_back(def);
    right_cols.push_back(c);
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  obs::TraceSpan span("rel.join");
  RowsScannedCounter().Add(left.NumRows() + right.NumRows());
  Table out(output_name, std::move(schema));

  // Build side: right table keyed by the textual form of the key. Values
  // hash via ToString; Compare-based equality is rechecked on probe.
  std::unordered_multimap<std::string, size_t> build;
  build.reserve(right.NumRows());
  for (size_t r = 0; r < right.NumRows(); ++r) {
    const Value& key = right.row(r)[ridx];
    if (key.is_null()) continue;  // NULL never joins
    build.emplace(key.ToString(), r);
  }
  for (const Row& lrow : left.rows()) {
    const Value& key = lrow[lidx];
    if (key.is_null()) continue;
    auto [begin, end] = build.equal_range(key.ToString());
    for (auto it = begin; it != end; ++it) {
      const Row& rrow = right.row(it->second);
      if (rrow[ridx].Compare(key) != 0) continue;
      Row joined = lrow;
      for (size_t c : right_cols) joined.push_back(rrow[c]);
      out.AppendRowUnchecked(std::move(joined));
    }
  }
  RowsMaterializedCounter().Add(out.NumRows());
  return out;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kStdDev:
      return "stddev";
  }
  return "?";
}

namespace {

// Streaming accumulator for one aggregate column.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;
  Value min = Value::Null();
  Value max = Value::Null();

  void Add(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.IsNumeric()) {
      double x = v.AsNumeric();
      sum += x;
      sum_squares += x * x;
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value Finish(AggFn fn, int64_t non_null) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::Int(count);
      case AggFn::kSum:
        return non_null == 0 ? Value::Null() : Value::Double(sum);
      case AggFn::kAvg:
        return non_null == 0 ? Value::Null()
                             : Value::Double(sum / static_cast<double>(non_null));
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
      case AggFn::kStdDev: {
        if (non_null == 0) return Value::Null();
        double n = static_cast<double>(non_null);
        double mean = sum / n;
        double variance = sum_squares / n - mean * mean;
        return Value::Double(std::sqrt(std::max(0.0, variance)));
      }
    }
    return Value::Null();
  }
};

}  // namespace

Result<Table> GroupAggregate(const Table& input,
                             const std::vector<std::string>& group_columns,
                             const std::vector<AggSpec>& aggs,
                             const std::string& output_name) {
  std::vector<size_t> group_idx;
  std::vector<ColumnDef> defs;
  for (const std::string& name : group_columns) {
    GEA_ASSIGN_OR_RETURN(size_t idx, input.schema().ColumnIndex(name));
    group_idx.push_back(idx);
    defs.push_back(input.schema().column(idx));
  }
  std::vector<size_t> agg_idx;
  for (const AggSpec& spec : aggs) {
    size_t idx = 0;
    if (spec.fn != AggFn::kCount) {
      GEA_ASSIGN_OR_RETURN(idx, input.schema().ColumnIndex(spec.column));
      const ValueType type = input.schema().column(idx).type;
      const bool numeric_fn = spec.fn == AggFn::kSum ||
                              spec.fn == AggFn::kAvg ||
                              spec.fn == AggFn::kStdDev;
      if (numeric_fn && type == ValueType::kString) {
        return Status::InvalidArgument(
            std::string(AggFnName(spec.fn)) +
            " requires a numeric column, got string column '" + spec.column +
            "'");
      }
    }
    agg_idx.push_back(idx);
    ValueType out_type = ValueType::kDouble;
    if (spec.fn == AggFn::kCount) {
      out_type = ValueType::kInt;
    } else if (spec.fn == AggFn::kMin || spec.fn == AggFn::kMax) {
      out_type = input.schema().column(idx).type;
    }
    defs.push_back({spec.output_name, out_type});
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  Table out(output_name, std::move(schema));

  // Group rows, preserving first-seen order.
  std::map<Row, size_t, RowLess> group_of;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> states;
  std::vector<std::vector<int64_t>> non_null_counts;

  for (const Row& row : input.rows()) {
    Row key;
    key.reserve(group_idx.size());
    for (size_t idx : group_idx) key.push_back(row[idx]);
    auto [it, inserted] = group_of.emplace(std::move(key), group_keys.size());
    if (inserted) {
      group_keys.push_back(it->first);
      states.emplace_back(aggs.size());
      non_null_counts.emplace_back(aggs.size(), 0);
    }
    size_t g = it->second;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Value& v =
          aggs[a].fn == AggFn::kCount ? Value::Null() : row[agg_idx[a]];
      if (aggs[a].fn == AggFn::kCount) {
        states[g][a].count++;
      } else {
        states[g][a].Add(v);
        if (!v.is_null()) non_null_counts[g][a]++;
      }
    }
  }

  // With no group columns, emit a single row even for empty input.
  if (group_columns.empty() && group_keys.empty()) {
    group_keys.emplace_back();
    states.emplace_back(aggs.size());
    non_null_counts.emplace_back(aggs.size(), 0);
  }

  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(states[g][a].Finish(aggs[a].fn, non_null_counts[g][a]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

namespace {

Status CheckSameSchema(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument(
        "set operation requires identical schemas: (" +
        a.schema().ToString() + ") vs (" + b.schema().ToString() + ")");
  }
  return Status::OK();
}

}  // namespace

Result<Table> Union(const Table& a, const Table& b,
                    const std::string& output_name) {
  GEA_RETURN_IF_ERROR(CheckSameSchema(a, b));
  std::map<Row, bool, RowLess> seen;
  Table out(output_name, a.schema());
  for (const Table* t : {&a, &b}) {
    for (const Row& row : t->rows()) {
      if (seen.emplace(row, true).second) out.AppendRowUnchecked(row);
    }
  }
  return out;
}

Result<Table> Intersect(const Table& a, const Table& b,
                        const std::string& output_name) {
  GEA_RETURN_IF_ERROR(CheckSameSchema(a, b));
  std::map<Row, bool, RowLess> in_b;
  for (const Row& row : b.rows()) in_b.emplace(row, true);
  std::map<Row, bool, RowLess> emitted;
  Table out(output_name, a.schema());
  for (const Row& row : a.rows()) {
    if (in_b.count(row) > 0 && emitted.emplace(row, true).second) {
      out.AppendRowUnchecked(row);
    }
  }
  return out;
}

Result<Table> Minus(const Table& a, const Table& b,
                    const std::string& output_name) {
  GEA_RETURN_IF_ERROR(CheckSameSchema(a, b));
  std::map<Row, bool, RowLess> in_b;
  for (const Row& row : b.rows()) in_b.emplace(row, true);
  std::map<Row, bool, RowLess> emitted;
  Table out(output_name, a.schema());
  for (const Row& row : a.rows()) {
    if (in_b.count(row) == 0 && emitted.emplace(row, true).second) {
      out.AppendRowUnchecked(row);
    }
  }
  return out;
}

}  // namespace gea::rel
