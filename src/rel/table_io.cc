#include "rel/table_io.h"

#include "common/csv.h"
#include "common/strings.h"

namespace gea::rel {

std::string TableToCsv(const Table& table) {
  CsvDocument doc;
  for (const ColumnDef& col : table.schema().columns()) {
    doc.header.push_back(col.name + ":" + ValueTypeName(col.type));
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::vector<std::string> record;
    record.reserve(table.NumColumns());
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      record.push_back(table.At(r, c).ToString());
    }
    doc.rows.push_back(std::move(record));
  }
  return WriteCsv(doc);
}

Result<Table> TableFromCsv(const std::string& name,
                           const std::string& text) {
  GEA_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(text));
  std::vector<ColumnDef> defs;
  for (const std::string& field : doc.header) {
    std::vector<std::string> parts = Split(field, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("header field not 'name:type': " +
                                     field);
    }
    GEA_ASSIGN_OR_RETURN(ValueType type, ParseValueType(parts[1]));
    defs.push_back({parts[0], type});
  }
  GEA_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  Table table(name, schema);
  for (const auto& record : doc.rows) {
    // ParseCsv already rejects ragged records, but guard here too so a
    // future CSV layer change cannot turn this into an out-of-bounds
    // schema.column() access.
    if (record.size() != schema.NumColumns()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(record.size()) + " fields, schema has " +
          std::to_string(schema.NumColumns()));
    }
    Row row;
    row.reserve(record.size());
    for (size_t c = 0; c < record.size(); ++c) {
      GEA_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(record[c], schema.column(c).type));
      row.push_back(std::move(v));
    }
    GEA_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Status SaveTable(const Table& table, const std::string& path) {
  CsvDocument doc;
  for (const ColumnDef& col : table.schema().columns()) {
    doc.header.push_back(col.name + ":" + ValueTypeName(col.type));
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::vector<std::string> record;
    record.reserve(table.NumColumns());
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      record.push_back(table.At(r, c).ToString());
    }
    doc.rows.push_back(std::move(record));
  }
  return WriteCsvFile(path, doc);
}

Result<Table> LoadTable(const std::string& name, const std::string& path) {
  GEA_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  return TableFromCsv(name, WriteCsv(doc));
}

}  // namespace gea::rel
