#ifndef GEA_REL_COLUMN_H_
#define GEA_REL_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/resource.h"
#include "rel/value.h"

namespace gea::rel {

/// Physical storage for one table column: a typed contiguous vector plus a
/// null bitmap. This is the physical half of the logical/physical split —
/// `Table` keeps the row-oriented `Schema`/`Row` API while cells live here.
///
/// Layout per declared type:
///   kInt    -> std::vector<int64_t>   (null slots hold 0)
///   kDouble -> std::vector<double>    (null slots hold 0.0)
///   kString -> dictionary-coded: vector<uint32_t> codes into a per-column
///              string dictionary (null slots hold code 0). Tag names and
///              other low-cardinality identifiers dedupe to one string each.
///   kNull   -> no payload; every slot is NULL.
///
/// The null bitmap packs one bit per row into uint64 words, bit set = NULL.
/// Payload slots for NULL rows are zero-filled so kernels can load them
/// unconditionally and mask afterwards.
///
/// Growth paths charge the thread's bound obs::MemoryAccount (per-query
/// memory accounting on the serve path); when none is bound each charge
/// is a thread-local load and a branch. Accounted bytes are the logical
/// payload — typed vectors, dictionary strings and the null bitmap, per
/// PayloadBytes() — not allocator capacity, so alloc and free stay
/// symmetric. The dictionary hash index is not counted.
class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }

  bool IsNull(size_t row) const {
    return (null_words_[row >> 6] >> (row & 63)) & 1;
  }

  /// Typed payload accessors. Reading a NULL slot returns the zero fill;
  /// callers that care must check IsNull first.
  int64_t IntAt(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  uint32_t CodeAt(size_t row) const { return codes_[row]; }
  const std::string& StringAt(size_t row) const { return dict_[codes_[row]]; }

  /// Materializes one cell as a boxed Value (NULL-aware).
  Value GetValue(size_t row) const;

  /// Appends a value. Ints and doubles coerce to the column's numeric type
  /// when they differ; a non-NULL value whose type cannot be represented is
  /// stored as NULL (callers that need strict typing validate upstream, as
  /// Table::AppendRow does).
  void Append(const Value& v);
  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);

  /// Appends rows `rows[0..n)` of `src` (same declared type). When this
  /// column is empty and `src` is a string column, the dictionary is adopted
  /// wholesale so codes copy without re-interning.
  void GatherAppend(const Column& src, const uint32_t* rows, size_t n);

  void Reserve(size_t n);
  void Clear();

  /// Bytes of logical payload held: typed vectors, dictionary strings
  /// and the null bitmap (the dictionary hash index is excluded).
  uint64_t PayloadBytes() const;

  /// Three-way comparison of two rows of this column under Value::Compare
  /// semantics (NULL==NULL, NULL first). Dictionary codes are unordered, so
  /// string rows compare through the dictionary.
  int CompareRows(size_t a, size_t b) const {
    return CompareAcross(*this, a, *this, b);
  }
  static int CompareAcross(const Column& a, size_t ra, const Column& b,
                           size_t rb);

  /// Raw views for batch kernels. Payload pointers are null when the column
  /// holds no rows of that type.
  const int64_t* int_data() const { return ints_.data(); }
  const double* double_data() const { return doubles_.data(); }
  const uint32_t* code_data() const { return codes_.data(); }
  const std::vector<std::string>& dict() const { return dict_; }
  const uint64_t* null_words() const { return null_words_.data(); }
  size_t null_word_count() const { return null_words_.size(); }
  static size_t NullWordsFor(size_t rows) { return (rows + 63) / 64; }

  /// Interns `s`, returning its dictionary code (string columns only).
  uint32_t Intern(const std::string& s);

  /// Bulk constructors for the binary codec: adopt decoded vectors directly.
  /// `nulls` is the packed bitmap sized NullWordsFor(n); payloads must be
  /// zero-filled on null slots (re-encode depends on it).
  static Column FromRawInts(std::vector<int64_t> vals,
                            std::vector<uint64_t> nulls, size_t n);
  static Column FromRawDoubles(std::vector<double> vals,
                               std::vector<uint64_t> nulls, size_t n);
  static Column FromRawStrings(std::vector<std::string> dict,
                               std::vector<uint32_t> codes,
                               std::vector<uint64_t> nulls, size_t n);
  static Column FromRawNulls(size_t n);

 private:
  void MarkNull(size_t row);
  void GrowBitmap() {
    if (null_words_.size() < NullWordsFor(size_ + 1)) {
      null_words_.push_back(0);
      obs::AccountAllocation(sizeof(uint64_t));
    }
  }
  void RebuildDictIndex();

  ValueType type_;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> dict_index_;
  std::vector<uint64_t> null_words_;
};

}  // namespace gea::rel

#endif  // GEA_REL_COLUMN_H_
