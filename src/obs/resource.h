#ifndef GEA_OBS_RESOURCE_H_
#define GEA_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>

namespace gea::obs {

/// Per-query memory accounting. A MemoryAccount accumulates the bytes a
/// request's execution allocates in the data-bearing containers —
/// rel::Column payloads, GapTable / SumyTable arrays — and tracks the
/// high-water mark of live (allocated minus freed) bytes. The serve
/// layer binds one account to the worker thread for each request
/// (MemoryAccountScope), ParallelFor propagates the binding into pool
/// helpers exactly like TraceBinding, and the allocation sites call the
/// free functions below.
///
/// Cost model: when no account is bound (every non-served code path) an
/// accounting call is one thread-local load and a branch. When bound,
/// it is two or three relaxed atomic operations — the account is shared
/// across the pool helpers of one request, so the members must be
/// atomics, but there is no lock anywhere.
class MemoryAccount {
 public:
  MemoryAccount() = default;

  MemoryAccount(const MemoryAccount&) = delete;
  MemoryAccount& operator=(const MemoryAccount&) = delete;

  void OnAlloc(uint64_t bytes) {
    allocated_.fetch_add(bytes, std::memory_order_relaxed);
    const uint64_t live =
        live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // CAS-max: lost races only ever lose to a larger peak.
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (peak < live && !peak_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }

  void OnFree(uint64_t bytes) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Total bytes allocated while the account was bound.
  uint64_t AllocatedBytes() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  /// High-water mark of live bytes (allocated minus freed).
  uint64_t PeakBytes() const { return peak_.load(std::memory_order_relaxed); }
  /// Live bytes right now (allocations the request has not released).
  uint64_t LiveBytes() const { return live_.load(std::memory_order_relaxed); }

  void Reset() {
    allocated_.store(0, std::memory_order_relaxed);
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> live_{0};
  std::atomic<uint64_t> peak_{0};
};

/// The account bound to the calling thread (nullptr when none).
MemoryAccount* CurrentMemoryAccount();

/// True when an account is bound to the calling thread.
bool MemoryAccountingActive();

/// Adds `bytes` to the bound account; no-op when none is bound.
void AccountAllocation(uint64_t bytes);

/// Subtracts `bytes` of live memory from the bound account; no-op when
/// none is bound. Callers must have accounted the same bytes earlier —
/// the containers call this from Clear()-style releases only, so a
/// request that frees what another request allocated never goes through
/// here (the account is thread-bound per request).
void AccountFree(uint64_t bytes);

/// Binds `account` to the calling thread for the scope's lifetime.
/// Nested scopes shadow (and restore) the outer binding; binding nullptr
/// suspends accounting for the scope. ParallelFor installs the
/// submitting thread's account in pool helpers, which is safe because
/// every chunk completes before ParallelFor returns to the frame that
/// owns the account.
class MemoryAccountScope {
 public:
  explicit MemoryAccountScope(MemoryAccount* account);
  ~MemoryAccountScope();

  MemoryAccountScope(const MemoryAccountScope&) = delete;
  MemoryAccountScope& operator=(const MemoryAccountScope&) = delete;

 private:
  MemoryAccount* previous_;
};

}  // namespace gea::obs

#endif  // GEA_OBS_RESOURCE_H_
