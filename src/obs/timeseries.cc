#include "obs/timeseries.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace gea::obs {

namespace {

/// Clamps a uint64 metric value into the int64 the series carries (the
/// same saturation the stat views apply).
int64_t SaturateToInt64(uint64_t v) {
  constexpr uint64_t kMax = static_cast<uint64_t>(INT64_MAX);
  return static_cast<int64_t>(std::min(v, kMax));
}

/// Parses a non-negative integer env var; 0 when unset/empty/invalid.
uint64_t ParseMillisEnv(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

// ---- TelemetryHistory ----

TelemetryHistory::TelemetryHistory(size_t retention)
    : retention_(retention == 0 ? 1 : retention) {}

TelemetryHistory& TelemetryHistory::Global() {
  static TelemetryHistory* history = new TelemetryHistory();
  return *history;
}

void TelemetryHistory::Harvest() {
  // Snapshot the registry before taking our own lock: the registry walk
  // takes the registry mutex, and holding two locks for no reason is how
  // ordering bugs start.
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const uint64_t now = NowNanos();

  std::lock_guard<std::mutex> lock(mu_);
  HistorySample sample;
  sample.sample_id = ++harvests_;
  sample.nanos = now;

  const double interval_seconds =
      last_nanos_ == 0 ? 0.0 : static_cast<double>(now - last_nanos_) / 1e9;

  const auto add = [&](std::string name, int64_t value, bool monotonic) {
    SeriesPoint point;
    point.value = value;
    point.monotonic = monotonic;
    auto it = last_values_.find(name);
    if (it != last_values_.end()) {
      point.delta = value - it->second;
      if (monotonic && point.delta < 0) point.delta = 0;  // reset-for-test
      if (monotonic && interval_seconds > 0.0) {
        point.rate = static_cast<double>(point.delta) / interval_seconds;
      }
      it->second = value;
    } else {
      last_values_.emplace(name, value);
    }
    point.name = std::move(name);
    sample.points.push_back(std::move(point));
  };

  // The registry snapshot is sorted per kind; the .count/.p50/.p99
  // expansion keeps each histogram's series adjacent, and the final sort
  // below restores one global name order across kinds.
  for (const CounterValue& c : snapshot.counters) {
    add(c.name, SaturateToInt64(c.value), /*monotonic=*/true);
  }
  for (const GaugeValue& g : snapshot.gauges) {
    add(g.name, g.value, /*monotonic=*/false);
  }
  for (const HistogramValue& h : snapshot.histograms) {
    add(h.name + ".count", SaturateToInt64(h.count), /*monotonic=*/true);
    add(h.name + ".p50", SaturateToInt64(h.ApproxQuantile(0.50)),
        /*monotonic=*/false);
    add(h.name + ".p99", SaturateToInt64(h.ApproxQuantile(0.99)),
        /*monotonic=*/false);
  }
  std::sort(sample.points.begin(), sample.points.end(),
            [](const SeriesPoint& a, const SeriesPoint& b) {
              return a.name < b.name;
            });

  last_nanos_ = now;
  samples_.push_back(std::move(sample));
  while (samples_.size() > retention_) samples_.pop_front();
}

std::vector<HistorySample> TelemetryHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<HistorySample>(samples_.begin(), samples_.end());
}

uint64_t TelemetryHistory::Harvests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return harvests_;
}

void TelemetryHistory::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  harvests_ = 0;
  last_nanos_ = 0;
  samples_.clear();
  last_values_.clear();
}

// ---- Harvester ----

Harvester::~Harvester() { Stop(); }

bool Harvester::Start(const HarvesterOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || options.interval_ms == 0) return false;
  options_ = options;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&Harvester::Loop, this);
  LogRecord(LogLevel::kInfo, "harvester_started")
      .U64("interval_ms", options.interval_ms)
      .U64("watchdog_ms", options.watchdog_ms.value_or(0))
      .Emit();
  return true;
}

void Harvester::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool Harvester::Running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

HarvesterOptions Harvester::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void Harvester::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const HarvesterOptions options = options_;
  while (!stop_) {
    lock.unlock();
    TelemetryHistory::Global().Harvest();
    if (options.watchdog_ms.has_value()) {
      (void)WatchdogSweep(*options.watchdog_ms);
    }
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options.interval_ms),
                 [this] { return stop_; });
  }
}

Harvester& GlobalHarvester() {
  static Harvester* harvester = new Harvester();
  return *harvester;
}

bool StartHarvesterFromEnv() {
  static const HarvesterOptions env_options = [] {
    HarvesterOptions options;
    options.interval_ms = ParseMillisEnv("GEA_STATS_INTERVAL_MS");
    const uint64_t watchdog = ParseMillisEnv("GEA_WATCHDOG_MS");
    if (watchdog > 0) options.watchdog_ms = watchdog;
    return options;
  }();
  if (env_options.interval_ms == 0) return false;
  Harvester& harvester = GlobalHarvester();
  if (harvester.Running()) return true;
  // A racing Start() loses the flag but the harvester is up either way.
  return harvester.Start(env_options) || harvester.Running();
}

// ---- Watchdog ----

size_t WatchdogSweep(uint64_t threshold_ms) {
  const uint64_t now = NowNanos();
  const uint64_t threshold_nanos = threshold_ms * 1'000'000ull;
  size_t flagged = 0;
  for (const InflightRequest& request : InflightRegistry::Global().Snapshot()) {
    const uint64_t elapsed = now - request.start_nanos;
    if (elapsed < threshold_nanos) continue;
    // Flag() is the once-per-request gate: it fails for a request the
    // watchdog already reported or that finished between snapshot and
    // here, so concurrent sweeps can never double-log.
    if (!InflightRegistry::Global().Flag(request.token)) continue;
    ++flagged;

    // The span tree recorded so far (non-destructive: the request's own
    // trace capture still drains these spans when it completes).
    std::string spans = "[";
    const std::vector<SpanRecord> recorded =
        TraceCollector::Global().SnapshotSince(request.mark, request.trace_id);
    for (size_t i = 0; i < recorded.size(); ++i) {
      const SpanRecord& span = recorded[i];
      if (i > 0) spans += ",";
      spans += "{\"id\":" + std::to_string(span.id) +
               ",\"parent_id\":" + std::to_string(span.parent_id) +
               ",\"name\":\"" + JsonEscape(span.name) +
               "\",\"start_nanos\":" + std::to_string(span.start_nanos) +
               ",\"duration_nanos\":" + std::to_string(span.duration_nanos) +
               "}";
    }
    spans += "]";

    LogRecord(LogLevel::kWarn, "stalled_request")
        .U64("trace_id", request.trace_id)
        .Str("op", request.op)
        .Str("user", request.user)
        .F64("elapsed_ms", static_cast<double>(elapsed) / 1e6)
        .U64("threshold_ms", threshold_ms)
        .U64("worker_tid", request.worker_tid)
        .RawJson("spans", spans)
        .Emit();
  }
  return flagged;
}

// ---- Rendering ----

rel::Table StatHistoryTable(const std::vector<HistorySample>& samples) {
  rel::Schema schema({{"sample", rel::ValueType::kInt},
                      {"ts_ms", rel::ValueType::kInt},
                      {"name", rel::ValueType::kString},
                      {"value", rel::ValueType::kInt},
                      {"delta", rel::ValueType::kInt},
                      {"rate", rel::ValueType::kDouble}});
  rel::Table table("gea_stat_history", schema);
  for (const HistorySample& sample : samples) {
    const int64_t ts_ms = SaturateToInt64(sample.nanos / 1'000'000ull);
    for (const SeriesPoint& point : sample.points) {
      table.AppendRowUnchecked(
          {rel::Value::Int(SaturateToInt64(sample.sample_id)),
           rel::Value::Int(ts_ms), rel::Value::String(point.name),
           rel::Value::Int(point.value), rel::Value::Int(point.delta),
           rel::Value::Double(point.rate)});
    }
  }
  return table;
}

std::string HistoryJson() {
  const std::vector<HistorySample> samples = TelemetryHistory::Global().Snapshot();
  std::string out =
      "{\"retention\":" + std::to_string(TelemetryHistory::Global().retention()) +
      ",\"harvests\":" + std::to_string(TelemetryHistory::Global().Harvests()) +
      ",\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const HistorySample& sample = samples[i];
    if (i > 0) out += ",";
    out += "{\"sample\":" + std::to_string(sample.sample_id) +
           ",\"ts_ms\":" + std::to_string(sample.nanos / 1'000'000ull) +
           ",\"metrics\":[";
    for (size_t j = 0; j < sample.points.size(); ++j) {
      const SeriesPoint& point = sample.points[j];
      if (j > 0) out += ",";
      out += "{\"name\":\"" + JsonEscape(point.name) +
             "\",\"value\":" + std::to_string(point.value) +
             ",\"delta\":" + std::to_string(point.delta) +
             ",\"rate\":" + std::to_string(point.rate) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace gea::obs
