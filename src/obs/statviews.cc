#include "obs/statviews.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <tuple>
#include <utility>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/timeseries.h"

namespace gea::obs {

namespace {

/// Counter/histogram values are uint64 but rel::Value ints are int64;
/// saturating keeps the (pathological) overflow bucket's UINT64_MAX
/// upper bound from rendering as -1.
int64_t SaturateToInt(uint64_t v) {
  const uint64_t cap =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  return static_cast<int64_t>(std::min(v, cap));
}

double NanosToMillis(uint64_t nanos) {
  return static_cast<double>(nanos) / 1e6;
}

rel::Schema NameValueSchema() {
  return rel::Schema({{"name", rel::ValueType::kString},
                      {"value", rel::ValueType::kInt}});
}

std::mutex& ProvidersMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// Extra views contributed by higher layers; leaked like the registry so
/// static-init registration and static-teardown reads are both safe.
std::map<std::string, std::function<rel::Table()>>& Providers() {
  static auto* providers =
      new std::map<std::string, std::function<rel::Table()>>();
  return *providers;
}

}  // namespace

void RegisterStatViewProvider(const std::string& name,
                              std::function<rel::Table()> builder) {
  std::lock_guard<std::mutex> lock(ProvidersMutex());
  Providers()[name] = std::move(builder);
}

// ---- TelemetryHub ----

TelemetryHub& TelemetryHub::Global() {
  // Leaked, like MetricsRegistry: sessions destroyed during static
  // teardown can still deregister safely.
  static TelemetryHub* hub = new TelemetryHub();
  return *hub;
}

uint64_t TelemetryHub::RegisterSession() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  SessionStat& stat = sessions_[id];
  stat.session_id = id;
  return id;
}

void TelemetryHub::DeregisterSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

void TelemetryHub::SetSessionUser(uint64_t session_id,
                                  const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) it->second.user = user;
}

void TelemetryHub::RecordOperation(uint64_t session_id,
                                   const std::string& operation,
                                   uint64_t elapsed_nanos, bool ok,
                                   bool slow) {
  std::lock_guard<std::mutex> lock(mu_);
  OperatorStat& op = operators_[operation];
  op.operation = operation;
  op.calls += 1;
  if (!ok) op.errors += 1;
  if (slow) op.slow_queries += 1;
  op.total_nanos += elapsed_nanos;
  op.max_nanos = std::max(op.max_nanos, elapsed_nanos);

  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // 0 (moved-from handle) or departed
  SessionStat& session = it->second;
  session.operations += 1;
  if (!ok) session.errors += 1;
  if (slow) session.slow_queries += 1;
  session.total_nanos += elapsed_nanos;
  session.last_operation = operation;
}

std::vector<OperatorStat> TelemetryHub::OperatorStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OperatorStat> out;
  out.reserve(operators_.size());
  for (const auto& [_, stat] : operators_) out.push_back(stat);
  return out;
}

std::vector<SessionStat> TelemetryHub::SessionStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionStat> out;
  out.reserve(sessions_.size());
  for (const auto& [_, stat] : sessions_) out.push_back(stat);
  return out;
}

void TelemetryHub::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
  operators_.clear();
}

// ---- SessionTelemetryHandle ----

SessionTelemetryHandle::SessionTelemetryHandle()
    : id_(TelemetryHub::Global().RegisterSession()) {}

SessionTelemetryHandle::~SessionTelemetryHandle() {
  if (id_ != 0) TelemetryHub::Global().DeregisterSession(id_);
}

SessionTelemetryHandle::SessionTelemetryHandle(
    SessionTelemetryHandle&& other) noexcept
    : id_(other.id_) {
  other.id_ = 0;
}

SessionTelemetryHandle& SessionTelemetryHandle::operator=(
    SessionTelemetryHandle&& other) noexcept {
  if (this != &other) {
    if (id_ != 0) TelemetryHub::Global().DeregisterSession(id_);
    id_ = other.id_;
    other.id_ = 0;
  }
  return *this;
}

void SessionTelemetryHandle::SetUser(const std::string& user) const {
  if (id_ != 0) TelemetryHub::Global().SetSessionUser(id_, user);
}

void SessionTelemetryHandle::RecordOperation(const std::string& operation,
                                             uint64_t elapsed_nanos, bool ok,
                                             bool slow) const {
  if (id_ != 0) {
    TelemetryHub::Global().RecordOperation(id_, operation, elapsed_nanos, ok,
                                           slow);
  }
}

// ---- Table builders ----

rel::Table StatCountersTable(const MetricsSnapshot& snapshot) {
  rel::Table table(kStatCountersView, NameValueSchema());
  for (const CounterValue& c : snapshot.counters) {
    table.AppendRowUnchecked(
        {rel::Value::String(c.name), rel::Value::Int(SaturateToInt(c.value))});
  }
  return table;
}

rel::Table StatHistogramsTable(const MetricsSnapshot& snapshot) {
  rel::Table table(kStatHistogramsView,
                   rel::Schema({{"name", rel::ValueType::kString},
                                {"count", rel::ValueType::kInt},
                                {"sum", rel::ValueType::kInt},
                                {"mean", rel::ValueType::kDouble},
                                {"p50", rel::ValueType::kInt},
                                {"p95", rel::ValueType::kInt},
                                {"p99", rel::ValueType::kInt}}));
  for (const HistogramValue& h : snapshot.histograms) {
    table.AppendRowUnchecked(
        {rel::Value::String(h.name), rel::Value::Int(SaturateToInt(h.count)),
         rel::Value::Int(SaturateToInt(h.sum)), rel::Value::Double(h.Mean()),
         rel::Value::Int(SaturateToInt(h.ApproxQuantile(0.50))),
         rel::Value::Int(SaturateToInt(h.ApproxQuantile(0.95))),
         rel::Value::Int(SaturateToInt(h.ApproxQuantile(0.99)))});
  }
  return table;
}

rel::Table StatOperatorsTable(const std::vector<OperatorStat>& stats) {
  rel::Table table(kStatOperatorsView,
                   rel::Schema({{"operation", rel::ValueType::kString},
                                {"calls", rel::ValueType::kInt},
                                {"errors", rel::ValueType::kInt},
                                {"slow_queries", rel::ValueType::kInt},
                                {"total_ms", rel::ValueType::kDouble},
                                {"mean_ms", rel::ValueType::kDouble},
                                {"max_ms", rel::ValueType::kDouble}}));
  for (const OperatorStat& s : stats) {
    const double total_ms = NanosToMillis(s.total_nanos);
    const double mean_ms =
        s.calls == 0 ? 0.0 : total_ms / static_cast<double>(s.calls);
    table.AppendRowUnchecked({rel::Value::String(s.operation),
                              rel::Value::Int(SaturateToInt(s.calls)),
                              rel::Value::Int(SaturateToInt(s.errors)),
                              rel::Value::Int(SaturateToInt(s.slow_queries)),
                              rel::Value::Double(total_ms),
                              rel::Value::Double(mean_ms),
                              rel::Value::Double(NanosToMillis(s.max_nanos))});
  }
  return table;
}

rel::Table StatSessionsTable(const std::vector<SessionStat>& stats) {
  rel::Table table(kStatSessionsView,
                   rel::Schema({{"session", rel::ValueType::kInt},
                                {"user", rel::ValueType::kString},
                                {"operations", rel::ValueType::kInt},
                                {"errors", rel::ValueType::kInt},
                                {"slow_queries", rel::ValueType::kInt},
                                {"total_ms", rel::ValueType::kDouble},
                                {"last_operation", rel::ValueType::kString}}));
  for (const SessionStat& s : stats) {
    table.AppendRowUnchecked({rel::Value::Int(SaturateToInt(s.session_id)),
                              rel::Value::String(s.user),
                              rel::Value::Int(SaturateToInt(s.operations)),
                              rel::Value::Int(SaturateToInt(s.errors)),
                              rel::Value::Int(SaturateToInt(s.slow_queries)),
                              rel::Value::Double(NanosToMillis(s.total_nanos)),
                              rel::Value::String(s.last_operation)});
  }
  return table;
}

rel::Table StatThreadsTable(const MetricsSnapshot& snapshot) {
  rel::Table table(kStatThreadsView, NameValueSchema());
  auto add = [&table](const char* name, int64_t value) {
    table.AppendRowUnchecked(
        {rel::Value::String(name), rel::Value::Int(value)});
  };
  add("configured_threads", static_cast<int64_t>(ConfiguredThreads()));
  const ThreadPool* pool = SharedThreadPoolIfStarted();
  add("pool_started", pool != nullptr ? 1 : 0);
  add("pool_workers",
      pool != nullptr ? static_cast<int64_t>(pool->NumThreads()) : 0);
  add("pool_queue_depth",
      pool != nullptr ? static_cast<int64_t>(pool->QueueDepth()) : 0);
  for (const CounterValue& c : snapshot.counters) {
    if (c.name.rfind("gea.pool.", 0) == 0 ||
        c.name.rfind("gea.parallel_for.", 0) == 0) {
      table.AppendRowUnchecked({rel::Value::String(c.name),
                                rel::Value::Int(SaturateToInt(c.value))});
    }
  }
  return table;
}

rel::Table StatRequestsTable(const std::vector<RequestTraceRecord>& records) {
  struct Group {
    uint64_t count = 0;
    uint64_t slow = 0;
    HistogramValue latency;  // total_nanos, power-of-two buckets
    uint64_t lock_wait_nanos = 0;  // summed; rendered as the group mean
    uint64_t alloc_bytes = 0;      // summed
    uint64_t peak_bytes = 0;       // group max
  };
  // std::map keys sort the output by (op, status, user) for free.
  std::map<std::tuple<std::string, std::string, std::string>, Group> groups;
  for (const RequestTraceRecord& r : records) {
    const char* status =
        StatusCodeName(static_cast<StatusCode>(r.status_code));
    Group& g = groups[std::make_tuple(r.op, std::string(status), r.user)];
    g.count += 1;
    if (r.slow) g.slow += 1;
    g.latency.count += 1;
    g.latency.sum += r.total_nanos;
    g.latency.buckets[Histogram::BucketIndex(r.total_nanos)] += 1;
    g.lock_wait_nanos += r.stages[RequestStage::kLockWait];
    g.alloc_bytes += r.alloc_bytes;
    g.peak_bytes = std::max(g.peak_bytes, r.peak_bytes);
  }

  rel::Table table(kStatRequestsView,
                   rel::Schema({{"op", rel::ValueType::kString},
                                {"status", rel::ValueType::kString},
                                {"user", rel::ValueType::kString},
                                {"count", rel::ValueType::kInt},
                                {"slow", rel::ValueType::kInt},
                                {"mean_ms", rel::ValueType::kDouble},
                                {"p50_ms", rel::ValueType::kDouble},
                                {"p95_ms", rel::ValueType::kDouble},
                                {"p99_ms", rel::ValueType::kDouble},
                                {"lock_wait_ms", rel::ValueType::kDouble},
                                {"alloc_bytes", rel::ValueType::kInt},
                                {"peak_bytes", rel::ValueType::kInt}}));
  for (const auto& [key, g] : groups) {
    const double lock_wait_mean_ms =
        g.count == 0 ? 0.0
                     : NanosToMillis(g.lock_wait_nanos) /
                           static_cast<double>(g.count);
    table.AppendRowUnchecked(
        {rel::Value::String(std::get<0>(key)),
         rel::Value::String(std::get<1>(key)),
         rel::Value::String(std::get<2>(key)),
         rel::Value::Int(SaturateToInt(g.count)),
         rel::Value::Int(SaturateToInt(g.slow)),
         rel::Value::Double(g.latency.Mean() / 1e6),
         rel::Value::Double(NanosToMillis(g.latency.ApproxQuantile(0.50))),
         rel::Value::Double(NanosToMillis(g.latency.ApproxQuantile(0.95))),
         rel::Value::Double(NanosToMillis(g.latency.ApproxQuantile(0.99))),
         rel::Value::Double(lock_wait_mean_ms),
         rel::Value::Int(SaturateToInt(g.alloc_bytes)),
         rel::Value::Int(SaturateToInt(g.peak_bytes))});
  }
  return table;
}

Result<rel::Table> BuildStatView(const std::string& name) {
  if (name == kStatCountersView) {
    return StatCountersTable(MetricsRegistry::Global().Snapshot());
  }
  if (name == kStatHistogramsView) {
    return StatHistogramsTable(MetricsRegistry::Global().Snapshot());
  }
  if (name == kStatOperatorsView) {
    return StatOperatorsTable(TelemetryHub::Global().OperatorStats());
  }
  if (name == kStatSessionsView) {
    return StatSessionsTable(TelemetryHub::Global().SessionStats());
  }
  if (name == kStatThreadsView) {
    return StatThreadsTable(MetricsRegistry::Global().Snapshot());
  }
  if (name == kStatRequestsView) {
    return StatRequestsTable(RequestTraceRing::Global().Snapshot());
  }
  if (name == kStatHistoryView) {
    return StatHistoryTable(TelemetryHistory::Global().Snapshot());
  }
  std::function<rel::Table()> builder;
  {
    std::lock_guard<std::mutex> lock(ProvidersMutex());
    auto it = Providers().find(name);
    if (it != Providers().end()) builder = it->second;
  }
  if (builder) return builder();
  return Status::NotFound("not a stat view: " + name);
}

namespace {

/// Built-in names plus every registered provider name, in display order.
std::vector<std::string> AllStatViewNames() {
  std::vector<std::string> names = {kStatCountersView, kStatHistogramsView,
                                    kStatOperatorsView, kStatSessionsView,
                                    kStatThreadsView,   kStatRequestsView,
                                    kStatHistoryView};
  std::lock_guard<std::mutex> lock(ProvidersMutex());
  for (const auto& [name, builder] : Providers()) names.push_back(name);
  return names;
}

}  // namespace

std::vector<rel::Table> AllStatViews() {
  std::vector<std::string> names = AllStatViewNames();
  std::vector<rel::Table> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.push_back(*BuildStatView(name));
  }
  return out;
}

Status RegisterStatViews(rel::Catalog& catalog) {
  for (const std::string& name : AllStatViewNames()) {
    Status status = catalog.RegisterComputed(
        name, [name] { return *BuildStatView(name); }, /*replace=*/true);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

// ---- JSON rendering ----

std::string TableJson(const rel::Table& table) {
  std::string out = "[";
  const rel::Schema& schema = table.schema();
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (r > 0) out += ",";
    out += "{";
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      if (c > 0) out += ",";
      out += "\"" + JsonEscape(schema.column(c).name) + "\":";
      const rel::Value v = table.At(r, c);
      switch (v.type()) {
        case rel::ValueType::kNull:
          out += "null";
          break;
        case rel::ValueType::kInt:
          out += std::to_string(v.AsInt());
          break;
        case rel::ValueType::kDouble: {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.6f", v.AsDouble());
          out += buf;
          break;
        }
        case rel::ValueType::kString:
          out += "\"" + JsonEscape(v.AsString()) + "\"";
          break;
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string StatViewsJson() {
  std::string out = "{";
  bool first = true;
  for (const rel::Table& table : AllStatViews()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(table.name()) + "\":" + TableJson(table);
  }
  out += "}";
  return out;
}

}  // namespace gea::obs
