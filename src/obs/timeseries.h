#ifndef GEA_OBS_TIMESERIES_H_
#define GEA_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "rel/table.h"

namespace gea::obs {

/// Time-series telemetry: a background harvester samples every counter,
/// gauge and histogram in the global registry at a fixed cadence into a
/// bounded in-memory ring, so "what changed in the last two minutes" is
/// answerable from inside the process — via the gea_stat_history SQL
/// view, /statz?history=1 on the monitor endpoint, or HistorySnapshot()
/// directly. Counters additionally carry their per-interval delta and
/// per-second rate; histograms expand to .count / .p50 / .p99 series.
///
/// The harvester thread doubles as the stalled-request watchdog: each
/// tick it sweeps the InflightRegistry and logs one "stalled_request"
/// record (with the request's span tree so far) for any request that has
/// been executing past the watchdog threshold.
///
/// Enablement follows the GEA_MONITOR_PORT pattern: nothing runs unless
/// asked, either programmatically (GlobalHarvester().Start(options)) or
/// via GEA_STATS_INTERVAL_MS / GEA_WATCHDOG_MS (see StartHarvesterFromEnv,
/// which AnalysisSession calls on construction).

/// One metric's value at one harvest tick. `delta` is the change since
/// the previous tick of the same series (0 at the series' first
/// appearance); `rate` is delta per second of harvest interval, computed
/// only for monotonic series (counters and histogram .count) and 0.0
/// otherwise — gauges can move both ways, so a "rate" would be noise.
struct SeriesPoint {
  std::string name;
  int64_t value = 0;
  int64_t delta = 0;
  double rate = 0.0;
  bool monotonic = false;
};

/// All series sampled at one harvest tick. `sample_id` counts ticks from
/// 1; `nanos` is NowNanos() at the tick (steady clock, like every other
/// GEA timestamp).
struct HistorySample {
  uint64_t sample_id = 0;
  uint64_t nanos = 0;
  std::vector<SeriesPoint> points;  // sorted by name
};

/// The bounded sample ring. All methods are thread-safe (one mutex); a
/// concurrent scrape always sees whole samples, never a tick mid-write.
class TelemetryHistory {
 public:
  static constexpr size_t kDefaultRetention = 120;

  explicit TelemetryHistory(size_t retention = kDefaultRetention);

  TelemetryHistory(const TelemetryHistory&) = delete;
  TelemetryHistory& operator=(const TelemetryHistory&) = delete;

  /// The process-wide history ring (leaked at exit, like MetricsRegistry).
  static TelemetryHistory& Global();

  /// Samples the global metrics registry now: one HistorySample holding
  /// every counter, every gauge, and .count/.p50/.p99 for every
  /// histogram, with deltas/rates against the previous tick. Evicts the
  /// oldest sample beyond the retention cap.
  void Harvest();

  /// Copies the ring, oldest sample first.
  std::vector<HistorySample> Snapshot() const;

  /// Total ticks harvested since construction (not capped by retention).
  uint64_t Harvests() const;

  size_t retention() const { return retention_; }

  /// Drops every sample and all delta baselines. Test-only.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  const size_t retention_;
  uint64_t harvests_ = 0;
  uint64_t last_nanos_ = 0;
  std::deque<HistorySample> samples_;
  std::map<std::string, int64_t> last_values_;  // delta baselines
};

/// Options for one harvester run. `interval_ms` is the sampling cadence;
/// `watchdog_ms`, when set, turns on the stalled-request sweep at the
/// same cadence with that execution-time threshold.
struct HarvesterOptions {
  uint64_t interval_ms = 1000;
  std::optional<uint64_t> watchdog_ms;
};

/// The background sampling thread. Start/Stop are idempotent-safe under
/// one mutex; the destructor stops. The loop harvests into
/// TelemetryHistory::Global() and (when configured) runs the watchdog
/// sweep, then sleeps on a condition variable so Stop() never waits out
/// a full interval.
class Harvester {
 public:
  Harvester() = default;
  ~Harvester();

  Harvester(const Harvester&) = delete;
  Harvester& operator=(const Harvester&) = delete;

  /// Starts the loop. FailedPrecondition (as a false return) when
  /// already running or interval_ms is 0.
  bool Start(const HarvesterOptions& options);

  /// Signals the loop and joins the thread. Idempotent.
  void Stop();

  bool Running() const;

  /// The options of the running (or last) harvester.
  HarvesterOptions options() const;

 private:
  void Loop();

  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  bool stop_ = false;
  bool running_ = false;
  HarvesterOptions options_;
  std::thread thread_;
};

/// The process-wide harvester instance (leaked at exit).
Harvester& GlobalHarvester();

/// Starts the global harvester when GEA_STATS_INTERVAL_MS names a
/// positive interval (milliseconds) and it is not already running;
/// GEA_WATCHDOG_MS, when also set to a positive value, arms the
/// stalled-request watchdog. Both variables are read once. Returns true
/// when a harvester is running after the call. Safe to call often —
/// AnalysisSession construction routes through here.
bool StartHarvesterFromEnv();

/// One watchdog sweep (exposed for tests and for the harvester loop):
/// flags every in-flight request executing for at least `threshold_ms`
/// and emits one "stalled_request" warn record per request — trace id,
/// op, user, elapsed, worker thread, and the span tree recorded so far.
/// Returns how many requests were newly flagged.
size_t WatchdogSweep(uint64_t threshold_ms);

// ---- Rendering ----

/// (sample, ts_ms, name, value, delta, rate) — one row per series point,
/// oldest sample first; ts_ms is the tick's steady-clock time in
/// milliseconds. Backs the gea_stat_history view.
rel::Table StatHistoryTable(const std::vector<HistorySample>& samples);

/// The /statz?history=1 payload:
///   {"retention":120,"harvests":N,"samples":[
///     {"sample":1,"ts_ms":...,"metrics":[
///       {"name":"...","value":..,"delta":..,"rate":..}, ...]}, ...]}
std::string HistoryJson();

}  // namespace gea::obs

#endif  // GEA_OBS_TIMESERIES_H_
