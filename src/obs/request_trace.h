#ifndef GEA_OBS_REQUEST_TRACE_H_
#define GEA_OBS_REQUEST_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gea::obs {

/// Per-request, per-stage latency attribution for the query service.
///
/// The serve layer times each request's pipeline stages (decode, queue
/// wait, execute, WAL append, WAL fsync, encode, write) and — for sampled
/// requests — publishes a RequestTraceRecord into a fixed-capacity
/// sharded ring. The ring feeds three consumers: the gea_stat_requests
/// stat view (rollups by op/status/user), the /tracez?format=chrome
/// endpoint (Perfetto-loadable trace-event JSON), and slow-query triage.
///
/// Stage attribution from layers below serve (the WAL) flows through a
/// thread-local stage sink rather than plumbed-through context: WAL
/// appends run synchronously on the worker thread that executes the
/// request, so StageCollectorScope installed around execution catches
/// them. When no scope is active the cost is one thread-local test.

/// The serve-path stages, in request order. Indexes StageNanos and fixes
/// the wire order of the protocol-v2 stage breakdown.
enum class RequestStage : int {
  kDecode = 0,   // frame bytes -> Request struct (reader thread)
  kQueue = 1,    // admission-queue wait (enqueue -> worker pickup)
  kExecute = 2,  // Dispatch/Execute on the worker (includes WAL stages)
  kWalAppend = 3,  // WAL record framing + file append (subset of execute)
  kWalFsync = 4,   // WAL fsync (subset of execute)
  kEncode = 5,   // Response struct -> payload bytes
  kWrite = 6,    // framed payload -> socket
  kLockWait = 7,  // session-lock acquisition wait (subset of execute)
};
inline constexpr int kRequestStageCount = 8;

/// Lower-case stable stage name ("decode", "queue_wait", "execute",
/// "wal_append", "wal_fsync", "encode", "write", "lock_wait").
const char* RequestStageName(RequestStage stage);

/// Nanoseconds per stage, indexed by RequestStage.
struct StageNanos {
  std::array<uint64_t, kRequestStageCount> nanos{};

  uint64_t& operator[](RequestStage s) { return nanos[static_cast<int>(s)]; }
  uint64_t operator[](RequestStage s) const {
    return nanos[static_cast<int>(s)];
  }
};

/// Installs a thread-local stage sink for the scope's lifetime. Nested
/// scopes shadow (and restore) the outer one.
class StageCollectorScope {
 public:
  StageCollectorScope();
  ~StageCollectorScope();

  StageCollectorScope(const StageCollectorScope&) = delete;
  StageCollectorScope& operator=(const StageCollectorScope&) = delete;

  StageNanos& stages() { return stages_; }
  /// Span trees handed over by ContributeRequestSpans during the scope.
  std::vector<SpanRecord>& spans() { return spans_; }

 private:
  StageNanos stages_;
  std::vector<SpanRecord> spans_;
  StageCollectorScope* previous_;
};

/// True when a StageCollectorScope is active on the calling thread.
bool StageCollectionActive();

/// Adds `nanos` to `stage` in the active scope; no-op when none.
void AddStageNanos(RequestStage stage, uint64_t nanos);

/// Nanoseconds accumulated for `stage` in the active scope (0 when none).
uint64_t CollectedStageNanos(RequestStage stage);

/// Moves a finished operation's span tree into the active scope (no-op
/// when none). The workbench calls this after each Logged capture so the
/// serve layer can attach execution spans to the request's trace record.
void ContributeRequestSpans(std::vector<SpanRecord> spans);

/// ---- Sampling ----
///
/// Head sampling is 1-in-N: GEA_TRACE_SAMPLE=N samples every Nth request
/// (0 or unset = never). A programmatic override (tests, benches) beats
/// the env var. Independently, clients can force sampling per request via
/// the wire-level sampled flag, and the serve layer tail-samples any
/// request that crosses the slow-query threshold.

uint64_t TraceSampleEvery();
void SetTraceSampleOverride(std::optional<uint64_t> every);

class ScopedTraceSample {
 public:
  explicit ScopedTraceSample(uint64_t every);
  ~ScopedTraceSample();

  ScopedTraceSample(const ScopedTraceSample&) = delete;
  ScopedTraceSample& operator=(const ScopedTraceSample&) = delete;

 private:
  uint64_t previous_;
  bool had_previous_;
};

/// True for every Nth call (process-wide counter) when sampling is on.
bool SampleThisRequest();

/// Allocates a server-assigned trace id (never returns 0).
uint64_t NextTraceId();

/// One served request, as published into the trace ring.
struct RequestTraceRecord {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  std::string op;
  std::string user;         // authenticated user, "" before login
  int status_code = 0;      // gea::StatusCode numeric value
  bool slow = false;        // captured by the slow-query escape hatch
  uint64_t start_nanos = 0;  // NowNanos() when decode began
  uint64_t total_nanos = 0;  // decode start -> response written
  StageNanos stages;
  uint64_t alloc_bytes = 0;  // bytes the execution allocated (accounted)
  uint64_t peak_bytes = 0;   // high-water mark of live accounted bytes
  uint32_t reader_tid = 0;  // connection reader thread (decode)
  uint32_t worker_tid = 0;  // worker thread (execute/encode/write)
  std::vector<SpanRecord> spans;  // execution span tree; empty when the
                                  // record was tail-sampled (slow) only
};

/// Fixed-capacity sharded ring of the most recent sampled requests.
/// Publish is one atomic fetch-add to claim a slot plus one per-slot
/// mutex — concurrent publishers to different slots never contend, and
/// readers lock one slot at a time, so a reader can never observe a torn
/// record.
class RequestTraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit RequestTraceRing(size_t capacity = kDefaultCapacity);

  RequestTraceRing(const RequestTraceRing&) = delete;
  RequestTraceRing& operator=(const RequestTraceRing&) = delete;

  /// The process-wide ring (leaked at exit, like TraceCollector).
  static RequestTraceRing& Global();

  void Publish(RequestTraceRecord record);

  /// Copies the live records, oldest first.
  std::vector<RequestTraceRecord> Snapshot() const;

  /// Total records ever published (>= capacity once wrapped).
  uint64_t Published() const;

  size_t capacity() const { return capacity_; }

  /// Empties the ring (test isolation).
  void Clear();

 private:
  struct Slot {
    mutable std::mutex mu;
    uint64_t seq = 0;  // 1-based publish index; 0 = never written
    RequestTraceRecord record;
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

/// One request currently executing on a worker, as seen by the stalled-
/// request watchdog (obs/timeseries.h). `mark` is TraceCollector::Mark()
/// at registration, so the watchdog can snapshot the spans recorded so
/// far without draining them from the request's own capture.
struct InflightRequest {
  uint64_t token = 0;     // registry handle (assigned by Register)
  uint64_t trace_id = 0;  // 0 when the request is not sampled
  std::string op;
  std::string user;
  uint64_t start_nanos = 0;  // NowNanos() at worker pickup
  uint64_t mark = 0;         // trace-collector mark at registration
  uint32_t worker_tid = 0;
  bool flagged = false;  // the watchdog already logged this request
};

/// Registry of requests currently executing, so the watchdog can report
/// a request that is *stuck* — something no after-the-fact ring can do.
/// Registration is two map operations under one mutex per request; the
/// watchdog reads a snapshot at its sampling cadence.
class InflightRegistry {
 public:
  InflightRegistry() = default;

  InflightRegistry(const InflightRegistry&) = delete;
  InflightRegistry& operator=(const InflightRegistry&) = delete;

  /// The process-wide registry (leaked at exit, like RequestTraceRing).
  static InflightRegistry& Global();

  /// Registers an executing request; returns its token (never 0).
  uint64_t Register(InflightRequest info);
  void Deregister(uint64_t token);

  /// Copies the live entries (registration order not guaranteed).
  std::vector<InflightRequest> Snapshot() const;

  /// Marks `token` as watchdog-flagged. Returns true when this call was
  /// the first to flag it (the caller should log), false when the entry
  /// was already flagged or has finished — one log line per request.
  bool Flag(uint64_t token);

  size_t Size() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_token_ = 1;
  std::map<uint64_t, InflightRequest> entries_;
};

/// RAII registration with the global registry for one request's
/// execution window on the worker thread.
class ScopedInflightRequest {
 public:
  explicit ScopedInflightRequest(InflightRequest info);
  ~ScopedInflightRequest();

  ScopedInflightRequest(const ScopedInflightRequest&) = delete;
  ScopedInflightRequest& operator=(const ScopedInflightRequest&) = delete;

  uint64_t token() const { return token_; }

 private:
  uint64_t token_;
};

/// Renders records as Chrome trace-event JSON ({"traceEvents": [...]}),
/// loadable in Perfetto / chrome://tracing. Stage slices land on the real
/// reader/worker thread tracks, execution spans on the threads that
/// recorded them (ParallelFor helpers included), and WAL fsyncs are
/// flow-connected to their request slice. Timestamps are microseconds
/// relative to the earliest record; events are sorted by timestamp.
std::string ChromeTraceJson(const std::vector<RequestTraceRecord>& records);

}  // namespace gea::obs

#endif  // GEA_OBS_REQUEST_TRACE_H_
