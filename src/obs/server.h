#ifndef GEA_OBS_SERVER_H_
#define GEA_OBS_SERVER_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace gea::obs {

/// Embedded, opt-in HTTP monitoring endpoint. One blocking accept loop on
/// its own thread, loopback only, serving read-only telemetry:
///
///   /healthz   liveness probe ("ok")
///   /metrics   Prometheus text exposition of the global registry
///   /statz     the stat views as JSON; ?history=1 for the telemetry
///              harvester's sample ring (obs/timeseries.h)
///   /tracez    the last published OperationProfile as JSON;
///              ?n=K for the last K profiles (newest first);
///              ?format=chrome for the request trace ring as
///              Chrome trace-event JSON (Perfetto-loadable)
///
/// The server never starts unless asked: either programmatically
/// (GlobalMonitor().Start(port)) or via GEA_MONITOR_PORT (see
/// StartMonitorFromEnv, which AnalysisSession calls on construction).
class MonitorServer {
 public:
  MonitorServer() = default;
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, readable through
  /// Port()) and starts the serve thread. FailedPrecondition when already
  /// running; IoError when the socket can not be set up.
  Status Start(int port);

  /// Shuts the listen socket down and joins the serve thread. Idempotent.
  void Stop();

  bool Running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port while running, 0 otherwise.
  int Port() const { return port_.load(std::memory_order_acquire); }

 private:
  void ServeLoop(int listen_fd);

  std::mutex mu_;  // serializes Start/Stop transitions
  std::thread thread_;
  int listen_fd_ = -1;
  std::atomic<int> port_{0};
  std::atomic<bool> running_{false};
};

/// The process-wide monitor instance (leaked at exit).
MonitorServer& GlobalMonitor();

/// Starts the global monitor on GEA_MONITOR_PORT when the variable names
/// a port in [1, 65535] and the monitor is not already running. OK (and a
/// no-op) when the variable is unset/empty/invalid. Safe to call often —
/// AnalysisSession construction routes through here.
Status StartMonitorFromEnv();

/// Profiles kept by the /tracez ring (a deque of recent publishes; the
/// old endpoint was a single last-writer-wins slot).
inline constexpr size_t kProfileRingCapacity = 32;

/// Appends `profile` to the /tracez profile ring (the oldest entry is
/// evicted at capacity).
void PublishProfile(const OperationProfile& profile);

/// Copy of the most recently published profile, if any. Exposed for
/// tests.
std::optional<OperationProfile> LastPublishedProfile();

/// Copies of the last min(n, ring size) published profiles, newest
/// first, snapshotted under one lock (a publish can never tear the list).
std::vector<OperationProfile> RecentProfiles(size_t n);

/// The /tracez payload: the last published profile as one JSON object,
/// or {"operation":null} when nothing has been published.
std::string TracezJson();

/// The /tracez?n=K payload: {"count":<total in ring>,"profiles":[...]}
/// with the newest profile first. Rendered from one consistent snapshot.
std::string TracezJson(size_t n);

namespace internal {

/// One routed response, decoupled from the socket for unit tests.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Routes a request path to its payload; unknown paths get a 404. The
/// optional raw query string ("format=chrome&n=8") selects variants on
/// /tracez; other routes ignore it.
HttpResponse HandlePath(const std::string& path,
                        const std::string& query = "");

/// Extracts the path from an HTTP request head ("GET /statz?x=1 HTTP/1.1
/// ...") — empty when the request line is malformed or not a GET. The
/// query string is stripped; ParseRequestQuery recovers it.
std::string ParseRequestPath(const std::string& head);

/// Extracts the raw query string from a request head ("" when absent).
std::string ParseRequestQuery(const std::string& head);

}  // namespace internal

}  // namespace gea::obs

#endif  // GEA_OBS_SERVER_H_
