#ifndef GEA_OBS_STATVIEWS_H_
#define GEA_OBS_STATVIEWS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "rel/catalog.h"
#include "rel/table.h"

namespace gea::obs {

/// Relational stat views — the pg_stat_* idiom for GEA. Cumulative
/// telemetry (registry metrics, per-operator and per-session aggregates,
/// thread-pool state) is synthesized into ordinary read-only rel::Tables
/// so the SQL layer can select/join/sort over live numbers:
///
///   SELECT name, value FROM gea_stat_counters ORDER BY value DESC
///
/// The views are registered as computed tables (Catalog::RegisterComputed)
/// so every query re-materializes them from the live sources.

inline constexpr const char* kStatCountersView = "gea_stat_counters";
inline constexpr const char* kStatHistogramsView = "gea_stat_histograms";
inline constexpr const char* kStatOperatorsView = "gea_stat_operators";
inline constexpr const char* kStatSessionsView = "gea_stat_sessions";
inline constexpr const char* kStatThreadsView = "gea_stat_threads";
/// Rollup of the request trace ring by (op, status, user): count, slow
/// count, mean and approximate p50/p95/p99 latency in milliseconds.
inline constexpr const char* kStatRequestsView = "gea_stat_requests";
/// Registered by gea_store (see below), present in any binary linking it.
inline constexpr const char* kStatStorageView = "gea_stat_storage";
/// Registered by gea_serve: one row per live QueryServer (port, queue
/// depth, admission rejections, bytes moved).
inline constexpr const char* kStatServeView = "gea_stat_serve";
/// Time-series metric samples from the telemetry harvester ring (see
/// obs/timeseries.h): one row per (sample, metric) with value, delta and
/// per-second rate.
inline constexpr const char* kStatHistoryView = "gea_stat_history";
/// Registered by gea_txn: MVCC epoch + group-commit telemetry (live
/// epoch, pinned readers, retired bytes, batch-size and fsync
/// amortization histograms).
inline constexpr const char* kStatTransactionsView = "gea_stat_transactions";

/// Extension point: a higher layer contributes a stat view without obs
/// linking against it (gea_store registers gea_stat_storage this way at
/// static-init time). Registering a name again replaces its builder.
/// Provider views ride along in BuildStatView / AllStatViews /
/// RegisterStatViews / StatViewsJson exactly like the built-ins.
void RegisterStatViewProvider(const std::string& name,
                              std::function<rel::Table()> builder);

/// Cumulative per-operator aggregates (populate, create_gap, ...) across
/// every session of the process, pg_stat_statements-style.
struct OperatorStat {
  std::string operation;
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t slow_queries = 0;  // calls at/over the slow-query threshold
  uint64_t total_nanos = 0;
  uint64_t max_nanos = 0;
};

/// One live AnalysisSession, pg_stat_activity-style.
struct SessionStat {
  uint64_t session_id = 0;
  std::string user;  // empty until login
  uint64_t operations = 0;
  uint64_t errors = 0;
  uint64_t slow_queries = 0;
  uint64_t total_nanos = 0;
  std::string last_operation;
};

/// Process-wide aggregation point the workbench reports into. All methods
/// are thread-safe (one mutex; telemetry writes are one map update), so
/// the monitoring endpoint can read while sessions record.
class TelemetryHub {
 public:
  TelemetryHub() = default;

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// The process-wide hub (leaked at exit, like MetricsRegistry).
  static TelemetryHub& Global();

  /// Registers a live session; returns its id (never 0).
  uint64_t RegisterSession();
  void DeregisterSession(uint64_t session_id);
  void SetSessionUser(uint64_t session_id, const std::string& user);

  /// Folds one operator invocation into the session and operator stats.
  void RecordOperation(uint64_t session_id, const std::string& operation,
                       uint64_t elapsed_nanos, bool ok, bool slow);

  std::vector<OperatorStat> OperatorStats() const;  // sorted by operation
  std::vector<SessionStat> SessionStats() const;    // sorted by id

  /// Drops every operator aggregate and live-session record. Test-only.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, SessionStat> sessions_;
  std::map<std::string, OperatorStat> operators_;
};

/// Move-only RAII registration of one session with the global hub — the
/// workbench holds one per AnalysisSession, so sessions appear in
/// gea_stat_sessions for exactly their lifetime.
class SessionTelemetryHandle {
 public:
  SessionTelemetryHandle();
  ~SessionTelemetryHandle();

  SessionTelemetryHandle(SessionTelemetryHandle&& other) noexcept;
  SessionTelemetryHandle& operator=(SessionTelemetryHandle&& other) noexcept;
  SessionTelemetryHandle(const SessionTelemetryHandle&) = delete;
  SessionTelemetryHandle& operator=(const SessionTelemetryHandle&) = delete;

  uint64_t id() const { return id_; }
  void SetUser(const std::string& user) const;
  void RecordOperation(const std::string& operation, uint64_t elapsed_nanos,
                       bool ok, bool slow) const;

 private:
  uint64_t id_ = 0;  // 0 after being moved from
};

// ---- Table builders ----
// Pure functions from snapshots to tables, for tests and custom plumbing.

/// (name string, value int) — one row per registered counter.
rel::Table StatCountersTable(const MetricsSnapshot& snapshot);
/// (name, count, sum, mean, p50, p95, p99) — one row per histogram;
/// quantiles are bucket upper bounds, capped at INT64_MAX.
rel::Table StatHistogramsTable(const MetricsSnapshot& snapshot);
/// (operation, calls, errors, slow_queries, total_ms, mean_ms, max_ms).
rel::Table StatOperatorsTable(const std::vector<OperatorStat>& stats);
/// (session, user, operations, errors, slow_queries, total_ms,
///  last_operation).
rel::Table StatSessionsTable(const std::vector<SessionStat>& stats);
/// (name, value) key/value rows: configured_threads, pool_workers,
/// pool_queue_depth, plus the gea.pool.* / gea.parallel_for.* counters
/// from `snapshot`. Never starts the pool.
rel::Table StatThreadsTable(const MetricsSnapshot& snapshot);
/// (op, status, user, count, slow, mean_ms, p50_ms, p95_ms, p99_ms,
/// lock_wait_ms, alloc_bytes, peak_bytes) — one row per distinct
/// (op, status, user) in the trace ring, sorted by that key. Quantiles
/// come from a power-of-two latency histogram per group (bucket upper
/// bounds, like gea_stat_histograms); lock_wait_ms is the group mean,
/// alloc_bytes the group sum, peak_bytes the group max — all exact for
/// single-request groups, which the e2e agreement test relies on.
rel::Table StatRequestsTable(const std::vector<RequestTraceRecord>& records);

/// Builds the named stat view from the live global sources (registry,
/// hub, shared pool). Fails with NotFound for a non-view name.
Result<rel::Table> BuildStatView(const std::string& name);

/// All built-in and provider views, materialized from the live sources.
std::vector<rel::Table> AllStatViews();

/// Registers every view in `catalog` as computed tables (replacing
/// any previous registration), so SQL over the catalog reads live data.
Status RegisterStatViews(rel::Catalog& catalog);

// ---- JSON rendering (the /statz payload) ----

/// Renders a table as a JSON array of row objects keyed by column name.
std::string TableJson(const rel::Table& table);

/// {"gea_stat_counters":[...], ..., "gea_stat_threads":[...]}
std::string StatViewsJson();

}  // namespace gea::obs

#endif  // GEA_OBS_STATVIEWS_H_
