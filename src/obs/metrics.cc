#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace gea::obs {

namespace internal {

bool ParseBoolFlag(const char* text) {
  if (text == nullptr) return false;
  return std::strcmp(text, "1") == 0 || std::strcmp(text, "true") == 0 ||
         std::strcmp(text, "on") == 0 || std::strcmp(text, "yes") == 0;
}

}  // namespace internal

namespace {

/// Effective enable state: -1 unresolved (resolve GEA_METRICS on first
/// read), 0 off, 1 on. A single relaxed load on the hot path.
std::atomic<int> g_metrics_state{-1};

/// What the state resolves to when no override is active.
int EnvMetricsState() {
  static const int cached =
      internal::ParseBoolFlag(std::getenv("GEA_METRICS")) ? 1 : 0;
  return cached;
}

}  // namespace

bool MetricsEnabled() {
  int state = g_metrics_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvMetricsState();
    g_metrics_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetMetricsOverride(std::optional<bool> enabled) {
  g_metrics_state.store(enabled.has_value() ? (*enabled ? 1 : 0)
                                            : EnvMetricsState(),
                        std::memory_order_relaxed);
}

ScopedMetricsEnable::ScopedMetricsEnable(bool enabled)
    : previous_(MetricsEnabled()) {
  SetMetricsOverride(enabled);
}

ScopedMetricsEnable::~ScopedMetricsEnable() { SetMetricsOverride(previous_); }

size_t Histogram::BucketIndex(uint64_t value) {
  const size_t width = static_cast<size_t>(std::bit_width(value));
  return std::min(width, kHistogramBuckets - 1);
}

uint64_t HistogramBucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void Histogram::ResetForTest() {
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

uint64_t HistogramValue::ApproxQuantile(double p) const {
  if (count == 0) return 0;
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target && cumulative > 0) {
      return HistogramBucketUpperBound(i);
    }
  }
  return HistogramBucketUpperBound(kHistogramBuckets - 1);
}

std::vector<CounterDelta> DiffCounters(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  std::vector<CounterDelta> out;
  size_t i = 0;
  for (const CounterValue& cur : after.counters) {
    while (i < before.counters.size() && before.counters[i].name < cur.name) {
      ++i;
    }
    uint64_t prev = 0;
    if (i < before.counters.size() && before.counters[i].name == cur.name) {
      prev = before.counters[i].value;
    }
    if (cur.value > prev) out.push_back({cur.name, cur.value - prev});
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramValue value;
    value.name = name;
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      value.buckets[i] = histogram->BucketCount(i);
    }
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
}

}  // namespace gea::obs
