#ifndef GEA_OBS_CLOCK_H_
#define GEA_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace gea::obs {

/// The one clock every timing facility in GEA reads: a monotonic
/// (steady) clock, never the wall clock — measurements must not jump when
/// NTP adjusts the system time. `Stopwatch`, `TraceSpan` and the latency
/// histograms all derive their readings from NowNanos().
using Clock = std::chrono::steady_clock;

/// Nanoseconds on the monotonic clock. The epoch is unspecified (only
/// differences are meaningful).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace gea::obs

#endif  // GEA_OBS_CLOCK_H_
