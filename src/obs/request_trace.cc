#include "obs/request_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "obs/export.h"

namespace gea::obs {

namespace {

const char* const kStageNames[kRequestStageCount] = {
    "decode", "queue_wait", "execute", "wal_append",
    "wal_fsync", "encode", "write", "lock_wait",
};

/// Active stage sink for this thread (innermost scope wins).
thread_local StageCollectorScope* t_stage_sink = nullptr;

/// Sampling override: any value >= 0 beats the env var; -1 = unset.
std::atomic<int64_t> g_sample_override{-1};

uint64_t EnvSampleEvery() {
  static const uint64_t cached = [] {
    const char* raw = std::getenv("GEA_TRACE_SAMPLE");
    if (raw == nullptr || *raw == '\0') return uint64_t{0};
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    return (end == raw) ? uint64_t{0} : static_cast<uint64_t>(value);
  }();
  return cached;
}

std::atomic<uint64_t> g_sample_counter{0};
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

const char* RequestStageName(RequestStage stage) {
  return kStageNames[static_cast<int>(stage)];
}

StageCollectorScope::StageCollectorScope() : previous_(t_stage_sink) {
  t_stage_sink = this;
}

StageCollectorScope::~StageCollectorScope() { t_stage_sink = previous_; }

bool StageCollectionActive() { return t_stage_sink != nullptr; }

void AddStageNanos(RequestStage stage, uint64_t nanos) {
  if (t_stage_sink != nullptr) t_stage_sink->stages()[stage] += nanos;
}

uint64_t CollectedStageNanos(RequestStage stage) {
  return t_stage_sink != nullptr ? t_stage_sink->stages()[stage] : 0;
}

void ContributeRequestSpans(std::vector<SpanRecord> spans) {
  if (t_stage_sink == nullptr || spans.empty()) return;
  std::vector<SpanRecord>& sink = t_stage_sink->spans();
  sink.insert(sink.end(), std::make_move_iterator(spans.begin()),
              std::make_move_iterator(spans.end()));
}

uint64_t TraceSampleEvery() {
  const int64_t override_value =
      g_sample_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return static_cast<uint64_t>(override_value);
  return EnvSampleEvery();
}

void SetTraceSampleOverride(std::optional<uint64_t> every) {
  g_sample_override.store(
      every.has_value() ? static_cast<int64_t>(*every) : -1,
      std::memory_order_relaxed);
}

ScopedTraceSample::ScopedTraceSample(uint64_t every) {
  const int64_t previous = g_sample_override.load(std::memory_order_relaxed);
  had_previous_ = previous >= 0;
  previous_ = had_previous_ ? static_cast<uint64_t>(previous) : 0;
  SetTraceSampleOverride(every);
}

ScopedTraceSample::~ScopedTraceSample() {
  SetTraceSampleOverride(had_previous_ ? std::optional<uint64_t>(previous_)
                                       : std::nullopt);
}

bool SampleThisRequest() {
  const uint64_t every = TraceSampleEvery();
  if (every == 0) return false;
  return g_sample_counter.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

uint64_t NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

RequestTraceRing::RequestTraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

RequestTraceRing& RequestTraceRing::Global() {
  static RequestTraceRing* ring = new RequestTraceRing();
  return *ring;
}

void RequestTraceRing::Publish(RequestTraceRecord record) {
  const uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  // A slower publisher racing on a wrapped slot must not clobber a newer
  // record with an older one.
  if (slot.seq > index + 1) return;
  slot.seq = index + 1;
  slot.record = std::move(record);
}

std::vector<RequestTraceRecord> RequestTraceRing::Snapshot() const {
  std::vector<std::pair<uint64_t, RequestTraceRecord>> live;
  live.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.seq > 0) live.emplace_back(slot.seq, slot.record);
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RequestTraceRecord> out;
  out.reserve(live.size());
  for (auto& entry : live) out.push_back(std::move(entry.second));
  return out;
}

uint64_t RequestTraceRing::Published() const {
  return next_.load(std::memory_order_relaxed);
}

void RequestTraceRing::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.seq = 0;
    slot.record = RequestTraceRecord();
  }
  next_.store(0, std::memory_order_relaxed);
}

// ---- InflightRegistry ----

InflightRegistry& InflightRegistry::Global() {
  static InflightRegistry* registry = new InflightRegistry();
  return *registry;
}

uint64_t InflightRegistry::Register(InflightRequest info) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  info.token = token;
  entries_[token] = std::move(info);
  return token;
}

void InflightRegistry::Deregister(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(token);
}

std::vector<InflightRequest> InflightRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InflightRequest> out;
  out.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) out.push_back(entry);
  return out;
}

bool InflightRegistry::Flag(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(token);
  if (it == entries_.end() || it->second.flagged) return false;
  it->second.flagged = true;
  return true;
}

size_t InflightRegistry::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

ScopedInflightRequest::ScopedInflightRequest(InflightRequest info)
    : token_(InflightRegistry::Global().Register(std::move(info))) {}

ScopedInflightRequest::~ScopedInflightRequest() {
  InflightRegistry::Global().Deregister(token_);
}

namespace {

/// One trace event, pre-rendered except for ordering by timestamp.
struct PendingEvent {
  double ts_us = 0;
  std::string json;
};

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

double ToUs(uint64_t nanos, uint64_t base) {
  return static_cast<double>(nanos - base) / 1e3;
}

double DurUs(uint64_t nanos) { return static_cast<double>(nanos) / 1e3; }

/// A complete ("X") slice event.
std::string SliceJson(const char* cat, const std::string& name, uint32_t tid,
                      double ts_us, double dur_us, const std::string& args) {
  std::string out;
  Appendf(out,
          "{\"ph\":\"X\",\"cat\":\"%s\",\"name\":\"%s\",\"pid\":1,"
          "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}",
          cat, JsonEscape(name).c_str(), tid, ts_us, dur_us, args.c_str());
  return out;
}

std::string StageArgs(uint64_t trace_id, RequestStage stage) {
  std::string out;
  Appendf(out, "\"trace_id\":%" PRIu64 ",\"stage\":\"%s\"", trace_id,
          RequestStageName(stage));
  return out;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<RequestTraceRecord>& records) {
  // Base timestamp: earliest instant across records and their spans, so
  // exported timestamps stay small and positive.
  uint64_t base = 0;
  bool have_base = false;
  for (const RequestTraceRecord& r : records) {
    if (!have_base || r.start_nanos < base) base = r.start_nanos;
    have_base = true;
    for (const SpanRecord& s : r.spans) {
      if (s.start_nanos < base) base = s.start_nanos;
    }
  }

  // Thread names: workers beat readers beat span-only pool threads.
  std::map<uint32_t, const char*> thread_kind;
  for (const RequestTraceRecord& r : records) {
    for (const SpanRecord& s : r.spans) {
      if (s.tid != 0) thread_kind.emplace(s.tid, "pool");
    }
  }
  for (const RequestTraceRecord& r : records) {
    if (r.reader_tid != 0) thread_kind[r.reader_tid] = "reader";
  }
  for (const RequestTraceRecord& r : records) {
    if (r.worker_tid != 0) thread_kind[r.worker_tid] = "worker";
  }

  std::vector<PendingEvent> events;
  for (const RequestTraceRecord& r : records) {
    const StageNanos& st = r.stages;
    const uint64_t decode_end = r.start_nanos + st[RequestStage::kDecode];
    const uint64_t exec_start = decode_end + st[RequestStage::kQueue];
    const uint64_t exec_end = exec_start + st[RequestStage::kExecute];
    const uint64_t encode_end = exec_end + st[RequestStage::kEncode];

    // Request envelope on the worker track: queue wait through write.
    {
      std::string args;
      Appendf(args,
              "\"trace_id\":%" PRIu64 ",\"request_id\":%" PRIu64
              ",\"user\":\"%s\",\"status\":%d,\"slow\":%s",
              r.trace_id, r.request_id, JsonEscape(r.user).c_str(),
              r.status_code, r.slow ? "true" : "false");
      for (int i = 0; i < kRequestStageCount; ++i) {
        Appendf(args, ",\"%s_ns\":%" PRIu64,
                kStageNames[i], st.nanos[i]);
      }
      Appendf(args, ",\"alloc_bytes\":%" PRIu64 ",\"peak_bytes\":%" PRIu64,
              r.alloc_bytes, r.peak_bytes);
      const uint64_t envelope =
          st[RequestStage::kQueue] + st[RequestStage::kExecute] +
          st[RequestStage::kEncode] + st[RequestStage::kWrite];
      events.push_back({ToUs(decode_end, base),
                        SliceJson("request", r.op, r.worker_tid,
                                  ToUs(decode_end, base), DurUs(envelope),
                                  args)});
    }

    // Stage slices on their real tracks. Decode happens on the reader
    // thread; everything after queue pickup on the worker. WAL stages are
    // accumulated sub-intervals of execute, rendered nested at its start.
    events.push_back({ToUs(r.start_nanos, base),
                      SliceJson("stage", "decode", r.reader_tid,
                                ToUs(r.start_nanos, base),
                                DurUs(st[RequestStage::kDecode]),
                                StageArgs(r.trace_id, RequestStage::kDecode))});
    events.push_back({ToUs(decode_end, base),
                      SliceJson("stage", "queue_wait", r.worker_tid,
                                ToUs(decode_end, base),
                                DurUs(st[RequestStage::kQueue]),
                                StageArgs(r.trace_id, RequestStage::kQueue))});
    events.push_back(
        {ToUs(exec_start, base),
         SliceJson("stage", "execute", r.worker_tid, ToUs(exec_start, base),
                   DurUs(st[RequestStage::kExecute]),
                   StageArgs(r.trace_id, RequestStage::kExecute))});
    if (st[RequestStage::kLockWait] > 0) {
      events.push_back(
          {ToUs(exec_start, base),
           SliceJson("stage", "lock_wait", r.worker_tid,
                     ToUs(exec_start, base),
                     DurUs(st[RequestStage::kLockWait]),
                     StageArgs(r.trace_id, RequestStage::kLockWait))});
    }
    if (st[RequestStage::kWalAppend] > 0) {
      events.push_back(
          {ToUs(exec_start, base),
           SliceJson("stage", "wal_append", r.worker_tid,
                     ToUs(exec_start, base),
                     DurUs(st[RequestStage::kWalAppend]),
                     StageArgs(r.trace_id, RequestStage::kWalAppend))});
    }
    if (st[RequestStage::kWalFsync] > 0) {
      const uint64_t fsync_start = exec_start + st[RequestStage::kWalAppend];
      events.push_back(
          {ToUs(fsync_start, base),
           SliceJson("stage", "wal_fsync", r.worker_tid,
                     ToUs(fsync_start, base),
                     DurUs(st[RequestStage::kWalFsync]),
                     StageArgs(r.trace_id, RequestStage::kWalFsync))});
    }
    events.push_back(
        {ToUs(exec_end, base),
         SliceJson("stage", "encode", r.worker_tid, ToUs(exec_end, base),
                   DurUs(st[RequestStage::kEncode]),
                   StageArgs(r.trace_id, RequestStage::kEncode))});
    events.push_back(
        {ToUs(encode_end, base),
         SliceJson("stage", "write", r.worker_tid, ToUs(encode_end, base),
                   DurUs(st[RequestStage::kWrite]),
                   StageArgs(r.trace_id, RequestStage::kWrite))});

    // Execution span tree on the threads that recorded it.
    for (const SpanRecord& s : r.spans) {
      std::string args;
      Appendf(args,
              "\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
              ",\"parent_id\":%" PRIu64,
              r.trace_id, s.id, s.parent_id);
      events.push_back({ToUs(s.start_nanos, base),
                        SliceJson("span", s.name, s.tid,
                                  ToUs(s.start_nanos, base),
                                  DurUs(s.duration_nanos), args)});
      // Flow-connect each WAL fsync to its request envelope so Perfetto
      // draws the commit arrow even when pool threads interleave.
      if (s.name == "wal_fsync") {
        std::string flow_start;
        Appendf(flow_start,
                "{\"ph\":\"s\",\"cat\":\"wal\",\"name\":\"commit\","
                "\"id\":%" PRIu64 ",\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
                s.id, r.worker_tid, ToUs(decode_end, base));
        events.push_back({ToUs(decode_end, base), std::move(flow_start)});
        std::string flow_end;
        Appendf(flow_end,
                "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"wal\","
                "\"name\":\"commit\",\"id\":%" PRIu64
                ",\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
                s.id, s.tid, ToUs(s.start_nanos, base));
        events.push_back({ToUs(s.start_nanos, base), std::move(flow_end)});
      }
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  // The process-name metadata event doubles as the unconditional first
  // element, so every later element can just prefix a comma.
  std::string out =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"gea_server\"}}";
  for (const auto& [tid, kind] : thread_kind) {
    std::string meta;
    Appendf(meta,
            ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%u,"
            "\"args\":{\"name\":\"%s-%u\"}}",
            tid, kind, tid);
    out += meta;
  }
  for (const PendingEvent& event : events) {
    out += ",";
    out += event.json;
  }
  out += "]}";
  return out;
}

}  // namespace gea::obs
