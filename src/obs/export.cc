#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>

#include "obs/clock.h"

namespace gea::obs {

namespace {

/// Steady-clock reading captured at this translation unit's dynamic
/// initialization — effectively process start, which is all the
/// gea_uptime_seconds gauge needs (only differences are meaningful).
const uint64_t kProcessStartNanos = NowNanos();

/// Keep in sync with the project() version in the top-level CMakeLists.
constexpr const char* kGeaVersion = "1.0.0";

const char* BuildArch() {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "unknown";
#endif
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  // The first character may not be a digit in the exposition grammar.
  if (name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderTable(const MetricsSnapshot& snapshot) {
  std::string out;
  auto section = [&out](const char* title) {
    out += title;
    out += "\n";
  };
  if (!snapshot.counters.empty()) {
    section("counters:");
    size_t width = 0;
    for (const CounterValue& c : snapshot.counters) {
      width = std::max(width, c.name.size());
    }
    for (const CounterValue& c : snapshot.counters) {
      char line[512];
      std::snprintf(line, sizeof(line), "  %-*s  %llu\n",
                    static_cast<int>(width), c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  if (!snapshot.gauges.empty()) {
    section("gauges:");
    size_t width = 0;
    for (const GaugeValue& g : snapshot.gauges) {
      width = std::max(width, g.name.size());
    }
    for (const GaugeValue& g : snapshot.gauges) {
      char line[512];
      std::snprintf(line, sizeof(line), "  %-*s  %lld\n",
                    static_cast<int>(width), g.name.c_str(),
                    static_cast<long long>(g.value));
      out += line;
    }
  }
  if (!snapshot.histograms.empty()) {
    section("histograms:");
    size_t width = 0;
    for (const HistogramValue& h : snapshot.histograms) {
      width = std::max(width, h.name.size());
    }
    for (const HistogramValue& h : snapshot.histograms) {
      char line[512];
      std::snprintf(line, sizeof(line),
                    "  %-*s  count=%llu mean=%.1f p50<=%llu p95<=%llu\n",
                    static_cast<int>(width), h.name.c_str(),
                    static_cast<unsigned long long>(h.count), h.Mean(),
                    static_cast<unsigned long long>(h.ApproxQuantile(0.50)),
                    static_cast<unsigned long long>(h.ApproxQuantile(0.95)));
      out += line;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string RenderJsonLines(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterValue& c : snapshot.counters) {
    out += "{\"type\":\"counter\",\"name\":\"" + JsonEscape(c.name) +
           "\",\"value\":" + FormatU64(c.value) + "}\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    out += "{\"type\":\"gauge\",\"name\":\"" + JsonEscape(g.name) +
           "\",\"value\":" + FormatI64(g.value) + "}\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    out += "{\"type\":\"histogram\",\"name\":\"" + JsonEscape(h.name) +
           "\",\"count\":" + FormatU64(h.count) +
           ",\"sum\":" + FormatU64(h.sum) +
           ",\"mean\":" + FormatDouble(h.Mean()) +
           ",\"p50\":" + FormatU64(h.ApproxQuantile(0.50)) +
           ",\"p95\":" + FormatU64(h.ApproxQuantile(0.95)) + "}\n";
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  // Build identity and uptime lead the exposition: always present (they
  // do not depend on GEA_METRICS), so a scrape of an idle process still
  // yields the node-exporter-style inventory pair.
  out += "# TYPE gea_build_info gauge\n";
  out += "gea_build_info{version=\"" + PrometheusLabelValue(kGeaVersion) +
         "\",compiler=\"" + PrometheusLabelValue(__VERSION__) + "\",arch=\"" +
         PrometheusLabelValue(BuildArch()) + "\"} 1\n";
  out += "# TYPE gea_uptime_seconds gauge\n";
  out += "gea_uptime_seconds " +
         FormatDouble(static_cast<double>(NowNanos() - kProcessStartNanos) /
                      1e9) +
         "\n";
  for (const CounterValue& c : snapshot.counters) {
    const std::string name = PrometheusMetricName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatU64(c.value) + "\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    const std::string name = PrometheusMetricName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatI64(g.value) + "\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string name = PrometheusMetricName(h.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;  // sparse: emit populated buckets only
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" + FormatU64(HistogramBucketUpperBound(i)) +
             "\"} " + FormatU64(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + FormatU64(h.count) + "\n";
    out += name + "_sum " + FormatU64(h.sum) + "\n";
    out += name + "_count " + FormatU64(h.count) + "\n";
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace internal {

namespace {

/// Recursive-descent JSON checker. Structural only: no number range or
/// UTF-8 validation, which the tests do not need.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Check(std::string* error) {
    SkipSpace();
    if (!Value()) {
      *error = "invalid JSON at byte " + std::to_string(pos_);
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing characters at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool Value() {
    if (depth_ > 64) return false;
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++depth_;
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++depth_;
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view want) {
    if (text_.substr(pos_, want.size()) != want) return false;
    pos_ += want.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonChecker(text).Check(error);
}

}  // namespace internal

}  // namespace gea::obs
