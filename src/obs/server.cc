#include "obs/server.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cstdlib>
#include <deque>
#include <utility>

#include "common/net.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/statviews.h"
#include "obs/timeseries.h"

namespace gea::obs {

namespace {

/// The /tracez profile ring: the last kProfileRingCapacity published
/// profiles, newest at the back. A plain mutex-guarded deque: profiles
/// are small (a handful of spans and counter deltas) and publishes
/// happen once per logged operation, not per row. Every read takes one
/// consistent snapshot under the lock, so a publish racing a render can
/// never tear the list against the detail.
std::mutex g_profile_mu;
std::deque<OperationProfile>& ProfileRing() {
  static std::deque<OperationProfile>* ring = new std::deque<OperationProfile>();
  return *ring;
}

std::string ProfileJson(const OperationProfile& profile) {
  std::string out = "{\"operation\":\"" + JsonEscape(profile.operation) +
                    "\",\"elapsed_nanos\":" +
                    std::to_string(profile.elapsed_nanos) + ",\"spans\":[";
  for (size_t i = 0; i < profile.spans.size(); ++i) {
    const SpanRecord& span = profile.spans[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(span.id) +
           ",\"parent_id\":" + std::to_string(span.parent_id) + ",\"name\":\"" +
           JsonEscape(span.name) +
           "\",\"start_nanos\":" + std::to_string(span.start_nanos) +
           ",\"duration_nanos\":" + std::to_string(span.duration_nanos) + "}";
  }
  out += "],\"counters\":{";
  for (size_t i = 0; i < profile.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(profile.counters[i].name) +
           "\":" + std::to_string(profile.counters[i].delta);
  }
  out += "}}";
  return out;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    default:
      return "Error";
  }
}

void HandleConnection(int fd) {
  // Bound how long a dribbling client can hold the (single) serve thread.
  timeval timeout{};
  timeout.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < 16384) {
    // net::RecvSome retries EINTR; the receive timeout above still
    // surfaces as an error, which ends the read loop as intended.
    Result<size_t> n = net::RecvSome(fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    head.append(buf, *n);
  }

  internal::HttpResponse response;
  const std::string path = internal::ParseRequestPath(head);
  if (path.empty()) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    response = internal::HandlePath(path, internal::ParseRequestQuery(head));
  }

  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += response.body;
  // Best effort: a peer that went away mid-send is not our problem.
  (void)net::SendAll(fd, wire);
}

}  // namespace

namespace internal {

std::string ParseRequestPath(const std::string& head) {
  if (head.rfind("GET ", 0) != 0) return "";
  const size_t start = 4;
  const size_t end = head.find(' ', start);
  if (end == std::string::npos || end == start) return "";
  std::string path = head.substr(start, end - start);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path.empty() || path[0] != '/' ? "" : path;
}

std::string ParseRequestQuery(const std::string& head) {
  if (head.rfind("GET ", 0) != 0) return "";
  const size_t start = 4;
  const size_t end = head.find(' ', start);
  if (end == std::string::npos || end == start) return "";
  const std::string target = head.substr(start, end - start);
  const size_t query = target.find('?');
  return query == std::string::npos ? "" : target.substr(query + 1);
}

namespace {

/// Looks up `key` in a raw "a=1&b=2" query string.
std::optional<std::string> QueryParam(const std::string& query,
                                      const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return std::nullopt;
}

}  // namespace

HttpResponse HandlePath(const std::string& path, const std::string& query) {
  HttpResponse response;
  if (path == "/healthz") {
    response.body = "ok\n";
    return response;
  }
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(MetricsRegistry::Global().Snapshot());
    return response;
  }
  if (path == "/statz") {
    response.content_type = "application/json";
    if (QueryParam(query, "history") == std::optional<std::string>("1")) {
      response.body = HistoryJson();
      return response;
    }
    response.body = StatViewsJson();
    return response;
  }
  if (path == "/tracez") {
    response.content_type = "application/json";
    if (QueryParam(query, "format") == std::optional<std::string>("chrome")) {
      response.body = ChromeTraceJson(RequestTraceRing::Global().Snapshot());
      return response;
    }
    if (std::optional<std::string> n = QueryParam(query, "n");
        n.has_value()) {
      char* end = nullptr;
      const unsigned long count = std::strtoul(n->c_str(), &end, 10);
      if (end == n->c_str() || *end != '\0') {
        response.status = 400;
        response.content_type = "text/plain; charset=utf-8";
        response.body = "bad n: " + *n + "\n";
        return response;
      }
      response.body = TracezJson(static_cast<size_t>(count));
      return response;
    }
    response.body = TracezJson();
    return response;
  }
  response.status = 404;
  response.body = "not found: " + path + "\n";
  return response;
}

}  // namespace internal

// ---- MonitorServer ----

MonitorServer::~MonitorServer() { Stop(); }

Status MonitorServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("monitor server already running");
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("monitor port out of range: " +
                                   std::to_string(port));
  }

  GEA_ASSIGN_OR_RETURN(net::ListenSocket listener,
                       net::ListenLoopback(port, /*backlog=*/16));

  listen_fd_ = listener.fd;
  port_.store(listener.port, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&MonitorServer::ServeLoop, this, listener.fd);

  LogRecord(LogLevel::kInfo, "monitor_started")
      .Int("port", Port())
      .Emit();
  return Status::OK();
}

void MonitorServer::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  // Wake the blocking accept(): shutdown() makes it return on Linux, and
  // close() releases the fd either way.
  shutdown(listen_fd_, SHUT_RDWR);
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
  port_.store(0, std::memory_order_release);
}

void MonitorServer::ServeLoop(int listen_fd) {
  while (running_.load(std::memory_order_acquire)) {
    Result<int> fd = net::Accept(listen_fd);  // retries EINTR internally
    if (!fd.ok()) break;  // Stop() closed the socket (or it broke)
    HandleConnection(*fd);
    net::CloseFd(*fd);
  }
}

// ---- Globals ----

MonitorServer& GlobalMonitor() {
  static MonitorServer* server = new MonitorServer();
  return *server;
}

Status StartMonitorFromEnv() {
  static const int env_port = [] {
    const char* text = std::getenv("GEA_MONITOR_PORT");
    if (text == nullptr || *text == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 1 || parsed > 65535) return 0;
    return static_cast<int>(parsed);
  }();
  if (env_port == 0) return Status::OK();
  MonitorServer& monitor = GlobalMonitor();
  if (monitor.Running()) return Status::OK();
  Status status = monitor.Start(env_port);
  // A second racing Start() loses with FailedPrecondition; the monitor is
  // up either way, which is what the caller asked for.
  if (!status.ok() && monitor.Running()) return Status::OK();
  return status;
}

void PublishProfile(const OperationProfile& profile) {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  std::deque<OperationProfile>& ring = ProfileRing();
  ring.push_back(profile);
  while (ring.size() > kProfileRingCapacity) ring.pop_front();
}

std::optional<OperationProfile> LastPublishedProfile() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  const std::deque<OperationProfile>& ring = ProfileRing();
  if (ring.empty()) return std::nullopt;
  return ring.back();
}

std::vector<OperationProfile> RecentProfiles(size_t n) {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  const std::deque<OperationProfile>& ring = ProfileRing();
  std::vector<OperationProfile> out;
  const size_t count = std::min(n, ring.size());
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring[ring.size() - 1 - i]);  // newest first
  }
  return out;
}

std::string TracezJson() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  const std::deque<OperationProfile>& ring = ProfileRing();
  if (ring.empty()) return "{\"operation\":null}";
  return ProfileJson(ring.back());
}

std::string TracezJson(size_t n) {
  // One lock for count + list + every detail: the response is internally
  // consistent even while publishes race.
  std::lock_guard<std::mutex> lock(g_profile_mu);
  const std::deque<OperationProfile>& ring = ProfileRing();
  std::string out =
      "{\"count\":" + std::to_string(ring.size()) + ",\"profiles\":[";
  const size_t count = std::min(n, ring.size());
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) out += ",";
    out += ProfileJson(ring[ring.size() - 1 - i]);
  }
  out += "]}";
  return out;
}

}  // namespace gea::obs
