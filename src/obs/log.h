#ifndef GEA_OBS_LOG_H_
#define GEA_OBS_LOG_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace gea::obs {

/// Structured, leveled JSON-lines logging for the GEA engine. Every
/// record is one JSON object per line:
///
///   {"ts_ms":1754312345678,"level":"warn","event":"slow_query",
///    "operation":"populate","elapsed_ms":812.4,...}
///
/// Enablement mirrors the metrics/trace gates: programmatic override
/// (SetLogOverride / ScopedLogLevel) > GEA_LOG env var (read once) >
/// default. The default threshold is kWarn — warnings and errors are
/// production signal and always flow; "debug" / "info" widen it, "off"
/// silences everything. The sink is stderr unless GEA_LOG_FILE names a
/// file (opened once, in append mode).

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// "debug", "info", "warn", "error".
const char* LogLevelName(LogLevel level);

/// True when a record at `level` would be written.
bool LogEnabled(LogLevel level);

/// Sets (nullopt clears, back to GEA_LOG) the minimum level that flows.
void SetLogOverride(std::optional<LogLevel> min_level);

/// RAII log-threshold override for tests; nests like ScopedMetricsEnable.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(std::optional<LogLevel> min_level);
  ~ScopedLogLevel();

  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  int previous_;  // raw threshold, including the "off" sentinel
};

/// The process-wide line sink: GEA_LOG_FILE (append) or stderr, one
/// mutex-guarded write per record so concurrent sessions interleave at
/// line granularity.
class LogSink {
 public:
  static LogSink& Global();

  /// Appends `line` plus '\n' and flushes.
  void Write(std::string_view line);

  /// Redirects writes into an internal buffer (true clears the buffer
  /// and starts capturing; false restores the file sink).
  void SetCaptureForTest(bool capturing);

  /// Copies the capture buffer under the sink lock.
  std::string CapturedForTest();

 private:
  LogSink() = default;

  std::mutex mu_;
  std::FILE* file_ = nullptr;  // resolved on first write
  bool file_resolved_ = false;
  bool capturing_ = false;
  std::string capture_;
};

/// Builder for one structured record. Cheap when the level is below the
/// threshold: no fields are rendered and Emit() is a no-op.
///
///   obs::LogRecord(obs::LogLevel::kWarn, "slow_query")
///       .Str("operation", op).F64("elapsed_ms", ms).Emit();
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view event);

  LogRecord& Str(std::string_view key, std::string_view value);
  LogRecord& Int(std::string_view key, int64_t value);
  LogRecord& U64(std::string_view key, uint64_t value);
  LogRecord& F64(std::string_view key, double value);
  LogRecord& Bool(std::string_view key, bool value);
  /// Splices a pre-rendered JSON value (object/array) under `key`; the
  /// caller guarantees it is well-formed.
  LogRecord& RawJson(std::string_view key, std::string_view json);

  /// Closes the object and writes it to the global sink (no-op when the
  /// record's level is below the threshold).
  void Emit();

 private:
  bool enabled_;
  std::string json_;
};

// ---- Slow-query log configuration ----

/// Millisecond threshold at or above which AnalysisSession emits one
/// "slow_query" record per operation; nullopt disables the slow-query
/// log. Resolves: override > GEA_SLOW_QUERY_MS (read once; a
/// non-negative integer) > disabled. A threshold of 0 logs every
/// operation.
std::optional<uint64_t> SlowQueryThresholdMs();

/// Sets (nullopt clears, back to GEA_SLOW_QUERY_MS) the threshold.
void SetSlowQueryOverride(std::optional<uint64_t> ms);

/// RAII slow-query threshold for tests:
///   ScopedSlowQueryMs slow(0);   // log every operation in this scope
class ScopedSlowQueryMs {
 public:
  explicit ScopedSlowQueryMs(std::optional<uint64_t> ms);
  ~ScopedSlowQueryMs();

  ScopedSlowQueryMs(const ScopedSlowQueryMs&) = delete;
  ScopedSlowQueryMs& operator=(const ScopedSlowQueryMs&) = delete;

 private:
  std::optional<uint64_t> previous_;
};

/// Captures log output into a buffer for the scope's lifetime, forcing
/// the threshold down to `min_level` so the records under test flow.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel min_level = LogLevel::kDebug);
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  /// The lines captured so far.
  std::string str() const;

 private:
  ScopedLogLevel level_;
};

}  // namespace gea::obs

#endif  // GEA_OBS_LOG_H_
