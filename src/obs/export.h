#ifndef GEA_OBS_EXPORT_H_
#define GEA_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace gea::obs {

/// Renders a snapshot as an aligned human-readable table: one section per
/// metric kind, histograms summarized as count/mean/p50/p95.
std::string RenderTable(const MetricsSnapshot& snapshot);

/// Renders a snapshot as JSON lines, one object per metric:
///   {"type":"counter","name":"gea.populate.calls","value":3}
///   {"type":"histogram","name":"...","count":5,"sum":123,"mean":24.6,
///    "p50":31,"p95":63}
std::string RenderJsonLines(const MetricsSnapshot& snapshot);

/// Renders a snapshot as Prometheus text exposition format. Metric names
/// pass through PrometheusMetricName(); histograms emit cumulative
/// _bucket{le="..."} series plus _sum and _count.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Sanitizes a metric name for the exposition format, whose grammar is
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal character (dots, dashes,
/// quotes, braces, newlines, ...) becomes '_', a leading digit gains a
/// '_' prefix, and an empty name renders as "_".
std::string PrometheusMetricName(std::string_view name);

/// Escapes a label value for the exposition format: backslash, double
/// quote and newline escape as \\ \" and \n; everything else (including
/// UTF-8) passes through.
std::string PrometheusLabelValue(std::string_view value);

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

namespace internal {

/// Minimal structural JSON validator used by tests and the bench --json
/// consumer: checks that `text` is one syntactically well-formed JSON
/// value (objects, arrays, strings, numbers, true/false/null). Returns
/// true on success; on failure sets *error to a message with the byte
/// offset of the problem.
bool ValidateJson(std::string_view text, std::string* error);

}  // namespace internal

}  // namespace gea::obs

#endif  // GEA_OBS_EXPORT_H_
