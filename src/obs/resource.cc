#include "obs/resource.h"

namespace gea::obs {

namespace {

thread_local MemoryAccount* t_account = nullptr;

}  // namespace

MemoryAccount* CurrentMemoryAccount() { return t_account; }

bool MemoryAccountingActive() { return t_account != nullptr; }

void AccountAllocation(uint64_t bytes) {
  if (t_account != nullptr && bytes != 0) t_account->OnAlloc(bytes);
}

void AccountFree(uint64_t bytes) {
  if (t_account != nullptr && bytes != 0) t_account->OnFree(bytes);
}

MemoryAccountScope::MemoryAccountScope(MemoryAccount* account)
    : previous_(t_account) {
  t_account = account;
}

MemoryAccountScope::~MemoryAccountScope() { t_account = previous_; }

}  // namespace gea::obs
