#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gea::obs {

namespace {

/// Effective trace state: -1 unresolved (resolve GEA_TRACE on first
/// read), 0 off, 1 on. Mirrors g_metrics_state in metrics.cc.
std::atomic<int> g_trace_state{-1};

int EnvTraceState() {
  static const int cached =
      internal::ParseBoolFlag(std::getenv("GEA_TRACE")) ? 1 : 0;
  return cached;
}

/// Global span-id allocator; 0 is reserved for "no span".
std::atomic<uint64_t> g_next_span_id{1};

/// Global close-order sequence; Mark() reads the next value to be issued.
std::atomic<uint64_t> g_next_seq{0};

std::atomic<uint64_t> g_dropped_spans{0};

/// A buffer may not grow past this without a drain; beyond it new spans
/// are dropped (and counted) rather than eating memory unboundedly.
constexpr size_t kMaxRecordsPerThread = 1 << 16;

/// Innermost open span on this thread (0 = none).
thread_local uint64_t t_current_span = 0;

/// Request-trace identity for this thread (see TraceBindingScope).
thread_local TraceBinding t_binding;

/// Dense thread-id allocator; 0 is reserved for "unknown".
std::atomic<uint32_t> g_next_thread_id{1};

}  // namespace

uint32_t CurrentThreadId() {
  thread_local const uint32_t t_id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return t_id;
}

TraceBinding CurrentTraceBinding() { return t_binding; }

TraceBindingScope::TraceBindingScope(TraceBinding binding)
    : previous_(t_binding) {
  t_binding = binding;
}

TraceBindingScope::~TraceBindingScope() { t_binding = previous_; }

bool SpanRecordingEnabled() { return TraceEnabled() || t_binding.force; }

bool TraceEnabled() {
  int state = g_trace_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvTraceState();
    g_trace_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetTraceOverride(std::optional<bool> enabled) {
  g_trace_state.store(
      enabled.has_value() ? (*enabled ? 1 : 0) : EnvTraceState(),
      std::memory_order_relaxed);
}

ScopedTraceEnable::ScopedTraceEnable(bool enabled)
    : previous_(TraceEnabled()) {
  SetTraceOverride(enabled);
}

ScopedTraceEnable::~ScopedTraceEnable() { SetTraceOverride(previous_); }

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

uint64_t TraceCollector::Mark() {
  return g_next_seq.load(std::memory_order_acquire);
}

void TraceCollector::Record(SpanRecord record) {
  // The buffer outlives its thread: the collector holds a shared_ptr, so
  // records survive until drained even after the thread exits.
  thread_local std::shared_ptr<ThreadBuffer> t_buffer = [this] {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(buffer);
    return buffer;
  }();
  record.seq = g_next_seq.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(t_buffer->mu);
  if (t_buffer->records.size() >= kMaxRecordsPerThread) {
    g_dropped_spans.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t_buffer->records.push_back(std::move(record));
}

std::vector<SpanRecord> TraceCollector::DrainSince(uint64_t mark,
                                                   uint64_t trace_id) {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    if (trace_id == 0) {
      for (SpanRecord& record : buffer->records) {
        if (record.seq >= mark) out.push_back(std::move(record));
      }
      buffer->records.clear();
    } else {
      // Surgical drain: take only this trace's spans, keep the rest
      // buffered for the captures that own them.
      auto keep = buffer->records.begin();
      for (SpanRecord& record : buffer->records) {
        if (record.seq >= mark && record.trace_id == trace_id) {
          out.push_back(std::move(record));
        } else {
          if (&*keep != &record) *keep = std::move(record);
          ++keep;
        }
      }
      buffer->records.erase(keep, buffer->records.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_nanos != b.start_nanos
                         ? a.start_nanos < b.start_nanos
                         : a.id < b.id;
            });
  return out;
}

std::vector<SpanRecord> TraceCollector::SnapshotSince(uint64_t mark,
                                                      uint64_t trace_id) const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const SpanRecord& record : buffer->records) {
      if (record.seq >= mark &&
          (trace_id == 0 || record.trace_id == trace_id)) {
        out.push_back(record);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_nanos != b.start_nanos
                         ? a.start_nanos < b.start_nanos
                         : a.id < b.id;
            });
  return out;
}

uint64_t TraceCollector::DroppedSpans() const {
  return g_dropped_spans.load(std::memory_order_relaxed);
}

uint64_t CurrentSpanId() { return t_current_span; }

TraceParentScope::TraceParentScope(uint64_t parent_id)
    : previous_(t_current_span) {
  t_current_span = parent_id;
}

TraceParentScope::~TraceParentScope() { t_current_span = previous_; }

TraceSpan::TraceSpan(std::string_view name) {
  if (!SpanRecordingEnabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  name_ = name;
  start_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  const uint64_t end = NowNanos();
  t_current_span = parent_;
  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_;
  record.name = std::move(name_);
  record.start_nanos = start_;
  record.duration_nanos = end - start_;
  record.trace_id = t_binding.trace_id;
  record.tid = CurrentThreadId();
  TraceCollector::Global().Record(std::move(record));
}

namespace {

void RenderSpanTree(const std::vector<SpanRecord>& spans, uint64_t parent,
                    int depth, std::string& out) {
  for (const SpanRecord& span : spans) {
    if (span.parent_id != parent) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "%*s%s  %.3f ms\n", depth * 2, "",
                  span.name.c_str(),
                  static_cast<double>(span.duration_nanos) / 1e6);
    out += line;
    if (span.id != 0) RenderSpanTree(spans, span.id, depth + 1, out);
  }
}

}  // namespace

std::string OperationProfile::Render() const {
  std::string out = operation;
  {
    char line[64];
    std::snprintf(line, sizeof(line), "  %.3f ms\n",
                  static_cast<double>(elapsed_nanos) / 1e6);
    out += line;
  }
  if (!spans.empty()) {
    out += "spans:\n";
    // Roots: spans whose parent is not in this profile (the operation's
    // root span has parent 0 or some span outside the capture window).
    std::vector<uint64_t> ids;
    ids.reserve(spans.size());
    for (const SpanRecord& span : spans) ids.push_back(span.id);
    std::sort(ids.begin(), ids.end());
    for (const SpanRecord& span : spans) {
      if (std::binary_search(ids.begin(), ids.end(), span.parent_id)) continue;
      char line[256];
      std::snprintf(line, sizeof(line), "  %s  %.3f ms\n", span.name.c_str(),
                    static_cast<double>(span.duration_nanos) / 1e6);
      out += line;
      RenderSpanTree(spans, span.id, 2, out);
    }
  }
  if (!counters.empty()) {
    out += "counters:\n";
    size_t width = 0;
    for (const CounterDelta& c : counters) width = std::max(width, c.name.size());
    for (const CounterDelta& c : counters) {
      char line[256];
      std::snprintf(line, sizeof(line), "  %-*s  %llu\n",
                    static_cast<int>(width), c.name.c_str(),
                    static_cast<unsigned long long>(c.delta));
      out += line;
    }
  }
  return out;
}

OperationCapture::OperationCapture(std::string operation)
    : operation_(std::move(operation)),
      start_nanos_(NowNanos()),
      trace_id_(t_binding.trace_id),
      metrics_on_(MetricsEnabled()),
      trace_on_(SpanRecordingEnabled()) {
  if (metrics_on_) before_ = MetricsRegistry::Global().Snapshot();
  if (trace_on_) {
    mark_ = TraceCollector::Global().Mark();
    root_.emplace(operation_);
  }
}

OperationProfile OperationCapture::Finish() {
  root_.reset();  // close the root span before draining
  OperationProfile profile;
  profile.operation = operation_;
  profile.elapsed_nanos = NowNanos() - start_nanos_;
  if (trace_on_) {
    profile.spans = TraceCollector::Global().DrainSince(mark_, trace_id_);
  }
  if (metrics_on_) {
    profile.counters =
        DiffCounters(before_, MetricsRegistry::Global().Snapshot());
  }
  return profile;
}

}  // namespace gea::obs
