#ifndef GEA_OBS_TRACE_H_
#define GEA_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace gea::obs {

/// Scoped tracing for the GEA engine. A TraceSpan times a region and
/// records a SpanRecord into the calling thread's buffer when it closes;
/// spans nest through a thread-local current-span id, and ParallelFor
/// propagates that id into pool workers so chunk spans attach to the
/// operator span that spawned them.
///
/// Enablement mirrors the metrics gate: programmatic override
/// (SetTraceOverride / ScopedTraceEnable) > GEA_TRACE env var (read once)
/// > off. A disabled TraceSpan costs one relaxed load.

bool TraceEnabled();
void SetTraceOverride(std::optional<bool> enabled);

class ScopedTraceEnable {
 public:
  explicit ScopedTraceEnable(bool enabled);
  ~ScopedTraceEnable();

  ScopedTraceEnable(const ScopedTraceEnable&) = delete;
  ScopedTraceEnable& operator=(const ScopedTraceEnable&) = delete;

 private:
  bool previous_;
};

/// One finished span.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = no parent inside the trace
  std::string name;
  uint64_t start_nanos = 0;     // NowNanos() at open
  uint64_t duration_nanos = 0;  // close - open
  uint64_t seq = 0;             // global close order, used by capture marks
  uint64_t trace_id = 0;        // request trace this span belongs to (0 = none)
  uint32_t tid = 0;             // CurrentThreadId() of the recording thread
};

/// Small dense id for the calling thread (1, 2, 3, ... in first-use
/// order). Stable for the thread's lifetime; used to place spans on real
/// thread tracks in trace exports without leaking OS thread handles.
uint32_t CurrentThreadId();

/// The request-trace identity carried by the calling thread. `trace_id`
/// tags every span the thread records; `force` enables span recording for
/// this thread even when the global GEA_TRACE gate is off (how a sampled
/// request captures its span tree without turning tracing on globally).
struct TraceBinding {
  uint64_t trace_id = 0;
  bool force = false;
};

TraceBinding CurrentTraceBinding();

/// Installs a TraceBinding for the scope's lifetime. The serve layer
/// binds each request's trace id around execution; ParallelFor propagates
/// the submitting thread's binding into pool workers alongside the parent
/// span id, so chunk spans land in the right request trace.
class TraceBindingScope {
 public:
  explicit TraceBindingScope(TraceBinding binding);
  ~TraceBindingScope();

  TraceBindingScope(const TraceBindingScope&) = delete;
  TraceBindingScope& operator=(const TraceBindingScope&) = delete;

 private:
  TraceBinding previous_;
};

/// True when spans should be recorded on this thread: the global gate is
/// on, or the current binding forces recording (sampled request).
bool SpanRecordingEnabled();

/// Collects finished spans into per-thread buffers (one uncontended mutex
/// per thread; the global mutex is taken only when a new thread registers
/// or a capture drains).
class TraceCollector {
 public:
  TraceCollector() = default;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector (leaked at exit, like SharedThreadPool).
  static TraceCollector& Global();

  /// A mark such that every span closed after this call has seq >= mark.
  uint64_t Mark();

  /// Removes and returns buffered spans with seq >= mark, sorted by
  /// (start_nanos, id). With trace_id == 0 (the single-session workbench
  /// path) this drains every buffer: spans closed before the mark are
  /// discarded. With a nonzero trace_id only spans tagged with that trace
  /// are removed; spans belonging to other concurrent requests stay
  /// buffered for their own captures to drain.
  std::vector<SpanRecord> DrainSince(uint64_t mark, uint64_t trace_id = 0);

  /// Like DrainSince, but non-destructive: copies matching spans and
  /// leaves every buffer intact. The stalled-request watchdog uses this
  /// to report an in-flight request's span tree without stealing the
  /// spans from the capture that owns them.
  std::vector<SpanRecord> SnapshotSince(uint64_t mark,
                                        uint64_t trace_id = 0) const;

  /// Appends `record` to the calling thread's buffer, assigning its seq.
  void Record(SpanRecord record);

  /// Spans dropped because a thread buffer hit its cap (nobody drained).
  uint64_t DroppedSpans() const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<SpanRecord> records;
  };

  mutable std::mutex mu_;  // guards buffers_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// Id of the innermost open span on the calling thread (0 when none).
uint64_t CurrentSpanId();

/// Installs `parent_id` as the calling thread's current span for the
/// scope's lifetime — how ParallelFor hands the submitting thread's span
/// to pool workers.
class TraceParentScope {
 public:
  explicit TraceParentScope(uint64_t parent_id);
  ~TraceParentScope();

  TraceParentScope(const TraceParentScope&) = delete;
  TraceParentScope& operator=(const TraceParentScope&) = delete;

 private:
  uint64_t previous_;
};

/// RAII scoped timing: opens on construction, records on destruction.
/// When tracing is disabled the constructor is a relaxed load and the
/// destructor a branch.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// 0 when tracing was off at construction.
  uint64_t id() const { return id_; }

 private:
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ = 0;
  std::string name_;
};

/// The EXPLAIN payload of one operator invocation: wall time, the spans
/// closed during it, and every counter the invocation moved.
struct OperationProfile {
  std::string operation;
  uint64_t elapsed_nanos = 0;
  std::vector<SpanRecord> spans;      // sorted by (start, id)
  std::vector<CounterDelta> counters; // non-zero deltas, sorted by name

  /// Renders the nested span tree plus the counter table:
  ///   populate ................ 12.345 ms
  ///     parallel_for .......... 10.001 ms
  ///       chunk ...............  5.000 ms
  ///   counters:
  ///     gea.populate.rows_materialized  35
  std::string Render() const;
};

/// Captures one operation: snapshots the counters and marks the trace on
/// construction, wraps the operation in a root span named after it, and
/// assembles the OperationProfile in Finish().
class OperationCapture {
 public:
  explicit OperationCapture(std::string operation);

  OperationCapture(const OperationCapture&) = delete;
  OperationCapture& operator=(const OperationCapture&) = delete;

  /// Closes the root span, drains spans recorded since construction and
  /// diffs the counters. Call exactly once.
  OperationProfile Finish();

 private:
  std::string operation_;
  uint64_t start_nanos_ = 0;
  uint64_t mark_ = 0;
  uint64_t trace_id_ = 0;  // binding at construction; filters the drain
  MetricsSnapshot before_;
  bool metrics_on_ = false;
  bool trace_on_ = false;
  std::optional<TraceSpan> root_;
};

}  // namespace gea::obs

#endif  // GEA_OBS_TRACE_H_
