#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"

namespace gea::obs {

namespace {

/// Raw threshold values: 0..3 mirror LogLevel, 4 is "off". -1 means
/// unresolved (read GEA_LOG on first use).
constexpr int kLogOff = 4;

std::atomic<int> g_log_threshold{-1};

int ParseLogLevel(const char* text) {
  if (text == nullptr || *text == '\0') return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(text, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(text, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(text, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(text, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(text, "off") == 0 || std::strcmp(text, "none") == 0 ||
      std::strcmp(text, "0") == 0) {
    return kLogOff;
  }
  // Bool-ish truthy values widen to info; anything else keeps the default.
  if (std::strcmp(text, "1") == 0 || std::strcmp(text, "true") == 0 ||
      std::strcmp(text, "on") == 0 || std::strcmp(text, "yes") == 0) {
    return static_cast<int>(LogLevel::kInfo);
  }
  return static_cast<int>(LogLevel::kWarn);
}

int EnvLogThreshold() {
  static const int cached = ParseLogLevel(std::getenv("GEA_LOG"));
  return cached;
}

int LogThreshold() {
  int state = g_log_threshold.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvLogThreshold();
    g_log_threshold.store(state, std::memory_order_relaxed);
  }
  return state;
}

/// Wall-clock milliseconds since the Unix epoch — log records are read
/// next to other services' logs, so unlike every latency measurement in
/// GEA (steady clock, obs/clock.h) they carry real time.
uint64_t WallMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= LogThreshold();
}

void SetLogOverride(std::optional<LogLevel> min_level) {
  g_log_threshold.store(min_level.has_value() ? static_cast<int>(*min_level)
                                              : EnvLogThreshold(),
                        std::memory_order_relaxed);
}

ScopedLogLevel::ScopedLogLevel(std::optional<LogLevel> min_level)
    : previous_(LogThreshold()) {
  g_log_threshold.store(min_level.has_value() ? static_cast<int>(*min_level)
                                              : EnvLogThreshold(),
                        std::memory_order_relaxed);
}

ScopedLogLevel::~ScopedLogLevel() {
  g_log_threshold.store(previous_, std::memory_order_relaxed);
}

// ---- Sink ----

LogSink& LogSink::Global() {
  static LogSink* sink = new LogSink();
  return *sink;
}

void LogSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capturing_) {
    capture_.append(line);
    capture_.push_back('\n');
    return;
  }
  if (!file_resolved_) {
    file_resolved_ = true;
    const char* path = std::getenv("GEA_LOG_FILE");
    if (path != nullptr && *path != '\0') {
      file_ = std::fopen(path, "a");  // leaked with the sink; flushed per line
    }
    if (file_ == nullptr) file_ = stderr;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void LogSink::SetCaptureForTest(bool capturing) {
  std::lock_guard<std::mutex> lock(mu_);
  capturing_ = capturing;
  capture_.clear();
}

std::string LogSink::CapturedForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  return capture_;
}

// ---- Record builder ----

LogRecord::LogRecord(LogLevel level, std::string_view event)
    : enabled_(LogEnabled(level)) {
  if (!enabled_) return;
  json_ = "{\"ts_ms\":" + std::to_string(WallMillis()) + ",\"level\":\"" +
          LogLevelName(level) + "\",\"event\":\"" + JsonEscape(event) + "\"";
}

LogRecord& LogRecord::Str(std::string_view key, std::string_view value) {
  if (enabled_) {
    json_ += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  return *this;
}

LogRecord& LogRecord::Int(std::string_view key, int64_t value) {
  if (enabled_) {
    json_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  }
  return *this;
}

LogRecord& LogRecord::U64(std::string_view key, uint64_t value) {
  if (enabled_) {
    json_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  }
  return *this;
}

LogRecord& LogRecord::F64(std::string_view key, double value) {
  if (enabled_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    json_ += ",\"" + JsonEscape(key) + "\":" + buf;
  }
  return *this;
}

LogRecord& LogRecord::Bool(std::string_view key, bool value) {
  if (enabled_) {
    json_ += ",\"" + JsonEscape(key) + "\":" + (value ? "true" : "false");
  }
  return *this;
}

LogRecord& LogRecord::RawJson(std::string_view key, std::string_view json) {
  if (enabled_) {
    json_ += ",\"" + JsonEscape(key) + "\":";
    json_.append(json);
  }
  return *this;
}

void LogRecord::Emit() {
  if (!enabled_) return;
  json_ += "}";
  LogSink::Global().Write(json_);
  enabled_ = false;  // a second Emit() is a no-op
}

// ---- Slow-query threshold ----

namespace {

/// -1 unresolved, -2 disabled, >= 0 the threshold in milliseconds.
constexpr int64_t kSlowUnresolved = -1;
constexpr int64_t kSlowDisabled = -2;

std::atomic<int64_t> g_slow_ms{kSlowUnresolved};

int64_t EnvSlowMs() {
  static const int64_t cached = [] {
    const char* text = std::getenv("GEA_SLOW_QUERY_MS");
    if (text == nullptr || *text == '\0') return kSlowDisabled;
    char* end = nullptr;
    long long parsed = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 0) return kSlowDisabled;
    return static_cast<int64_t>(parsed);
  }();
  return cached;
}

}  // namespace

std::optional<uint64_t> SlowQueryThresholdMs() {
  int64_t state = g_slow_ms.load(std::memory_order_relaxed);
  if (state == kSlowUnresolved) {
    state = EnvSlowMs();
    g_slow_ms.store(state, std::memory_order_relaxed);
  }
  if (state < 0) return std::nullopt;
  return static_cast<uint64_t>(state);
}

void SetSlowQueryOverride(std::optional<uint64_t> ms) {
  g_slow_ms.store(ms.has_value() ? static_cast<int64_t>(*ms) : EnvSlowMs(),
                  std::memory_order_relaxed);
}

ScopedSlowQueryMs::ScopedSlowQueryMs(std::optional<uint64_t> ms)
    : previous_(SlowQueryThresholdMs()) {
  g_slow_ms.store(ms.has_value() ? static_cast<int64_t>(*ms) : kSlowDisabled,
                  std::memory_order_relaxed);
}

ScopedSlowQueryMs::~ScopedSlowQueryMs() {
  g_slow_ms.store(previous_.has_value() ? static_cast<int64_t>(*previous_)
                                        : kSlowDisabled,
                  std::memory_order_relaxed);
}

ScopedLogCapture::ScopedLogCapture(LogLevel min_level) : level_(min_level) {
  LogSink::Global().SetCaptureForTest(true);
}

ScopedLogCapture::~ScopedLogCapture() {
  LogSink::Global().SetCaptureForTest(false);
}

std::string ScopedLogCapture::str() const {
  return LogSink::Global().CapturedForTest();
}

}  // namespace gea::obs
