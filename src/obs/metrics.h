#ifndef GEA_OBS_METRICS_H_
#define GEA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace gea::obs {

/// Process-wide metrics for the GEA engine: named counters, gauges and
/// fixed-bucket latency histograms. The hot path (Add / Set / Record) is
/// a relaxed atomic when metrics are enabled and a single relaxed load +
/// branch when they are not, so instrumentation can stay compiled into
/// the operators unconditionally.
///
/// Enablement resolves like the GEA_THREADS pattern (thread_pool.h):
///  1. the programmatic override (SetMetricsOverride / ScopedMetricsEnable),
///  2. the GEA_METRICS environment variable (read once, at first use),
///  3. off.

/// True when metric recording is on. Relaxed load + branch.
bool MetricsEnabled();

/// Sets (nullopt clears) the programmatic override of GEA_METRICS.
void SetMetricsOverride(std::optional<bool> enabled);

/// RAII override for tests and benchmarks; nests (the destructor restores
/// whatever state the constructor observed):
///   ScopedMetricsEnable metrics(true);
class ScopedMetricsEnable {
 public:
  explicit ScopedMetricsEnable(bool enabled);
  ~ScopedMetricsEnable();

  ScopedMetricsEnable(const ScopedMetricsEnable&) = delete;
  ScopedMetricsEnable& operator=(const ScopedMetricsEnable&) = delete;

 private:
  bool previous_;
};

/// A monotonically increasing count (tags scanned, rows materialized, …).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (pool size, live candidates, …).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two bucket count for Histogram: bucket i holds values whose
/// bit width is i, i.e. values in [2^(i-1), 2^i). 48 buckets cover any
/// latency up to ~3 days in nanoseconds.
inline constexpr size_t kHistogramBuckets = 48;

/// Upper bound (inclusive) of histogram bucket `i`.
uint64_t HistogramBucketUpperBound(size_t i);

/// A fixed-bucket histogram for latencies in nanoseconds (or any
/// non-negative magnitude). Lock-free: one relaxed fetch_add per bucket
/// plus count and sum.
class Histogram {
 public:
  void Record(uint64_t value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void ResetForTest();

  static size_t BucketIndex(uint64_t value);

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Times a scope into a histogram (records only when metrics are on).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(&histogram),
        start_(MetricsEnabled() ? NowNanos() : 0) {}
  ~ScopedLatency() {
    if (start_ != 0) histogram_->Record(NowNanos() - start_);
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_;
};

/// Point-in-time copies of metric values, for exporters and EXPLAIN.
struct CounterValue {
  std::string name;
  uint64_t value = 0;
};
struct GaugeValue {
  std::string name;
  int64_t value = 0;
};
struct HistogramValue {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  uint64_t ApproxQuantile(double p) const;
};

struct MetricsSnapshot {
  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name
};

/// A non-zero counter increase between two snapshots.
struct CounterDelta {
  std::string name;
  uint64_t delta = 0;
};

/// Counter increases from `before` to `after` (both sorted by name);
/// counters absent from `before` count from zero.
std::vector<CounterDelta> DiffCounters(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after);

/// The registry: metric objects are created on first use and live for the
/// registry's lifetime, so call sites may cache the returned references
/// (a function-local static is the intended idiom):
///
///   static obs::Counter& tags =
///       obs::MetricsRegistry::Global().GetCounter("gea.aggregate.tags");
///   tags.Add(n);
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (leaked at exit, like SharedThreadPool, so
  /// pool workers can still record during static destruction).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive, so cached
  /// references stay valid). Test-only.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  // node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

namespace internal {
/// Parses a boolean env-var value: "1", "true", "on", "yes" (case
/// sensitive) enable; anything else (or unset) disables.
bool ParseBoolFlag(const char* text);
}  // namespace internal

}  // namespace gea::obs

#endif  // GEA_OBS_METRICS_H_
