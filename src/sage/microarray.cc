#include "sage/microarray.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "sage/cleaning.h"

namespace gea::sage {

namespace {

void CoverGroup(const std::vector<TagId>& group, double coverage, Rng& rng,
                std::vector<TagId>* probes) {
  for (TagId tag : group) {
    if (rng.Bernoulli(coverage)) probes->push_back(tag);
  }
}

}  // namespace

MicroarrayChip DesignChip(const GroundTruth& truth,
                          const MicroarrayConfig& config) {
  Rng rng(config.seed);
  MicroarrayChip chip;
  CoverGroup(truth.housekeeping, config.housekeeping_coverage, rng,
             &chip.probes);
  for (const auto& [tissue, tags] : truth.signature) {
    CoverGroup(tags, config.signature_coverage, rng, &chip.probes);
  }
  for (const auto& [tissue, tags] : truth.baseline) {
    CoverGroup(tags, config.baseline_coverage, rng, &chip.probes);
  }
  for (const auto& [tissue, tags] : truth.cancer_up) {
    CoverGroup(tags, config.cancer_tag_coverage, rng, &chip.probes);
  }
  for (const auto& [tissue, tags] : truth.cancer_down) {
    CoverGroup(tags, config.cancer_tag_coverage, rng, &chip.probes);
  }
  CoverGroup(truth.shared_cancer_up, config.cancer_tag_coverage, rng,
             &chip.probes);
  CoverGroup(truth.shared_cancer_down, config.cancer_tag_coverage, rng,
             &chip.probes);
  std::sort(chip.probes.begin(), chip.probes.end());
  chip.probes.erase(std::unique(chip.probes.begin(), chip.probes.end()),
                    chip.probes.end());
  return chip;
}

Result<SageDataSet> MeasureMicroarray(const SageDataSet& cohort,
                                      const MicroarrayChip& chip,
                                      const MicroarrayConfig& config) {
  if (chip.probes.empty()) {
    return Status::InvalidArgument("the chip carries no probes");
  }
  if (config.noise_sigma < 0.0 || config.gain <= 0.0) {
    return Status::InvalidArgument("bad measurement model parameters");
  }
  Rng rng(config.seed + 1);
  SageDataSet out;
  for (const SageLibrary& lib : cohort.libraries()) {
    SageLibrary measured(lib.id(), lib.name() + "_chip", lib.tissue(),
                         lib.state(), lib.source());
    // Normalize each sample to a common scale before measurement, like
    // the two-channel normalization of real chips; this removes the
    // sequencing-depth artifact SAGE normalization handles separately.
    double total = lib.TotalTagCount();
    if (total <= 0.0) {
      out.AddLibrary(std::move(measured));
      continue;
    }
    double scale = kStandardDepth / total;
    for (TagId probe : chip.probes) {
      double level = lib.Count(probe) * scale;
      double noise = std::exp(rng.Normal(0.0, config.noise_sigma));
      double intensity =
          config.gain * level * noise + config.background;
      if (intensity < config.detection_floor) continue;
      measured.SetCount(probe, intensity);
    }
    out.AddLibrary(std::move(measured));
  }
  return out;
}

}  // namespace gea::sage
