#include "sage/tag_codec.h"

namespace gea::sage {

namespace {

// Returns 0..3 for A/C/G/T, -1 otherwise.
int BaseCode(char c) {
  switch (c) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
    default:
      return -1;
  }
}

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

}  // namespace

Result<TagId> EncodeTag(std::string_view tag) {
  if (tag.size() != static_cast<size_t>(kTagLength)) {
    return Status::InvalidArgument("tag must have exactly " +
                                   std::to_string(kTagLength) +
                                   " bases: " + std::string(tag));
  }
  TagId id = 0;
  for (char c : tag) {
    int code = BaseCode(c);
    if (code < 0) {
      return Status::InvalidArgument("tag contains a non-ACGT base: " +
                                     std::string(tag));
    }
    id = (id << 2) | static_cast<TagId>(code);
  }
  return id;
}

std::string DecodeTag(TagId id) {
  std::string out(kTagLength, 'A');
  for (int i = kTagLength - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kBases[id & 3u];
    id >>= 2;
  }
  return out;
}

bool IsValidTagString(std::string_view tag) {
  if (tag.size() != static_cast<size_t>(kTagLength)) return false;
  for (char c : tag) {
    if (BaseCode(c) < 0) return false;
  }
  return true;
}

std::string TagLabel(TagId id) {
  return DecodeTag(id) + "_(" + std::to_string(id) + ")";
}

}  // namespace gea::sage
