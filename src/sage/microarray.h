#ifndef GEA_SAGE_MICROARRAY_H_
#define GEA_SAGE_MICROARRAY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "sage/generator.h"

namespace gea::sage {

/// Microarray simulation.
///
/// Section 2.2.1: "the resulting data in a microarray chip can be easily
/// expressed as tags with expression values, which is similar to SAGE
/// data", and Section 2.4 claims GEA "has a more general design that can
/// analyze both SAGE data and microarray data". This module makes that
/// claim executable: it re-measures a synthetic cohort through a
/// microarray chip — an *experimenter-selected probe panel* with
/// fluorescence-style noise — producing a data set in the same
/// tags-with-values model, which the entire GEA pipeline consumes
/// unchanged.
///
/// The crucial difference from SAGE is the experimenter bias the thesis
/// highlights: "the experimenter must select the mRNA sequences to be
/// detected in a sample, and the sequence useful for cancer profiling may
/// not be known in the first place". Probes not on the chip are simply
/// invisible.
struct MicroarrayConfig {
  uint64_t seed = 99;

  /// Fraction of each planted tag group the chip designer happened to
  /// include. Housekeeping and tissue-signature genes are well known
  /// (high coverage); cancer-regulated genes may not be known in advance
  /// (the bias).
  double housekeeping_coverage = 0.95;
  double signature_coverage = 0.8;
  double cancer_tag_coverage = 0.5;
  double baseline_coverage = 0.4;

  /// Measurement model: intensity = gain * level + background, with
  /// multiplicative log-normal noise of this sigma and an additive
  /// background floor.
  double gain = 1.0;
  double noise_sigma = 0.15;
  double background = 2.0;

  /// Intensities below this are reported as absent (0) — the detection
  /// floor of the scanner.
  double detection_floor = 4.0;
};

/// The simulated chip: which tags carry probes.
struct MicroarrayChip {
  std::vector<TagId> probes;  // sorted
};

/// Designs a chip over the cohort's planted biology per the coverage
/// fractions.
MicroarrayChip DesignChip(const GroundTruth& truth,
                          const MicroarrayConfig& config);

/// Re-measures every library of `cohort` through `chip`: only probed tags
/// are observed, with the configured gain/noise/background. The result is
/// an ordinary SageDataSet (the "tags with expression values" framing of
/// Section 2.2.1), ready for the standard GEA pipeline. Microarray data
/// needs no sequencing-error cleaning — there are no singleton error tags
/// — but normalization still applies.
Result<SageDataSet> MeasureMicroarray(const SageDataSet& cohort,
                                      const MicroarrayChip& chip,
                                      const MicroarrayConfig& config);

}  // namespace gea::sage

#endif  // GEA_SAGE_MICROARRAY_H_
