#include "sage/io.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sage/tag_codec.h"

namespace gea::sage {

namespace {

namespace fs = std::filesystem;

obs::Counter& BytesReadCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gea.sage.bytes_read");
  return counter;
}

obs::Counter& BytesWrittenCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("gea.sage.bytes_written");
  return counter;
}

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  BytesReadCounter().Add(text.size());
  return text;
}

Status WriteFileText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << text;
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  BytesWrittenCounter().Add(text.size());
  return Status::OK();
}

// Renders a count without trailing zeros so integral raw counts stay
// integral in the file.
std::string FormatCount(double count) {
  if (count == static_cast<double>(static_cast<long long>(count))) {
    return std::to_string(static_cast<long long>(count));
  }
  return FormatDouble(count, 6);
}

}  // namespace

std::string WriteLibraryText(const SageLibrary& library) {
  std::string out = "# gea-sage-library v1\n";
  out += "# id " + std::to_string(library.id()) + "\n";
  out += std::string("# tissue ") + TissueTypeName(library.tissue()) + "\n";
  out += std::string("# state ") + NeoplasticStateName(library.state()) +
         "\n";
  out += std::string("# source ") + TissueSourceName(library.source()) +
         "\n";
  for (const SageLibrary::Entry& e : library.entries()) {
    out += DecodeTag(e.tag);
    out += '\t';
    out += FormatCount(e.count);
    out += '\n';
  }
  return out;
}

Result<SageLibrary> ReadLibraryText(const std::string& name,
                                    const std::string& text) {
  int id = 0;
  TissueType tissue = TissueType::kBrain;
  NeoplasticState state = NeoplasticState::kNormal;
  TissueSource source = TissueSource::kBulkTissue;
  bool saw_magic = false;

  std::vector<SageLibrary::Entry> entries;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::vector<std::string> parts =
          Split(std::string(StripWhitespace(line.substr(1))), ' ');
      if (parts.size() >= 2 && parts[0] == "gea-sage-library") {
        saw_magic = true;
      } else if (parts.size() == 2 && parts[0] == "id") {
        id = std::atoi(parts[1].c_str());
      } else if (parts.size() == 2 && parts[0] == "tissue") {
        GEA_ASSIGN_OR_RETURN(tissue, ParseTissueType(parts[1]));
      } else if (parts.size() == 2 && parts[0] == "state") {
        if (parts[1] == "cancer") {
          state = NeoplasticState::kCancer;
        } else if (parts[1] == "normal") {
          state = NeoplasticState::kNormal;
        } else {
          return Status::InvalidArgument("bad state: " + parts[1]);
        }
      } else if (parts.size() == 2 && parts[0] == "source") {
        if (parts[1] == "bulk_tissue") {
          source = TissueSource::kBulkTissue;
        } else if (parts[1] == "cell_line") {
          source = TissueSource::kCellLine;
        } else {
          return Status::InvalidArgument("bad source: " + parts[1]);
        }
      }
      continue;
    }
    std::vector<std::string> fields = Split(std::string(line), '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          "library line " + std::to_string(line_no) +
          " is not TAG<TAB>count: " + std::string(line));
    }
    GEA_ASSIGN_OR_RETURN(TagId tag, EncodeTag(fields[0]));
    char* end = nullptr;
    double count = std::strtod(fields[1].c_str(), &end);
    if (end == fields[1].c_str() || *end != '\0' || count <= 0.0) {
      return Status::InvalidArgument("bad count on line " +
                                     std::to_string(line_no) + ": " +
                                     fields[1]);
    }
    entries.push_back({tag, count});
  }
  if (!saw_magic) {
    return Status::InvalidArgument(
        "missing '# gea-sage-library' header in " + name);
  }

  SageLibrary library(id, name, tissue, state, source);
  for (const SageLibrary::Entry& e : entries) {
    library.AddCount(e.tag, e.count);
  }
  return library;
}

Status SaveLibrary(const SageLibrary& library, const std::string& directory) {
  static obs::Counter& saved =
      obs::MetricsRegistry::Global().GetCounter("gea.sage.libraries_saved");
  saved.Add();
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + directory);
  }
  return WriteFileText(directory + "/" + library.name() + ".sage",
                       WriteLibraryText(library));
}

Result<SageLibrary> LoadLibrary(const std::string& path) {
  static obs::Counter& loaded =
      obs::MetricsRegistry::Global().GetCounter("gea.sage.libraries_loaded");
  loaded.Add();
  GEA_ASSIGN_OR_RETURN(std::string text, ReadFileText(path));
  std::string name = fs::path(path).stem().string();
  return ReadLibraryText(name, text);
}

Status SaveDataSet(const SageDataSet& dataset, const std::string& directory) {
  obs::TraceSpan span("sage.save_dataset");
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + directory);
  }
  std::string index;
  for (const SageLibrary& lib : dataset.libraries()) {
    GEA_RETURN_IF_ERROR(SaveLibrary(lib, directory));
    index += lib.name();
    index += '\t';
    index += TissueTypeName(lib.tissue());
    index += '\t';
    index += NeoplasticStateName(lib.state());
    index += '\t';
    index += TissueSourceName(lib.source());
    index += '\t';
    index += FormatCount(lib.TotalTagCount());
    index += '\t';
    index += std::to_string(lib.UniqueTagCount());
    index += '\n';
  }
  return WriteFileText(directory + "/sageName.txt", index);
}

Result<SageDataSet> LoadDataSet(const std::string& directory) {
  obs::TraceSpan span("sage.load_dataset");
  GEA_ASSIGN_OR_RETURN(std::string index,
                       ReadFileText(directory + "/sageName.txt"));
  SageDataSet dataset;
  for (const std::string& raw_line : Split(index, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(std::string(line), '\t');
    if (fields.empty() || fields[0].empty()) {
      return Status::InvalidArgument("bad sageName.txt line: " +
                                     std::string(line));
    }
    GEA_ASSIGN_OR_RETURN(
        SageLibrary lib,
        LoadLibrary(directory + "/" + fields[0] + ".sage"));
    dataset.AddLibrary(std::move(lib));
  }
  return dataset;
}

}  // namespace gea::sage
