#ifndef GEA_SAGE_LIBRARY_H_
#define GEA_SAGE_LIBRARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sage/tag_codec.h"

namespace gea::sage {

/// The system-defined tissue types of the SAGE panel (Section 2.2.3 and
/// Fig. 4.4). User-defined tissue types are handled at the workbench level
/// as named library collections.
enum class TissueType {
  kBrain = 0,
  kBreast,
  kColon,
  kKidney,
  kOvary,
  kPancreas,
  kProstate,
  kSkin,
  kVascular,
};

inline constexpr int kNumTissueTypes = 9;

const char* TissueTypeName(TissueType type);
Result<TissueType> ParseTissueType(const std::string& name);
std::vector<TissueType> AllTissueTypes();

/// Neoplastic state of the profiled tissue.
enum class NeoplasticState {
  kNormal = 0,
  kCancer,
};

const char* NeoplasticStateName(NeoplasticState state);

/// How the sample was obtained (Section 2.2.3): bulk tissue taken directly
/// from a body, or an immortalized cell line.
enum class TissueSource {
  kBulkTissue = 0,
  kCellLine,
};

const char* TissueSourceName(TissueSource source);

/// One SAGE library: the expression profile of a single sample, i.e. a list
/// of tags with their count values (Section 2.2.3). Counts are doubles
/// because normalization (Section 4.2) rescales them; raw libraries hold
/// integral values.
///
/// Entries are kept sorted by TagId with no duplicates and no zero counts,
/// which makes per-tag lookup O(log n) and library merges linear.
class SageLibrary {
 public:
  SageLibrary(int id, std::string name, TissueType tissue,
              NeoplasticState state, TissueSource source)
      : id_(id),
        name_(std::move(name)),
        tissue_(tissue),
        state_(state),
        source_(source) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  TissueType tissue() const { return tissue_; }
  NeoplasticState state() const { return state_; }
  TissueSource source() const { return source_; }

  /// Count of `tag`, zero when absent.
  double Count(TagId tag) const;

  /// Sets the count of `tag` (erases the entry when `count` == 0).
  void SetCount(TagId tag, double count);

  /// Adds `delta` to the count of `tag`.
  void AddCount(TagId tag, double delta);

  /// Removes `tag` if present; returns whether it was present.
  bool Erase(TagId tag);

  /// Number of distinct tags detected ("unique tags", Section 2.2.3).
  size_t UniqueTagCount() const { return entries_.size(); }

  /// Sum of all count values ("total tags", Section 2.2.3).
  double TotalTagCount() const;

  /// Multiplies every count by `factor`.
  void Scale(double factor);

  struct Entry {
    TagId tag;
    double count;
  };

  /// Sorted by TagId.
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  // Returns the position of `tag` in entries_ or the insertion point.
  size_t LowerBound(TagId tag) const;

  int id_;
  std::string name_;
  TissueType tissue_;
  NeoplasticState state_;
  TissueSource source_;
  std::vector<Entry> entries_;
};

}  // namespace gea::sage

#endif  // GEA_SAGE_LIBRARY_H_
