#ifndef GEA_SAGE_DATASET_H_
#define GEA_SAGE_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sage/library.h"
#include "sage/tag_codec.h"

namespace gea::sage {

/// A collection of SAGE libraries — the unit on which GEA operates (the
/// whole 100-library SAGE data set, a system-defined tissue type slice, or
/// a user-defined tissue type, Section 4.3.1.2).
class SageDataSet {
 public:
  SageDataSet() = default;
  explicit SageDataSet(std::vector<SageLibrary> libraries)
      : libraries_(std::move(libraries)) {}

  size_t NumLibraries() const { return libraries_.size(); }
  const SageLibrary& library(size_t i) const { return libraries_[i]; }
  SageLibrary& mutable_library(size_t i) { return libraries_[i]; }
  const std::vector<SageLibrary>& libraries() const { return libraries_; }

  void AddLibrary(SageLibrary library) {
    libraries_.push_back(std::move(library));
  }

  /// Library with the given id / name.
  Result<const SageLibrary*> FindById(int id) const;
  Result<const SageLibrary*> FindByName(const std::string& name) const;

  /// Sorted list of every tag appearing in at least one library.
  std::vector<TagId> TagUniverse() const;

  /// Number of distinct tags across all libraries.
  size_t UniverseSize() const { return TagUniverse().size(); }

  /// Libraries of one tissue type (the Fig. 4.4 data-set-by-tissue).
  SageDataSet FilterByTissue(TissueType tissue) const;

  /// Libraries whose state matches.
  SageDataSet FilterByState(NeoplasticState state) const;

  /// Libraries whose ids appear in `ids` (the Fig. 4.15 user-defined data
  /// set). Unknown ids are reported as NotFound.
  Result<SageDataSet> SelectByIds(const std::vector<int>& ids) const;

  /// Libraries whose ids do NOT appear in `ids`.
  SageDataSet ExcludeIds(const std::vector<int>& ids) const;

 private:
  std::vector<SageLibrary> libraries_;
};

}  // namespace gea::sage

#endif  // GEA_SAGE_DATASET_H_
