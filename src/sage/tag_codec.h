#ifndef GEA_SAGE_TAG_CODEC_H_
#define GEA_SAGE_TAG_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gea::sage {

/// A SAGE tag is a nucleotide sequence of exactly 10 base pairs over the
/// alphabet {A, C, G, T} (Section 2.2.3). Two bits per base pack a tag
/// into 20 bits; the packed value doubles as the thesis's "tag number"
/// (the parenthesized id shown in windows like Fig. 4.9, e.g.
/// "GAGGGAGTTT_(29994)").
using TagId = uint32_t;

/// Tag length in base pairs.
inline constexpr int kTagLength = 10;

/// Number of distinct possible tags: 4^10.
inline constexpr TagId kNumPossibleTags = 1u << (2 * kTagLength);

/// Packs a 10-character ACGT string into a TagId. A < C < G < T per base,
/// most-significant base first, so lexicographic string order equals
/// numeric TagId order.
Result<TagId> EncodeTag(std::string_view tag);

/// Unpacks a TagId back to its 10-character string. Requires
/// id < kNumPossibleTags.
std::string DecodeTag(TagId id);

/// True when `tag` is a well-formed 10-bp ACGT sequence.
bool IsValidTagString(std::string_view tag);

/// The "TAGNAME_(id)" rendering used throughout the thesis's screenshots.
std::string TagLabel(TagId id);

}  // namespace gea::sage

#endif  // GEA_SAGE_TAG_CODEC_H_
