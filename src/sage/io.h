#ifndef GEA_SAGE_IO_H_
#define GEA_SAGE_IO_H_

#include <string>

#include "common/result.h"
#include "sage/dataset.h"
#include "sage/library.h"

namespace gea::sage {

/// File formats for SAGE libraries, modeled on how the thesis stores them
/// (Section 4.2: one file per library inside a `SageLibrary` directory,
/// plus a `sageName.txt` index file naming each library with its
/// attributes).
///
/// Library file layout (tab-separated):
///   # gea-sage-library v1
///   # id <id>
///   # tissue <tissue>
///   # state <cancer|normal>
///   # source <bulk_tissue|cell_line>
///   <TAG>\t<count>
///   ...

/// Serializes one library to the text format above.
std::string WriteLibraryText(const SageLibrary& library);

/// Parses a library from the text format. `name` names the library (the
/// thesis derives it from the file name).
Result<SageLibrary> ReadLibraryText(const std::string& name,
                                    const std::string& text);

/// Writes `library` to `<directory>/<library name>.sage`.
Status SaveLibrary(const SageLibrary& library, const std::string& directory);

/// Reads a library from `path`; the name is the file's base name without
/// the .sage extension.
Result<SageLibrary> LoadLibrary(const std::string& path);

/// Writes every library of `dataset` into `directory` (created if
/// needed), plus the `sageName.txt` index:
///   <name>\t<tissue>\t<state>\t<source>\t<total tags>\t<unique tags>
Status SaveDataSet(const SageDataSet& dataset, const std::string& directory);

/// Loads a data set previously written by SaveDataSet, using
/// `sageName.txt` to enumerate the libraries. Library order follows the
/// index file.
Result<SageDataSet> LoadDataSet(const std::string& directory);

}  // namespace gea::sage

#endif  // GEA_SAGE_IO_H_
