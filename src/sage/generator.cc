#include "sage/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace gea::sage {

namespace {

/// Relative abundance of one structured tag in a library class.
struct TagProfile {
  TagId tag;
  double abundance;  // relative weight before per-library noise
};

/// Draws `n` distinct TagIds not yet in `used`.
std::vector<TagId> DrawDistinctTags(int n, Rng& rng,
                                    std::unordered_set<TagId>& used) {
  std::vector<TagId> out;
  out.reserve(static_cast<size_t>(n));
  while (out.size() < static_cast<size_t>(n)) {
    TagId candidate = static_cast<TagId>(
        rng.UniformInt(0, static_cast<int64_t>(kNumPossibleTags) - 1));
    if (used.insert(candidate).second) out.push_back(candidate);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double LogNormal(Rng& rng, double median, double sigma) {
  return median * std::exp(rng.Normal(0.0, sigma));
}

}  // namespace

SyntheticSageGenerator::SyntheticSageGenerator(GeneratorConfig config)
    : config_(std::move(config)) {
  if (config_.panels.empty()) {
    config_.panels = DefaultPanels();
  }
}

std::vector<TissuePanel> SyntheticSageGenerator::DefaultPanels() {
  std::vector<TissuePanel> panels;
  for (TissueType t : AllTissueTypes()) {
    TissuePanel panel;
    panel.tissue = t;
    panels.push_back(panel);
  }
  return panels;
}

std::vector<TissuePanel> SyntheticSageGenerator::SmallPanels() {
  TissuePanel brain;
  brain.tissue = TissueType::kBrain;
  TissuePanel breast;
  breast.tissue = TissueType::kBreast;
  return {brain, breast};
}

SyntheticSage SyntheticSageGenerator::Generate() {
  Rng rng(config_.seed);
  SyntheticSage out;
  std::unordered_set<TagId> used_tags;

  // ---- Plant the structured tag pools and their base abundances. ----
  GroundTruth& truth = out.truth;
  truth.housekeeping =
      DrawDistinctTags(config_.num_housekeeping_tags, rng, used_tags);

  // Global per-tag abundance medians, shared across libraries so that
  // libraries of the same class agree on expression levels (what makes
  // compact tags compact).
  std::map<TagId, double> housekeeping_abundance;
  for (TagId tag : truth.housekeeping) {
    housekeeping_abundance[tag] = LogNormal(rng, 40.0, 0.7);
  }

  // Pan-tissue cancer signatures: the same regulation in every tissue.
  truth.shared_cancer_up =
      DrawDistinctTags(config_.num_shared_cancer_up_tags, rng, used_tags);
  truth.shared_cancer_down =
      DrawDistinctTags(config_.num_shared_cancer_down_tags, rng, used_tags);
  std::map<TagId, double> shared_up_in_cancer;
  std::map<TagId, double> shared_up_in_normal;
  std::map<TagId, double> shared_down_in_cancer;
  std::map<TagId, double> shared_down_in_normal;
  for (TagId tag : truth.shared_cancer_up) {
    // High abundance keeps sampling (Poisson) noise small enough that a
    // decent share of these stay compact within the core subtype, so the
    // Case 3 "always higher in cancer" query has matches to find.
    shared_up_in_cancer[tag] = LogNormal(rng, 300.0, 0.4);
    shared_up_in_normal[tag] = LogNormal(rng, 60.0, 0.4);
  }
  for (TagId tag : truth.shared_cancer_down) {
    shared_down_in_cancer[tag] = LogNormal(rng, 0.5, 0.5);
    shared_down_in_normal[tag] = LogNormal(rng, 30.0, 0.4);
  }

  struct TissueProfiles {
    std::map<TagId, double> baseline;
    std::map<TagId, double> signature;
    std::map<TagId, double> cancer_up_in_cancer;
    std::map<TagId, double> cancer_up_in_normal;
    std::map<TagId, double> cancer_down_in_cancer;
    std::map<TagId, double> cancer_down_in_normal;
  };
  std::map<TissueType, TissueProfiles> profiles;

  for (const TissuePanel& panel : config_.panels) {
    TissueType tissue = panel.tissue;
    truth.baseline[tissue] =
        DrawDistinctTags(config_.num_baseline_tags_per_tissue, rng, used_tags);
    truth.signature[tissue] = DrawDistinctTags(
        config_.num_signature_tags_per_tissue, rng, used_tags);
    truth.cancer_up[tissue] = DrawDistinctTags(
        config_.num_cancer_up_tags_per_tissue, rng, used_tags);
    truth.cancer_down[tissue] = DrawDistinctTags(
        config_.num_cancer_down_tags_per_tissue, rng, used_tags);

    TissueProfiles& prof = profiles[tissue];
    for (TagId tag : truth.baseline[tissue]) {
      prof.baseline[tag] = LogNormal(rng, 6.0, 1.0);
    }
    for (TagId tag : truth.signature[tissue]) {
      prof.signature[tag] = LogNormal(rng, 60.0, 0.5);
    }
    for (TagId tag : truth.cancer_up[tissue]) {
      // High in cancer (Fig. 4.2's Ribosomal Protein L12 shape), modest in
      // normal.
      prof.cancer_up_in_cancer[tag] = LogNormal(rng, 160.0, 0.4);
      prof.cancer_up_in_normal[tag] = LogNormal(rng, 40.0, 0.4);
    }
    for (TagId tag : truth.cancer_down[tissue]) {
      // Silenced in cancer (Fig. 4.3's Alpha Tubulin shape), expressed in
      // normal.
      prof.cancer_down_in_cancer[tag] = LogNormal(rng, 0.5, 0.5);
      prof.cancer_down_in_normal[tag] = LogNormal(rng, 30.0, 0.4);
    }
  }

  // ---- Generate libraries. ----
  int next_id = 1;
  for (const TissuePanel& panel : config_.panels) {
    TissueType tissue = panel.tissue;
    const TissueProfiles& prof = profiles[tissue];

    // Decide the core cancer subtype membership up front.
    int num_cancer = panel.num_cancer_bulk + panel.num_cancer_cell_line;
    int num_core = static_cast<int>(
        std::lround(config_.cancer_core_fraction * num_cancer));
    num_core = std::clamp(num_core, std::min(1, num_cancer), num_cancer);

    struct PendingLibrary {
      NeoplasticState state;
      TissueSource source;
    };
    std::vector<PendingLibrary> pending;
    for (int i = 0; i < panel.num_cancer_bulk; ++i) {
      pending.push_back({NeoplasticState::kCancer, TissueSource::kBulkTissue});
    }
    for (int i = 0; i < panel.num_cancer_cell_line; ++i) {
      pending.push_back({NeoplasticState::kCancer, TissueSource::kCellLine});
    }
    for (int i = 0; i < panel.num_normal_bulk; ++i) {
      pending.push_back({NeoplasticState::kNormal, TissueSource::kBulkTissue});
    }
    for (int i = 0; i < panel.num_normal_cell_line; ++i) {
      pending.push_back({NeoplasticState::kNormal, TissueSource::kCellLine});
    }

    int cancer_seen = 0;
    int serial = 0;
    for (const PendingLibrary& spec : pending) {
      ++serial;
      bool is_cancer = spec.state == NeoplasticState::kCancer;
      bool is_core = false;
      if (is_cancer) {
        is_core = cancer_seen < num_core;
        ++cancer_seen;
      }

      std::string name = std::string("SAGE_") + TissueTypeName(tissue) + "_" +
                         NeoplasticStateName(spec.state) + "_" +
                         (spec.source == TissueSource::kCellLine ? "CL" : "B") +
                         std::to_string(serial);
      SageLibrary lib(next_id, name, tissue, spec.state, spec.source);
      if (is_core) {
        truth.core_cancer_library_ids[tissue].push_back(next_id);
      }
      ++next_id;

      double noise = is_cancer ? (is_core ? config_.core_cancer_noise
                                          : config_.outlier_cancer_noise)
                               : config_.normal_noise;

      // Assemble this library's expression profile.
      std::vector<TagProfile> expressed;
      auto add_group = [&](const std::map<TagId, double>& group,
                           double keep_prob) {
        for (const auto& [tag, abundance] : group) {
          if (keep_prob < 1.0 && !rng.Bernoulli(keep_prob)) continue;
          double level = abundance * std::max(0.0, rng.Normal(1.0, noise));
          if (level <= 0.0) continue;
          expressed.push_back({tag, level});
        }
      };
      add_group(housekeeping_abundance, 1.0);
      add_group(prof.baseline, config_.baseline_expression_fraction);
      add_group(prof.signature, 1.0);
      if (is_cancer) {
        add_group(prof.cancer_up_in_cancer, 1.0);
        add_group(prof.cancer_down_in_cancer, 1.0);
        add_group(shared_up_in_cancer, 1.0);
        add_group(shared_down_in_cancer, 1.0);
      } else {
        add_group(prof.cancer_up_in_normal, 1.0);
        add_group(prof.cancer_down_in_normal, 1.0);
        add_group(shared_up_in_normal, 1.0);
        add_group(shared_down_in_normal, 1.0);
      }
      // Outlier cancer libraries deviate from the core sub-type (Case 2):
      // they drop a chunk of the up-regulated signature and re-express a
      // fraction of the silenced tags at near-normal levels.
      if (is_cancer && !is_core) {
        for (TagProfile& tp : expressed) {
          if (prof.cancer_up_in_cancer.count(tp.tag) > 0 &&
              rng.Bernoulli(0.4)) {
            tp.abundance *= rng.UniformDouble(0.05, 0.3);
          }
          bool is_down_tag = prof.cancer_down_in_cancer.count(tp.tag) > 0 ||
                             shared_down_in_cancer.count(tp.tag) > 0;
          if (is_down_tag &&
              rng.Bernoulli(config_.outlier_reexpress_fraction)) {
            auto it = prof.cancer_down_in_normal.find(tp.tag);
            double normal_level = it != prof.cancer_down_in_normal.end()
                                      ? it->second
                                      : shared_down_in_normal.at(tp.tag);
            tp.abundance =
                normal_level * std::max(0.1, rng.Normal(1.0, noise));
          }
        }
      }

      // Sample counts at the drawn sequencing depth.
      int depth = static_cast<int>(
          rng.UniformInt(config_.min_depth, config_.max_depth));
      int error_count =
          static_cast<int>(std::lround(config_.error_rate * depth));
      int signal_count = depth - error_count;

      double total_abundance = 0.0;
      for (const TagProfile& tp : expressed) total_abundance += tp.abundance;
      for (const TagProfile& tp : expressed) {
        double mean =
            tp.abundance / total_abundance * static_cast<double>(signal_count);
        if (mean <= 0.0) continue;
        int64_t count = rng.Poisson(mean);
        if (count > 0) {
          lib.AddCount(tp.tag, static_cast<double>(count));
        }
      }

      // Sequencing-error singletons: random tags, frequency 1 each. They
      // avoid the structured pools so cleaning statistics are meaningful.
      for (int e = 0; e < error_count; ++e) {
        TagId tag;
        do {
          tag = static_cast<TagId>(
              rng.UniformInt(0, static_cast<int64_t>(kNumPossibleTags) - 1));
        } while (used_tags.count(tag) > 0);
        lib.AddCount(tag, 1.0);
      }

      out.dataset.AddLibrary(std::move(lib));
    }
  }
  return out;
}

}  // namespace gea::sage
