#include "sage/cleaning.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace gea::sage {

double CleaningStats::MinRemovedFraction() const {
  if (per_library_removed_fraction.empty()) return 0.0;
  return *std::min_element(per_library_removed_fraction.begin(),
                           per_library_removed_fraction.end());
}

double CleaningStats::MaxRemovedFraction() const {
  if (per_library_removed_fraction.empty()) return 0.0;
  return *std::max_element(per_library_removed_fraction.begin(),
                           per_library_removed_fraction.end());
}

double CleaningStats::AvgRemovedFraction() const {
  if (per_library_removed_fraction.empty()) return 0.0;
  double sum = 0.0;
  for (double f : per_library_removed_fraction) sum += f;
  return sum / static_cast<double>(per_library_removed_fraction.size());
}

std::string CleaningStats::ToString() const {
  return "tags: " + std::to_string(tags_before) + " -> " +
         std::to_string(tags_after) + " (removed " +
         std::to_string(tags_removed) + "); per-library removal " +
         FormatDouble(100.0 * MinRemovedFraction(), 1) + "%-" +
         FormatDouble(100.0 * MaxRemovedFraction(), 1) + "% (avg " +
         FormatDouble(100.0 * AvgRemovedFraction(), 1) + "%)";
}

CleaningStats RemoveErrorTags(SageDataSet& dataset, double min_tolerance) {
  // Max count of each tag over all libraries; a tag survives iff its max
  // exceeds the tolerance somewhere.
  std::unordered_map<TagId, double> max_count;
  for (const SageLibrary& lib : dataset.libraries()) {
    for (const SageLibrary::Entry& e : lib.entries()) {
      auto [it, inserted] = max_count.emplace(e.tag, e.count);
      if (!inserted && e.count > it->second) it->second = e.count;
    }
  }

  CleaningStats stats;
  stats.tags_before = max_count.size();

  for (size_t i = 0; i < dataset.NumLibraries(); ++i) {
    SageLibrary& lib = dataset.mutable_library(i);
    size_t before = lib.UniqueTagCount();
    std::vector<TagId> to_remove;
    for (const SageLibrary::Entry& e : lib.entries()) {
      if (max_count.at(e.tag) <= min_tolerance) to_remove.push_back(e.tag);
    }
    for (TagId tag : to_remove) lib.Erase(tag);
    stats.per_library_removed_fraction.push_back(
        before == 0 ? 0.0
                    : static_cast<double>(to_remove.size()) /
                          static_cast<double>(before));
  }

  size_t removed = 0;
  for (const auto& [tag, max] : max_count) {
    if (max <= min_tolerance) ++removed;
  }
  stats.tags_removed = removed;
  stats.tags_after = stats.tags_before - removed;
  return stats;
}

void NormalizeToDepth(SageDataSet& dataset, double target_depth) {
  for (size_t i = 0; i < dataset.NumLibraries(); ++i) {
    SageLibrary& lib = dataset.mutable_library(i);
    double total = lib.TotalTagCount();
    if (total <= 0.0) continue;
    lib.Scale(target_depth / total);
  }
}

CleaningStats CleanAndNormalize(SageDataSet& dataset, double min_tolerance,
                                double target_depth) {
  CleaningStats stats = RemoveErrorTags(dataset, min_tolerance);
  NormalizeToDepth(dataset, target_depth);
  return stats;
}

}  // namespace gea::sage
