#include "sage/matrix.h"

#include <algorithm>

namespace gea::sage {

ExpressionMatrix ExpressionMatrix::FromDataSet(const SageDataSet& dataset) {
  return FromDataSet(dataset, dataset.TagUniverse());
}

ExpressionMatrix ExpressionMatrix::FromDataSet(const SageDataSet& dataset,
                                               std::vector<TagId> tags) {
  std::vector<LibraryMeta> libs;
  libs.reserve(dataset.NumLibraries());
  for (const SageLibrary& lib : dataset.libraries()) {
    libs.push_back({lib.id(), lib.name(), lib.tissue(), lib.state(),
                    lib.source()});
  }
  std::vector<double> values(tags.size() * libs.size(), 0.0);
  for (size_t col = 0; col < dataset.NumLibraries(); ++col) {
    const SageLibrary& lib = dataset.library(col);
    // Both entry lists and `tags` are sorted: merge instead of per-tag
    // binary search.
    size_t row = 0;
    for (const SageLibrary::Entry& e : lib.entries()) {
      while (row < tags.size() && tags[row] < e.tag) ++row;
      if (row == tags.size()) break;
      if (tags[row] == e.tag) {
        values[row * libs.size() + col] = e.count;
      }
    }
  }
  return ExpressionMatrix(std::move(tags), std::move(libs),
                          std::move(values));
}

std::vector<double> ExpressionMatrix::LibraryColumn(size_t col) const {
  std::vector<double> out(tags_.size());
  for (size_t row = 0; row < tags_.size(); ++row) {
    out[row] = ValueAt(row, col);
  }
  return out;
}

std::optional<size_t> ExpressionMatrix::FindTagRow(TagId tag) const {
  auto it = std::lower_bound(tags_.begin(), tags_.end(), tag);
  if (it == tags_.end() || *it != tag) return std::nullopt;
  return static_cast<size_t>(it - tags_.begin());
}

std::optional<size_t> ExpressionMatrix::FindLibraryColumn(
    int library_id) const {
  for (size_t col = 0; col < libraries_.size(); ++col) {
    if (libraries_[col].id == library_id) return col;
  }
  return std::nullopt;
}

}  // namespace gea::sage
