#include "sage/dataset.h"

#include <algorithm>
#include <unordered_set>

namespace gea::sage {

Result<const SageLibrary*> SageDataSet::FindById(int id) const {
  for (const SageLibrary& lib : libraries_) {
    if (lib.id() == id) return &lib;
  }
  return Status::NotFound("no library with id " + std::to_string(id));
}

Result<const SageLibrary*> SageDataSet::FindByName(
    const std::string& name) const {
  for (const SageLibrary& lib : libraries_) {
    if (lib.name() == name) return &lib;
  }
  return Status::NotFound("no library named " + name);
}

std::vector<TagId> SageDataSet::TagUniverse() const {
  // K-way merge of already-sorted entry lists via a flat sort+unique; the
  // data sets involved (≤ a few hundred thousand entries) keep this cheap.
  std::vector<TagId> tags;
  for (const SageLibrary& lib : libraries_) {
    for (const SageLibrary::Entry& e : lib.entries()) tags.push_back(e.tag);
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  return tags;
}

SageDataSet SageDataSet::FilterByTissue(TissueType tissue) const {
  SageDataSet out;
  for (const SageLibrary& lib : libraries_) {
    if (lib.tissue() == tissue) out.AddLibrary(lib);
  }
  return out;
}

SageDataSet SageDataSet::FilterByState(NeoplasticState state) const {
  SageDataSet out;
  for (const SageLibrary& lib : libraries_) {
    if (lib.state() == state) out.AddLibrary(lib);
  }
  return out;
}

Result<SageDataSet> SageDataSet::SelectByIds(
    const std::vector<int>& ids) const {
  SageDataSet out;
  for (int id : ids) {
    GEA_ASSIGN_OR_RETURN(const SageLibrary* lib, FindById(id));
    out.AddLibrary(*lib);
  }
  return out;
}

SageDataSet SageDataSet::ExcludeIds(const std::vector<int>& ids) const {
  std::unordered_set<int> excluded(ids.begin(), ids.end());
  SageDataSet out;
  for (const SageLibrary& lib : libraries_) {
    if (excluded.count(lib.id()) == 0) out.AddLibrary(lib);
  }
  return out;
}

}  // namespace gea::sage
