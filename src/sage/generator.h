#ifndef GEA_SAGE_GENERATOR_H_
#define GEA_SAGE_GENERATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "sage/dataset.h"
#include "sage/library.h"
#include "sage/tag_codec.h"

namespace gea::sage {

/// Library counts for one tissue type in the synthetic panel.
struct TissuePanel {
  TissueType tissue = TissueType::kBrain;
  int num_cancer_bulk = 6;
  int num_cancer_cell_line = 2;
  int num_normal_bulk = 3;
  int num_normal_cell_line = 1;

  int TotalLibraries() const {
    return num_cancer_bulk + num_cancer_cell_line + num_normal_bulk +
           num_normal_cell_line;
  }
};

/// Configuration of the synthetic SAGE data set. The defaults are tuned to
/// match the statistics the thesis states about the real NCBI SAGE data
/// (Sections 2.2.3 and 4.2): ~100 libraries across the tissue panel,
/// per-library depth between roughly 1,000 and 32,000 tags, ~10 % of each
/// library's tag count consisting of sequencing-error singletons, and the
/// large majority of unique tags appearing with frequency 1.
struct GeneratorConfig {
  uint64_t seed = 42;

  /// Tissue panels; empty means the full 9-tissue default panel
  /// (12 libraries each, 108 total).
  std::vector<TissuePanel> panels;

  /// "Housekeeping genes expressed in all cells" (Section 2.1).
  int num_housekeeping_tags = 300;

  /// Tags expressed at ordinary levels within one tissue type.
  int num_baseline_tags_per_tissue = 800;

  /// Fraction of the tissue baseline pool each library expresses.
  double baseline_expression_fraction = 0.6;

  /// Highly expressed tissue-identity tags (both states).
  int num_signature_tags_per_tissue = 120;

  /// Cancer-regulated tags per tissue: up = high in cancer, low in normal;
  /// down = silenced in cancer, expressed in normal. These drive the
  /// positive/negative gaps of Figures 4.2 and 4.3.
  int num_cancer_up_tags_per_tissue = 60;
  int num_cancer_down_tags_per_tissue = 60;

  /// Pan-tissue cancer-regulated tags, expressed in every tissue type and
  /// regulated the same way in all of them. These are the genes Case 3
  /// (Section 4.3.3) screens for: always higher / always lower in
  /// cancerous libraries regardless of tissue.
  int num_shared_cancer_up_tags = 30;
  int num_shared_cancer_down_tags = 30;

  /// Fraction of each tissue's cancer libraries forming the tight "core
  /// subtype" that fascicle mining should recover; the remainder are
  /// perturbed (the cancer-outside-the-fascicle libraries of Case 2).
  double cancer_core_fraction = 0.7;

  /// Fraction of the cancer-silenced (down) tags that each *outlier*
  /// cancer library re-expresses at near-normal levels — the sub-type
  /// structure Case 2 hints at ("different sub-types of brain cancer").
  /// This is what keeps outliers outside the fascicle at sufficiently
  /// demanding compact-tag counts.
  double outlier_reexpress_fraction = 0.35;

  /// Per-library sequencing depth (total tag count) range.
  int min_depth = 8000;
  int max_depth = 32000;

  /// Fraction of each library's total count contributed by sequencing-
  /// error tags, each appearing with frequency 1 (Section 4.2 estimates
  /// 10 %).
  double error_rate = 0.10;

  /// Relative expression noise (coefficient of variation) by group.
  double core_cancer_noise = 0.08;
  double outlier_cancer_noise = 0.40;
  double normal_noise = 0.20;
};

/// Which structured tags were planted where — used by tests and benches to
/// check that the pipeline recovers the planted biology.
struct GroundTruth {
  std::vector<TagId> housekeeping;
  std::map<TissueType, std::vector<TagId>> baseline;
  std::map<TissueType, std::vector<TagId>> signature;
  std::map<TissueType, std::vector<TagId>> cancer_up;
  std::map<TissueType, std::vector<TagId>> cancer_down;
  /// Regulated identically in every tissue (the Case 3 targets).
  std::vector<TagId> shared_cancer_up;
  std::vector<TagId> shared_cancer_down;
  /// Library ids of the core cancer subtype per tissue.
  std::map<TissueType, std::vector<int>> core_cancer_library_ids;
};

/// Output of one generation run.
struct SyntheticSage {
  SageDataSet dataset;
  GroundTruth truth;
};

/// Generates a deterministic synthetic SAGE data set per `config`.
class SyntheticSageGenerator {
 public:
  explicit SyntheticSageGenerator(GeneratorConfig config);

  /// Runs the generator. Repeated calls with the same config produce the
  /// same data.
  SyntheticSage Generate();

  /// The default full panel: all nine tissue types.
  static std::vector<TissuePanel> DefaultPanels();

  /// A small two-tissue panel (brain + breast) for fast tests.
  static std::vector<TissuePanel> SmallPanels();

 private:
  GeneratorConfig config_;
};

}  // namespace gea::sage

#endif  // GEA_SAGE_GENERATOR_H_
