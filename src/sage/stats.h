#ifndef GEA_SAGE_STATS_H_
#define GEA_SAGE_STATS_H_

#include <string>

#include "common/result.h"
#include "rel/table.h"
#include "sage/dataset.h"

namespace gea::sage {

/// Builders for the relational views of the SAGE data described in
/// Appendix IV — the bridge from the SAGE domain objects to the
/// extensional world.

/// The `Libraries` relation (Appendix IV, table 13):
///   Lib_ID:int, Lib_Name:string, Type:string, CAN_NOR:string,
///   BT_CL:string, Tag:double (total tags), Utag:int (unique tags).
rel::Table BuildLibraryInfoTable(const SageDataSet& dataset,
                                 const std::string& table_name = "Libraries");

/// The `Typeinfo` relation (Appendix IV, table 24): Type:string,
/// Lib_ID:int, LibOrder:int — which libraries belong to each tissue type
/// and their order.
rel::Table BuildTissueTypeTable(const SageDataSet& dataset,
                                const std::string& table_name = "Typeinfo");

/// The rotated `TAGS` relation (Appendix IV, table 19 / Fig. 4.30b):
/// TagName:string, TagNo:int, then one double column per library named by
/// the library. This is the physical storage view of Section 4.6.1.
rel::Table BuildTagsTable(const SageDataSet& dataset,
                          const std::string& table_name = "TAGS");

/// The `Sageinfo` relation (Appendix IV, table 14): Totag:int (number of
/// distinct tags), ToLib:int (number of libraries).
rel::Table BuildSageInfoTable(const SageDataSet& dataset,
                              const std::string& table_name = "Sageinfo");

}  // namespace gea::sage

#endif  // GEA_SAGE_STATS_H_
