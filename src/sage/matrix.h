#ifndef GEA_SAGE_MATRIX_H_
#define GEA_SAGE_MATRIX_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "sage/dataset.h"
#include "sage/library.h"
#include "sage/tag_codec.h"

namespace gea::sage {

/// Descriptive attributes of one matrix column (one library).
struct LibraryMeta {
  int id = 0;
  std::string name;
  TissueType tissue = TissueType::kBrain;
  NeoplasticState state = NeoplasticState::kNormal;
  TissueSource source = TissueSource::kBulkTissue;
};

/// The dense libraries-by-tags matrix in the **rotated physical layout** of
/// Section 4.6.1: a DBMS cannot hold 60,000 columns, so conceptually tags
/// are columns but physically tags are stored as rows and libraries as
/// columns. A tag row is contiguous in memory; accessing a library column
/// strides by the number of libraries.
///
/// Absent tags hold 0.0 — the thesis's convention ("genes that do not
/// exist will remain as zero", Section 4.2).
class ExpressionMatrix {
 public:
  /// Builds the matrix over all tags in `dataset` (its tag universe).
  static ExpressionMatrix FromDataSet(const SageDataSet& dataset);

  /// Builds the matrix restricted to `tags` (must be sorted ascending).
  static ExpressionMatrix FromDataSet(const SageDataSet& dataset,
                                      std::vector<TagId> tags);

  size_t NumTags() const { return tags_.size(); }
  size_t NumLibraries() const { return libraries_.size(); }

  TagId tag(size_t row) const { return tags_[row]; }
  const std::vector<TagId>& tags() const { return tags_; }
  const LibraryMeta& library(size_t col) const { return libraries_[col]; }
  const std::vector<LibraryMeta>& libraries() const { return libraries_; }

  /// Expression level of tag row `row` in library column `col`.
  double ValueAt(size_t row, size_t col) const {
    return values_[row * libraries_.size() + col];
  }
  void SetValue(size_t row, size_t col, double v) {
    values_[row * libraries_.size() + col] = v;
  }

  /// Contiguous view of one tag's values across all libraries — the
  /// physical row of Fig. 4.30(b).
  std::span<const double> TagRow(size_t row) const {
    return {values_.data() + row * libraries_.size(), libraries_.size()};
  }

  /// Copy of one library's values across all tags — the conceptual row of
  /// Fig. 4.30(a).
  std::vector<double> LibraryColumn(size_t col) const;

  /// Row index of `tag`, or nullopt.
  std::optional<size_t> FindTagRow(TagId tag) const;

  /// Column index of the library with `id`, or nullopt.
  std::optional<size_t> FindLibraryColumn(int library_id) const;

 private:
  ExpressionMatrix(std::vector<TagId> tags, std::vector<LibraryMeta> libs,
                   std::vector<double> values)
      : tags_(std::move(tags)),
        libraries_(std::move(libs)),
        values_(std::move(values)) {}

  std::vector<TagId> tags_;            // sorted ascending
  std::vector<LibraryMeta> libraries_;
  std::vector<double> values_;         // tags × libraries, row-major
};

}  // namespace gea::sage

#endif  // GEA_SAGE_MATRIX_H_
