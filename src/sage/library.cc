#include "sage/library.h"

#include <algorithm>

namespace gea::sage {

const char* TissueTypeName(TissueType type) {
  switch (type) {
    case TissueType::kBrain:
      return "brain";
    case TissueType::kBreast:
      return "breast";
    case TissueType::kColon:
      return "colon";
    case TissueType::kKidney:
      return "kidney";
    case TissueType::kOvary:
      return "ovary";
    case TissueType::kPancreas:
      return "pancreas";
    case TissueType::kProstate:
      return "prostate";
    case TissueType::kSkin:
      return "skin";
    case TissueType::kVascular:
      return "vascular";
  }
  return "?";
}

Result<TissueType> ParseTissueType(const std::string& name) {
  for (TissueType t : AllTissueTypes()) {
    if (name == TissueTypeName(t)) return t;
  }
  return Status::InvalidArgument("unknown tissue type: " + name);
}

std::vector<TissueType> AllTissueTypes() {
  std::vector<TissueType> out;
  out.reserve(kNumTissueTypes);
  for (int i = 0; i < kNumTissueTypes; ++i) {
    out.push_back(static_cast<TissueType>(i));
  }
  return out;
}

const char* NeoplasticStateName(NeoplasticState state) {
  switch (state) {
    case NeoplasticState::kNormal:
      return "normal";
    case NeoplasticState::kCancer:
      return "cancer";
  }
  return "?";
}

const char* TissueSourceName(TissueSource source) {
  switch (source) {
    case TissueSource::kBulkTissue:
      return "bulk_tissue";
    case TissueSource::kCellLine:
      return "cell_line";
  }
  return "?";
}

size_t SageLibrary::LowerBound(TagId tag) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), tag,
      [](const Entry& e, TagId t) { return e.tag < t; });
  return static_cast<size_t>(it - entries_.begin());
}

double SageLibrary::Count(TagId tag) const {
  size_t pos = LowerBound(tag);
  if (pos < entries_.size() && entries_[pos].tag == tag) {
    return entries_[pos].count;
  }
  return 0.0;
}

void SageLibrary::SetCount(TagId tag, double count) {
  size_t pos = LowerBound(tag);
  bool present = pos < entries_.size() && entries_[pos].tag == tag;
  if (count == 0.0) {
    if (present) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(pos));
    }
    return;
  }
  if (present) {
    entries_[pos].count = count;
  } else {
    entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos),
                    {tag, count});
  }
}

void SageLibrary::AddCount(TagId tag, double delta) {
  size_t pos = LowerBound(tag);
  if (pos < entries_.size() && entries_[pos].tag == tag) {
    entries_[pos].count += delta;
    if (entries_[pos].count == 0.0) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(pos));
    }
  } else if (delta != 0.0) {
    entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos),
                    {tag, delta});
  }
}

bool SageLibrary::Erase(TagId tag) {
  size_t pos = LowerBound(tag);
  if (pos < entries_.size() && entries_[pos].tag == tag) {
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(pos));
    return true;
  }
  return false;
}

double SageLibrary::TotalTagCount() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.count;
  return total;
}

void SageLibrary::Scale(double factor) {
  for (Entry& e : entries_) e.count *= factor;
}

}  // namespace gea::sage
