#ifndef GEA_SAGE_CLEANING_H_
#define GEA_SAGE_CLEANING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sage/dataset.h"

namespace gea::sage {

/// Statistics of one error-removal pass (Section 4.2 / Fig. 4.1).
struct CleaningStats {
  size_t tags_before = 0;
  size_t tags_after = 0;
  size_t tags_removed = 0;
  /// Fraction of each library's unique tags that were removed, in library
  /// order (the thesis reports 5 %–15 %).
  std::vector<double> per_library_removed_fraction;

  double MinRemovedFraction() const;
  double MaxRemovedFraction() const;
  double AvgRemovedFraction() const;

  std::string ToString() const;
};

/// Removes the sequencing-error tags: every tag whose count is less than
/// or equal to `min_tolerance` in *all* libraries is dropped from every
/// library. Tags with frequency 1 in some libraries but higher elsewhere
/// are kept (Section 4.2). Mutates `dataset` and returns the statistics.
CleaningStats RemoveErrorTags(SageDataSet& dataset, double min_tolerance = 1.0);

/// The per-cell mRNA count the thesis normalizes to (Section 4.2).
inline constexpr double kStandardDepth = 300000.0;

/// Scales every library so its total tag count equals `target_depth`
/// ("all libraries are scaled up to this amount"; absent tags remain
/// zero). Libraries with zero total are left untouched.
void NormalizeToDepth(SageDataSet& dataset,
                      double target_depth = kStandardDepth);

/// The full Fig. 4.1 pipeline: error removal followed by normalization.
CleaningStats CleanAndNormalize(SageDataSet& dataset,
                                double min_tolerance = 1.0,
                                double target_depth = kStandardDepth);

}  // namespace gea::sage

#endif  // GEA_SAGE_CLEANING_H_
