#include "sage/stats.h"

#include "sage/tag_codec.h"

namespace gea::sage {

rel::Table BuildLibraryInfoTable(const SageDataSet& dataset,
                                 const std::string& table_name) {
  rel::Schema schema({{"Lib_ID", rel::ValueType::kInt},
                      {"Lib_Name", rel::ValueType::kString},
                      {"Type", rel::ValueType::kString},
                      {"CAN_NOR", rel::ValueType::kString},
                      {"BT_CL", rel::ValueType::kString},
                      {"Tag", rel::ValueType::kDouble},
                      {"Utag", rel::ValueType::kInt}});
  rel::Table table(table_name, schema);
  for (const SageLibrary& lib : dataset.libraries()) {
    table.AppendRowUnchecked(
        {rel::Value::Int(lib.id()), rel::Value::String(lib.name()),
         rel::Value::String(TissueTypeName(lib.tissue())),
         rel::Value::String(NeoplasticStateName(lib.state())),
         rel::Value::String(TissueSourceName(lib.source())),
         rel::Value::Double(lib.TotalTagCount()),
         rel::Value::Int(static_cast<int64_t>(lib.UniqueTagCount()))});
  }
  return table;
}

rel::Table BuildTissueTypeTable(const SageDataSet& dataset,
                                const std::string& table_name) {
  rel::Schema schema({{"Type", rel::ValueType::kString},
                      {"Lib_ID", rel::ValueType::kInt},
                      {"LibOrder", rel::ValueType::kInt}});
  rel::Table table(table_name, schema);
  for (TissueType tissue : AllTissueTypes()) {
    int64_t order = 0;
    for (const SageLibrary& lib : dataset.libraries()) {
      if (lib.tissue() != tissue) continue;
      table.AppendRowUnchecked(
          {rel::Value::String(TissueTypeName(tissue)),
           rel::Value::Int(lib.id()), rel::Value::Int(order++)});
    }
  }
  return table;
}

rel::Table BuildTagsTable(const SageDataSet& dataset,
                          const std::string& table_name) {
  std::vector<rel::ColumnDef> defs = {{"TagName", rel::ValueType::kString},
                                      {"TagNo", rel::ValueType::kInt}};
  for (const SageLibrary& lib : dataset.libraries()) {
    defs.push_back({lib.name(), rel::ValueType::kDouble});
  }
  rel::Table table(table_name, rel::Schema(std::move(defs)));
  for (TagId tag : dataset.TagUniverse()) {
    rel::Row row = {rel::Value::String(DecodeTag(tag)),
                    rel::Value::Int(static_cast<int64_t>(tag))};
    for (const SageLibrary& lib : dataset.libraries()) {
      row.push_back(rel::Value::Double(lib.Count(tag)));
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

rel::Table BuildSageInfoTable(const SageDataSet& dataset,
                              const std::string& table_name) {
  rel::Schema schema({{"Totag", rel::ValueType::kInt},
                      {"ToLib", rel::ValueType::kInt}});
  rel::Table table(table_name, schema);
  table.AppendRowUnchecked(
      {rel::Value::Int(static_cast<int64_t>(dataset.UniverseSize())),
       rel::Value::Int(static_cast<int64_t>(dataset.NumLibraries()))});
  return table;
}

}  // namespace gea::sage
