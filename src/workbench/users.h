#ifndef GEA_WORKBENCH_USERS_H_
#define GEA_WORKBENCH_USERS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace gea::workbench {

/// The two access levels of Appendix III.1: administrators hold full
/// access; system users can run the analysis operations but none of the
/// administration or configuration features.
enum class AccessLevel {
  kUser = 0,
  kAdministrator,
};

const char* AccessLevelName(AccessLevel level);

/// The user-account store of Appendix III.3 (the Userinfo relation of
/// Appendix IV, table 26). Passwords are stored salted-and-hashed — a
/// deliberate upgrade over the thesis's plaintext column; the
/// authentication behaviour (match user name + password + access level)
/// is unchanged.
class UserDatabase {
 public:
  /// Creates the store with one bootstrap administrator account.
  UserDatabase(const std::string& admin_name,
               const std::string& admin_password);

  /// Adds an account (admin feature, Fig. AIII.9). AlreadyExists when the
  /// name is taken.
  Status AddUser(const std::string& name, const std::string& password,
                 AccessLevel level);

  /// Removes an account (Fig. AIII.10). The last administrator cannot be
  /// deleted.
  Status DeleteUser(const std::string& name);

  /// Changes password and/or access level (Fig. AIII.11).
  Status ModifyUser(const std::string& name, const std::string& new_password,
                    AccessLevel new_level);

  /// The login check of Fig. AIII.1: name, password AND claimed access
  /// level must all match; the error mirrors the thesis's hint ("check
  /// your PASSWORD and TYPE", Fig. 4.27).
  Result<AccessLevel> Authenticate(const std::string& name,
                                   const std::string& password,
                                   AccessLevel claimed_level) const;

  bool HasUser(const std::string& name) const;
  Result<AccessLevel> GetLevel(const std::string& name) const;

  /// All account names, sorted.
  std::vector<std::string> UserNames() const;

 private:
  struct Account {
    uint64_t salt = 0;
    uint64_t password_hash = 0;
    AccessLevel level = AccessLevel::kUser;
  };

  static uint64_t HashPassword(const std::string& password, uint64_t salt);

  std::map<std::string, Account> accounts_;
  uint64_t next_salt_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace gea::workbench

#endif  // GEA_WORKBENCH_USERS_H_
