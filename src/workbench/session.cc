#include "workbench/session.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/serialization.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/request_trace.h"
#include "obs/resource.h"
#include "obs/server.h"
#include "obs/timeseries.h"
#include "rel/sql.h"
#include "rel/table_io.h"
#include "sage/io.h"
#include "sage/stats.h"

namespace gea::workbench {

AnalysisSession::AnalysisSession(const std::string& admin_name,
                                 const std::string& admin_password)
    : users_(admin_name, admin_password) {
  configuration_["db_path"] = "gea.db";
  configuration_["library_directory"] = "SageLibrary";
  // Opt-in monitoring: a no-op unless GEA_MONITOR_PORT names a port.
  obs::StartMonitorFromEnv();
  // Opt-in telemetry harvesting: a no-op unless GEA_STATS_INTERVAL_MS
  // names a cadence (GEA_WATCHDOG_MS additionally arms the watchdog).
  obs::StartHarvesterFromEnv();
  // Stat views ride in every session's catalog so SQL can read telemetry:
  //   SELECT name, value FROM gea_stat_counters ORDER BY value DESC
  obs::RegisterStatViews(relations_);
  // Epoch 1: the empty catalog, so snapshot readers are valid from birth.
  RefreshRelationsSnapshot();
  PublishCatalogEpoch();
}

// ---- Authentication ----

Status AnalysisSession::Login(const std::string& name,
                              const std::string& password,
                              AccessLevel level) {
  GEA_ASSIGN_OR_RETURN(AccessLevel granted,
                       users_.Authenticate(name, password, level));
  current_user_ = name;
  current_level_ = granted;
  telemetry_.SetUser(name);
  return Status::OK();
}

void AnalysisSession::Logout() { current_user_.reset(); }

Result<AccessLevel> AnalysisSession::AuthenticateUser(
    const std::string& name, const std::string& password,
    AccessLevel level) const {
  return Logged("login", "user=" + name, [&]() -> Result<AccessLevel> {
    return users_.Authenticate(name, password, level);
  });
}

Result<std::string> AnalysisSession::CurrentUser() const {
  if (!current_user_.has_value()) {
    return Status::FailedPrecondition("no user is logged in");
  }
  return *current_user_;
}

Status AnalysisSession::RequireLogin() const {
  if (!current_user_.has_value()) {
    return Status::PermissionDenied("please log in first");
  }
  return Status::OK();
}

Status AnalysisSession::RequireAdmin() const {
  GEA_RETURN_IF_ERROR(RequireLogin());
  if (current_level_ != AccessLevel::kAdministrator) {
    return Status::PermissionDenied(
        "this operation requires administrator access");
  }
  return Status::OK();
}

Status AnalysisSession::RequireWritable() const {
  if (read_only_ && !applying_replication_) {
    return Status::FailedPrecondition(
        "session is read-only (replica); mutations must go to the primary");
  }
  return Status::OK();
}

// ---- Administration ----

Status AnalysisSession::AddUser(const std::string& name,
                                const std::string& password,
                                AccessLevel level) {
  GEA_RETURN_IF_ERROR(RequireAdmin());
  return users_.AddUser(name, password, level);
}

Status AnalysisSession::DeleteUser(const std::string& name) {
  GEA_RETURN_IF_ERROR(RequireAdmin());
  return users_.DeleteUser(name);
}

Status AnalysisSession::ModifyUser(const std::string& name,
                                   const std::string& new_password,
                                   AccessLevel new_level) {
  GEA_RETURN_IF_ERROR(RequireAdmin());
  return users_.ModifyUser(name, new_password, new_level);
}

// ---- Configuration ----

Status AnalysisSession::SetConfiguration(const std::string& key,
                                         const std::string& value) {
  GEA_RETURN_IF_ERROR(RequireAdmin());
  configuration_[key] = value;
  return Status::OK();
}

Result<std::string> AnalysisSession::GetConfiguration(
    const std::string& key) const {
  auto it = configuration_.find(key);
  if (it == configuration_.end()) {
    return Status::NotFound("no such configuration key: " + key);
  }
  return it->second;
}

// ---- Data management ----

Status AnalysisSession::InstallDataSet(sage::SageDataSet dataset) {
  dataset_ = std::make_shared<const sage::SageDataSet>(std::move(dataset));
  GEA_RETURN_IF_ERROR(relations_.CreateTable(
      sage::BuildLibraryInfoTable(*dataset_), /*replace=*/true));
  GEA_RETURN_IF_ERROR(relations_.CreateTable(
      sage::BuildTissueTypeTable(*dataset_), /*replace=*/true));
  GEA_RETURN_IF_ERROR(relations_.CreateTable(
      sage::BuildSageInfoTable(*dataset_), /*replace=*/true));
  // The rotated TAGS view (Section 4.6.1) is registered computed, so it
  // is rebuilt per query and — like the stat views — skipped by
  // snapshots, SaveDatabase and the WAL. Its rows are tag-ascending,
  // which makes it the relation the distribution router can hash-
  // partition by tag and merge back losslessly (src/dist). The builder
  // shares the immutable data set: the catalog outlives moves of this
  // session, so it must not dereference `this`.
  GEA_RETURN_IF_ERROR(relations_.RegisterComputed(
      "TAGS",
      [data = dataset_]() { return sage::BuildTagsTable(*data); },
      /*replace=*/true));
  RefreshRelationsSnapshot();
  return Status::OK();
}

Status AnalysisSession::LoadDataSet(sage::SageDataSet dataset) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  GEA_RETURN_IF_ERROR(InstallDataSet(std::move(dataset)));
  RecordLineage("SAGE", lineage::NodeKind::kDataSet, "load",
                {{"libraries", std::to_string(dataset_->NumLibraries())}},
                {});
  return WalLogDataSet();
}

Status AnalysisSession::InitializeDatabase() {
  GEA_RETURN_IF_ERROR(RequireAdmin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  relations_.Initialize();
  obs::RegisterStatViews(relations_);  // Initialize() dropped the views
  enums_.clear();
  sumys_.clear();
  gaps_.clear();
  metadata_.clear();
  dataset_.reset();
  lineage_ = lineage::LineageGraph();
  RefreshRelationsSnapshot();
  return WalOp("initialize", {});
}

Result<const sage::SageDataSet*> AnalysisSession::DataSet() const {
  if (dataset_ == nullptr) {
    return Status::FailedPrecondition("no SAGE data set is loaded");
  }
  return dataset_.get();
}

namespace {

namespace fs = std::filesystem;

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + path);
  }
  return Status::OK();
}

/// WAL parameter renderings; replay parses these back with strtod /
/// string compare, so doubles use a round-trip-exact format.
std::string WalDouble(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

const char* WalBool(bool v) { return v ? "1" : "0"; }

/// Table names double as file names; refuse path-breaking characters.
Status CheckFileSafe(const std::string& name) {
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name.empty() ||
      name[0] == '.') {
    return Status::InvalidArgument("table name is not file-safe: " + name);
  }
  return Status::OK();
}

}  // namespace

Status AnalysisSession::SaveDatabase(const std::string& directory) const {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(EnsureDirectory(directory));

  if (dataset_ != nullptr) {
    GEA_RETURN_IF_ERROR(sage::SaveDataSet(*dataset_, directory + "/sage"));
  }

  // Manifest: every derived object with its kind.
  rel::Table manifest("Manifest",
                      rel::Schema({{"Name", rel::ValueType::kString},
                                   {"Kind", rel::ValueType::kString}}));

  GEA_RETURN_IF_ERROR(EnsureDirectory(directory + "/enums"));
  for (const auto& [name, table] : enums_) {
    GEA_RETURN_IF_ERROR(CheckFileSafe(name));
    GEA_RETURN_IF_ERROR(rel::SaveTable(
        table->ToRelTable(), directory + "/enums/" + name + ".csv"));
    GEA_RETURN_IF_ERROR(rel::SaveTable(
        core::EnumLibrariesToRelTable(*table, name + "_libs"),
        directory + "/enums/" + name + ".libs.csv"));
    manifest.AppendRowUnchecked(
        {rel::Value::String(name), rel::Value::String("enum")});
  }
  GEA_RETURN_IF_ERROR(EnsureDirectory(directory + "/sumys"));
  for (const auto& [name, table] : sumys_) {
    GEA_RETURN_IF_ERROR(CheckFileSafe(name));
    GEA_RETURN_IF_ERROR(rel::SaveTable(
        table->ToRelTable(), directory + "/sumys/" + name + ".csv"));
    manifest.AppendRowUnchecked(
        {rel::Value::String(name), rel::Value::String("sumy")});
  }
  GEA_RETURN_IF_ERROR(EnsureDirectory(directory + "/gaps"));
  for (const auto& [name, table] : gaps_) {
    GEA_RETURN_IF_ERROR(CheckFileSafe(name));
    GEA_RETURN_IF_ERROR(rel::SaveTable(
        table->ToRelTable(), directory + "/gaps/" + name + ".csv"));
    manifest.AppendRowUnchecked(
        {rel::Value::String(name), rel::Value::String("gap")});
  }

  // Stored auxiliary relations. Computed tables (the gea_stat_* telemetry
  // views) are live materializations, not data — persisting one would
  // freeze a counter sample into the database and shadow the real view on
  // reload, so they are skipped.
  GEA_RETURN_IF_ERROR(EnsureDirectory(directory + "/relations"));
  for (const std::string& name : relations_.TableNames()) {
    if (relations_.IsComputed(name)) continue;
    GEA_RETURN_IF_ERROR(CheckFileSafe(name));
    GEA_ASSIGN_OR_RETURN(const rel::Table* table, relations_.GetTable(name));
    GEA_RETURN_IF_ERROR(
        rel::SaveTable(*table, directory + "/relations/" + name + ".csv"));
    manifest.AppendRowUnchecked(
        {rel::Value::String(name), rel::Value::String("relation")});
  }

  // Tolerance metadata vectors.
  GEA_RETURN_IF_ERROR(EnsureDirectory(directory + "/metadata"));
  for (const auto& [name, tolerances] : metadata_) {
    GEA_RETURN_IF_ERROR(CheckFileSafe(name));
    rel::Table table(name,
                     rel::Schema({{"Index", rel::ValueType::kInt},
                                  {"Tolerance", rel::ValueType::kDouble}}));
    for (size_t i = 0; i < tolerances->size(); ++i) {
      table.AppendRowUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                                rel::Value::Double((*tolerances)[i])});
    }
    GEA_RETURN_IF_ERROR(
        rel::SaveTable(table, directory + "/metadata/" + name + ".csv"));
  }

  // Operation history.
  lineage::LineageGraph::RelExport history = lineage_.Export();
  GEA_RETURN_IF_ERROR(
      rel::SaveTable(history.nodes, directory + "/lineage_nodes.csv"));
  GEA_RETURN_IF_ERROR(
      rel::SaveTable(history.params, directory + "/lineage_params.csv"));
  GEA_RETURN_IF_ERROR(
      rel::SaveTable(history.edges, directory + "/lineage_edges.csv"));

  return rel::SaveTable(manifest, directory + "/manifest.csv");
}

Status AnalysisSession::LoadDatabase(const std::string& directory) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());

  // Stage everything before touching the session so a bad file leaves the
  // current state intact.
  std::optional<sage::SageDataSet> dataset;
  if (fs::exists(directory + "/sage/sageName.txt")) {
    GEA_ASSIGN_OR_RETURN(sage::SageDataSet loaded,
                         sage::LoadDataSet(directory + "/sage"));
    dataset = std::move(loaded);
  }

  GEA_ASSIGN_OR_RETURN(
      rel::Table manifest,
      rel::LoadTable("Manifest", directory + "/manifest.csv"));
  std::map<std::string, std::shared_ptr<const core::EnumTable>> enums;
  std::map<std::string, std::shared_ptr<const core::SumyTable>> sumys;
  std::map<std::string, std::shared_ptr<const core::GapTable>> gaps;
  std::vector<rel::Table> stored_relations;
  for (size_t r1_ = 0; r1_ < manifest.NumRows(); ++r1_) {
    const rel::Row row = manifest.GetRow(r1_);
    if (row.size() != 2 || row[0].type() != rel::ValueType::kString ||
        row[1].type() != rel::ValueType::kString) {
      return Status::InvalidArgument("malformed manifest row in " + directory);
    }
    const std::string& name = row[0].AsString();
    const std::string& kind = row[1].AsString();
    GEA_RETURN_IF_ERROR(CheckFileSafe(name));
    if (kind == "enum") {
      GEA_ASSIGN_OR_RETURN(
          rel::Table data,
          rel::LoadTable(name, directory + "/enums/" + name + ".csv"));
      GEA_ASSIGN_OR_RETURN(
          rel::Table libs,
          rel::LoadTable(name + "_libs",
                         directory + "/enums/" + name + ".libs.csv"));
      GEA_ASSIGN_OR_RETURN(core::EnumTable table,
                           core::EnumFromRelTables(data, libs, name));
      enums.emplace(name,
                    std::make_shared<const core::EnumTable>(std::move(table)));
    } else if (kind == "sumy") {
      GEA_ASSIGN_OR_RETURN(
          rel::Table data,
          rel::LoadTable(name, directory + "/sumys/" + name + ".csv"));
      GEA_ASSIGN_OR_RETURN(core::SumyTable table,
                           core::SumyFromRelTable(data, name));
      sumys.emplace(name,
                    std::make_shared<const core::SumyTable>(std::move(table)));
    } else if (kind == "gap") {
      GEA_ASSIGN_OR_RETURN(
          rel::Table data,
          rel::LoadTable(name, directory + "/gaps/" + name + ".csv"));
      GEA_ASSIGN_OR_RETURN(core::GapTable table,
                           core::GapFromRelTable(data, name));
      gaps.emplace(name,
                   std::make_shared<const core::GapTable>(std::move(table)));
    } else if (kind == "relation") {
      GEA_ASSIGN_OR_RETURN(
          rel::Table data,
          rel::LoadTable(name, directory + "/relations/" + name + ".csv"));
      stored_relations.push_back(std::move(data));
    } else {
      return Status::InvalidArgument("unknown manifest kind: " + kind);
    }
  }

  std::map<std::string, std::shared_ptr<const std::vector<double>>> metadata;
  if (fs::exists(directory + "/metadata")) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(directory + "/metadata")) {
      if (entry.path().extension() != ".csv") continue;
      std::string name = entry.path().stem().string();
      GEA_ASSIGN_OR_RETURN(rel::Table table,
                           rel::LoadTable(name, entry.path().string()));
      std::vector<double> tolerances(table.NumRows(), 0.0);
      for (size_t r2_ = 0; r2_ < table.NumRows(); ++r2_) {
        const rel::Row row = table.GetRow(r2_);
        if (row.size() != 2 || row[0].type() != rel::ValueType::kInt ||
            row[1].type() != rel::ValueType::kDouble) {
          return Status::InvalidArgument("malformed metadata row in " + name);
        }
        size_t index = static_cast<size_t>(row[0].AsInt());
        if (index >= tolerances.size()) {
          return Status::InvalidArgument("bad metadata index in " + name);
        }
        tolerances[index] = row[1].AsDouble();
      }
      metadata.emplace(std::move(name), std::make_shared<const std::vector<double>>(
                                            std::move(tolerances)));
    }
  }

  GEA_ASSIGN_OR_RETURN(
      rel::Table lnodes,
      rel::LoadTable("LineageNodes", directory + "/lineage_nodes.csv"));
  GEA_ASSIGN_OR_RETURN(
      rel::Table lparams,
      rel::LoadTable("LineageParams", directory + "/lineage_params.csv"));
  GEA_ASSIGN_OR_RETURN(
      rel::Table ledges,
      rel::LoadTable("LineageEdges", directory + "/lineage_edges.csv"));
  GEA_ASSIGN_OR_RETURN(lineage::LineageGraph history,
                       lineage::LineageGraph::Import(lnodes, lparams,
                                                     ledges));

  // Commit. The imported history already holds the SAGE root node, so
  // the data set is installed without re-recording lineage.
  enums_ = std::move(enums);
  sumys_ = std::move(sumys);
  gaps_ = std::move(gaps);
  metadata_ = std::move(metadata);
  lineage_ = std::move(history);
  relations_.Initialize();
  obs::RegisterStatViews(relations_);  // Initialize() dropped the views
  for (rel::Table& table : stored_relations) {
    GEA_RETURN_IF_ERROR(
        relations_.CreateTable(std::move(table), /*replace=*/true));
  }
  dataset_.reset();
  if (dataset.has_value()) {
    // InstallDataSet rebuilds the dataset-derived relations, replacing
    // the file copies with identical fresh ones.
    GEA_RETURN_IF_ERROR(InstallDataSet(std::move(*dataset)));
  }
  RefreshRelationsSnapshot();
  PublishCatalogEpoch();
  // A bulk load replaces state the WAL knows nothing about, so the
  // storage directory (when attached) gets a full snapshot right away,
  // and any WAL shipper is told its followers must re-seed from a
  // snapshot — no stream of records reproduces this transition.
  if (storage_ != nullptr && !replaying_wal_) {
    // Flush any in-flight group commits before the checkpoint rotates
    // the WAL underneath them.
    GEA_RETURN_IF_ERROR(DrainCommits());
    GEA_RETURN_IF_ERROR(storage_->Checkpoint(BuildSnapshotImage()));
    if (wal_observer_) {
      store::WalRecord reset;
      reset.type = store::WalRecord::Type::kCheckpoint;
      reset.op = "state_reset";
      wal_observer_(storage_->last_lsn(), reset);
    }
  }
  return Status::OK();
}

// ---- Shared namespace plumbing ----

Status AnalysisSession::CheckNameFree(const std::string& name, bool replace) {
  bool taken = enums_.count(name) > 0 || sumys_.count(name) > 0 ||
               gaps_.count(name) > 0;
  if (taken && !replace) {
    return Status::AlreadyExists("a table already exists: " + name);
  }
  if (taken) DropObject(name);
  return Status::OK();
}

void AnalysisSession::DropObject(const std::string& name) {
  enums_.erase(name);
  sumys_.erase(name);
  gaps_.erase(name);
}

void AnalysisSession::RecordLineage(
    const std::string& name, lineage::NodeKind kind,
    const std::string& operation,
    std::map<std::string, std::string> parameters,
    const std::vector<std::string>& parent_names) {
  std::vector<lineage::LineageGraph::NodeId> parents;
  for (const std::string& parent : parent_names) {
    Result<lineage::LineageGraph::NodeId> id = lineage_.FindByName(parent);
    if (id.ok()) parents.push_back(*id);
  }
  // After a replace, the old node may still exist; cascade-drop it first
  // so the lineage mirrors the catalog.
  Result<lineage::LineageGraph::NodeId> existing = lineage_.FindByName(name);
  if (existing.ok()) {
    (void)lineage_.DeleteCascade(*existing);
  }
  (void)lineage_.AddNode(name, kind, operation, std::move(parameters),
                         parents);
}

// ---- Data sets ----

Status AnalysisSession::CreateTissueDataSet(sage::TissueType tissue,
                                            bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  const std::string name = sage::TissueTypeName(tissue);
  return Logged("tissue_dataset", name, [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
    GEA_RETURN_IF_ERROR(CheckNameFree(name, replace));
    sage::SageDataSet slice = data->FilterByTissue(tissue);
    if (slice.NumLibraries() == 0) {
      return Status::NotFound(std::string("no libraries of tissue type ") +
                              sage::TissueTypeName(tissue));
    }
    enums_.emplace(name, std::make_shared<const core::EnumTable>(
                             core::EnumTable::FromDataSet(name, slice)));
    RecordLineage(name, lineage::NodeKind::kDataSet, "tissue_dataset",
                  {{"tissue", name}}, {"SAGE"});
    return WalOp("tissue_dataset",
                 {{"tissue", name}, {"replace", WalBool(replace)}});
  });
}

Status AnalysisSession::CreateCustomDataSet(const std::string& name,
                                            const std::vector<int>& ids,
                                            bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("custom_dataset", name, [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
    GEA_RETURN_IF_ERROR(CheckNameFree(name, replace));
    GEA_ASSIGN_OR_RETURN(sage::SageDataSet slice, data->SelectByIds(ids));
    enums_.emplace(name, std::make_shared<const core::EnumTable>(
                             core::EnumTable::FromDataSet(name, slice)));
    RecordLineage(name, lineage::NodeKind::kDataSet, "custom_dataset",
                  {{"libraries", std::to_string(ids.size())}}, {"SAGE"});
    std::string ids_text;
    for (int id : ids) {
      if (!ids_text.empty()) ids_text += ',';
      ids_text += std::to_string(id);
    }
    return WalOp("custom_dataset", {{"name", name},
                                    {"ids", ids_text},
                                    {"replace", WalBool(replace)}});
  });
}

Result<const core::EnumTable*> AnalysisSession::GetEnum(
    const std::string& name) const {
  auto it = enums_.find(name);
  if (it == enums_.end()) {
    return Status::NotFound("no such ENUM table: " + name);
  }
  return it->second.get();
}

Result<const core::SumyTable*> AnalysisSession::GetSumy(
    const std::string& name) const {
  auto it = sumys_.find(name);
  if (it == sumys_.end()) {
    return Status::NotFound("no such SUMY table: " + name);
  }
  return it->second.get();
}

Result<const core::GapTable*> AnalysisSession::GetGap(
    const std::string& name) const {
  auto it = gaps_.find(name);
  if (it == gaps_.end()) {
    return Status::NotFound("no such GAP table: " + name);
  }
  return it->second.get();
}

// ---- Metadata + fascicles ----

Status AnalysisSession::GenerateMetadata(const std::string& dataset_name,
                                         double percent,
                                         const std::string& meta_name,
                                         bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("generate_metadata", dataset_name + " -> " + meta_name,
                [&]() -> Status {
    if (percent < 0.0 || percent > 100.0) {
      return Status::InvalidArgument("percent must be in [0, 100]");
    }
    if (metadata_.count(meta_name) > 0 && !replace) {
      return Status::AlreadyExists("metadata already exists: " + meta_name);
    }
    GEA_ASSIGN_OR_RETURN(const core::EnumTable* input, GetEnum(dataset_name));
    metadata_[meta_name] = std::make_shared<const std::vector<double>>(
        core::MakeToleranceMetadata(*input, percent));
    return WalOp("generate_metadata", {{"dataset", dataset_name},
                                       {"percent", WalDouble(percent)},
                                       {"meta", meta_name},
                                       {"replace", WalBool(replace)}});
  });
}

Result<std::vector<std::string>> AnalysisSession::CalculateFascicles(
    const std::string& dataset_name, const std::string& meta_name,
    size_t min_compact_tags, size_t batch_size, size_t min_size,
    const std::string& out_prefix,
    cluster::FascicleParams::Algorithm algorithm) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("fascicles", dataset_name + " -> " + out_prefix,
                [&]() -> Result<std::vector<std::string>> {
  GEA_ASSIGN_OR_RETURN(const core::EnumTable* input, GetEnum(dataset_name));
  auto meta_it = metadata_.find(meta_name);
  if (meta_it == metadata_.end()) {
    return Status::NotFound("no such metadata: " + meta_name);
  }
  cluster::FascicleParams params;
  params.min_compact_tags = min_compact_tags;
  params.tolerances = *meta_it->second;
  params.batch_size = batch_size;
  params.min_size = min_size;
  params.algorithm = algorithm;

  GEA_ASSIGN_OR_RETURN(std::vector<core::MinedFascicle> mined,
                       core::Mine(*input, params, out_prefix));
  std::vector<std::string> names;
  for (core::MinedFascicle& m : mined) {
    const std::string name =
        out_prefix + "_" + std::to_string(names.size() + 1);
    GEA_RETURN_IF_ERROR(CheckNameFree(name, /*replace=*/false));
    GEA_RETURN_IF_ERROR(CheckNameFree(name + "_SUMY", /*replace=*/false));
    m.members.set_name(name);
    m.sumy.set_name(name + "_SUMY");
    std::map<std::string, std::string> op_params = {
        {"compact_attributes", std::to_string(min_compact_tags)},
        {"metadata", meta_name},
        {"batch_size", std::to_string(batch_size)},
        {"min_size", std::to_string(min_size)},
        {"members", std::to_string(m.fascicle.members.size())},
    };
    enums_.emplace(name, std::make_shared<const core::EnumTable>(
                             std::move(m.members)));
    sumys_.emplace(name + "_SUMY", std::make_shared<const core::SumyTable>(
                                       std::move(m.sumy)));
    RecordLineage(name, lineage::NodeKind::kFascicle, "fascicles",
                  op_params, {dataset_name});
    RecordLineage(name + "_SUMY", lineage::NodeKind::kSumy, "aggregate",
                  {}, {name});
    names.push_back(name);
  }
  GEA_RETURN_IF_ERROR(WalOp(
      "fascicles",
      {{"dataset", dataset_name},
       {"meta", meta_name},
       {"min_compact_tags", std::to_string(min_compact_tags)},
       {"batch_size", std::to_string(batch_size)},
       {"min_size", std::to_string(min_size)},
       {"out_prefix", out_prefix},
       {"algorithm", std::to_string(static_cast<int>(algorithm))}}));
  return names;
  });
}

Result<std::vector<core::PurityProperty>> AnalysisSession::CheckPurity(
    const std::string& enum_name) const {
  GEA_ASSIGN_OR_RETURN(const core::EnumTable* table, GetEnum(enum_name));
  return core::PureProperties(*table);
}

Result<AnalysisSession::ControlGroups> AnalysisSession::FormControlGroups(
    const std::string& dataset_name, const std::string& fascicle_enum) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("control_groups", dataset_name + " / " + fascicle_enum,
                [&]() -> Result<ControlGroups> {
  GEA_ASSIGN_OR_RETURN(const core::EnumTable* dataset, GetEnum(dataset_name));
  GEA_ASSIGN_OR_RETURN(const core::EnumTable* fascicle,
                       GetEnum(fascicle_enum));

  const bool pure_cancer = core::IsPure(*fascicle,
                                        core::PurityProperty::kCancer);
  const bool pure_normal = core::IsPure(*fascicle,
                                        core::PurityProperty::kNormal);
  if (!pure_cancer && !pure_normal) {
    return Status::FailedPrecondition(
        "the fascicle " + fascicle_enum +
        " is NOT pure; only pure fascicles can be further analyzed");
  }
  const sage::NeoplasticState fas_state = pure_cancer
                                              ? sage::NeoplasticState::kCancer
                                              : sage::NeoplasticState::kNormal;
  const sage::NeoplasticState opp_state = pure_cancer
                                              ? sage::NeoplasticState::kNormal
                                              : sage::NeoplasticState::kCancer;

  ControlGroups names;
  names.fascicle_sumy = fascicle_enum + "_SUMY";
  const std::string state_tag = pure_cancer ? "Can" : "Nor";
  const std::string opposite_tag = pure_cancer ? "Normal" : "Cancer";
  names.not_in_fas_enum = fascicle_enum + state_tag + "NotInFas_ENUM";
  names.not_in_fas_sumy = fascicle_enum + state_tag + "NotInFasTbl";
  names.opposite_enum = fascicle_enum + opposite_tag + "_ENUM";
  names.opposite_sumy = fascicle_enum + opposite_tag + "Table";
  for (const std::string& name :
       {names.not_in_fas_enum, names.not_in_fas_sumy, names.opposite_enum,
        names.opposite_sumy}) {
    GEA_RETURN_IF_ERROR(CheckNameFree(name, /*replace=*/false));
  }

  // Restrict the data set to the fascicle's compact tags, then carve out
  // the two control groups (Section 4.3.1 steps 4-5).
  GEA_ASSIGN_OR_RETURN(
      core::EnumTable compact_view,
      dataset->RestrictTags(dataset_name + "_compact_view",
                            fascicle->tags()));
  core::EnumTable not_in_fas =
      compact_view
          .FilterLibraries(names.not_in_fas_enum,
                           [&](const sage::LibraryMeta& lib) {
                             return lib.state == fas_state;
                           })
          .MinusLibraries(names.not_in_fas_enum, *fascicle);
  core::EnumTable opposite = compact_view.FilterLibraries(
      names.opposite_enum,
      [&](const sage::LibraryMeta& lib) { return lib.state == opp_state; });

  GEA_ASSIGN_OR_RETURN(core::SumyTable not_in_fas_sumy,
                       core::Aggregate(not_in_fas, names.not_in_fas_sumy));
  GEA_ASSIGN_OR_RETURN(core::SumyTable opposite_sumy,
                       core::Aggregate(opposite, names.opposite_sumy));

  enums_.emplace(names.not_in_fas_enum, std::make_shared<const core::EnumTable>(
                                            std::move(not_in_fas)));
  enums_.emplace(names.opposite_enum, std::make_shared<const core::EnumTable>(
                                          std::move(opposite)));
  sumys_.emplace(names.not_in_fas_sumy,
                 std::make_shared<const core::SumyTable>(
                     std::move(not_in_fas_sumy)));
  sumys_.emplace(names.opposite_sumy, std::make_shared<const core::SumyTable>(
                                          std::move(opposite_sumy)));

  RecordLineage(names.not_in_fas_enum, lineage::NodeKind::kEnum,
                "control_group", {{"state", state_tag}},
                {dataset_name, fascicle_enum});
  RecordLineage(names.not_in_fas_sumy, lineage::NodeKind::kSumy, "aggregate",
                {}, {names.not_in_fas_enum});
  RecordLineage(names.opposite_enum, lineage::NodeKind::kEnum,
                "control_group", {{"state", opposite_tag}},
                {dataset_name, fascicle_enum});
  RecordLineage(names.opposite_sumy, lineage::NodeKind::kSumy, "aggregate",
                {}, {names.opposite_enum});
  GEA_RETURN_IF_ERROR(WalOp("control_groups", {{"dataset", dataset_name},
                                               {"fascicle", fascicle_enum}}));
  return names;
  });
}

// ---- Direct operator invocations ----

Status AnalysisSession::Aggregate(const std::string& enum_name,
                                  const std::string& out_name, bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("aggregate", enum_name + " -> " + out_name, [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const core::EnumTable* input, GetEnum(enum_name));
    GEA_RETURN_IF_ERROR(CheckNameFree(out_name, replace));
    GEA_ASSIGN_OR_RETURN(core::SumyTable sumy,
                         core::Aggregate(*input, out_name));
    sumys_.emplace(out_name,
                   std::make_shared<const core::SumyTable>(std::move(sumy)));
    RecordLineage(out_name, lineage::NodeKind::kSumy, "aggregate", {},
                  {enum_name});
    return WalOp("aggregate", {{"enum", enum_name},
                               {"out", out_name},
                               {"replace", WalBool(replace)}});
  });
}

Status AnalysisSession::Populate(const std::string& sumy_name,
                                 const std::string& base_enum,
                                 const std::string& out_name, bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("populate", sumy_name + " @ " + base_enum + " -> " + out_name,
                [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const core::SumyTable* sumy, GetSumy(sumy_name));
    GEA_ASSIGN_OR_RETURN(const core::EnumTable* base, GetEnum(base_enum));
    GEA_RETURN_IF_ERROR(CheckNameFree(out_name, replace));
    core::PopulateEngine engine(*base);
    GEA_ASSIGN_OR_RETURN(core::EnumTable populated,
                         engine.Populate(*sumy, out_name));
    enums_.emplace(out_name, std::make_shared<const core::EnumTable>(
                                 std::move(populated)));
    RecordLineage(out_name, lineage::NodeKind::kEnum, "populate",
                  {{"sumy", sumy_name}, {"base", base_enum}},
                  {sumy_name, base_enum});
    return WalOp("populate", {{"sumy", sumy_name},
                              {"base", base_enum},
                              {"out", out_name},
                              {"replace", WalBool(replace)}});
  });
}

// ---- GAP operations ----

Status AnalysisSession::CreateGap(const std::string& sumy1_name,
                                  const std::string& sumy2_name,
                                  const std::string& gap_name, bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("create_gap",
                sumy1_name + " - " + sumy2_name + " -> " + gap_name,
                [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const core::SumyTable* sumy1, GetSumy(sumy1_name));
    GEA_ASSIGN_OR_RETURN(const core::SumyTable* sumy2, GetSumy(sumy2_name));
    GEA_RETURN_IF_ERROR(CheckNameFree(gap_name, replace));
    GEA_ASSIGN_OR_RETURN(core::GapTable gap,
                         core::Diff(*sumy1, *sumy2, gap_name));
    gaps_.emplace(gap_name,
                  std::make_shared<const core::GapTable>(std::move(gap)));
    RecordLineage(gap_name, lineage::NodeKind::kGap, "diff",
                  {{"sumy1", sumy1_name}, {"sumy2", sumy2_name}},
                  {sumy1_name, sumy2_name});
    return WalOp("create_gap", {{"sumy1", sumy1_name},
                                {"sumy2", sumy2_name},
                                {"gap", gap_name},
                                {"replace", WalBool(replace)}});
  });
}

Result<std::string> AnalysisSession::CalculateTopGap(
    const std::string& gap_name, size_t x, core::TopGapMode mode) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("top_gap", gap_name + " top " + std::to_string(x),
                [&]() -> Result<std::string> {
    GEA_ASSIGN_OR_RETURN(const core::GapTable* gap, GetGap(gap_name));
    const std::string out_name = gap_name + "_" + std::to_string(x);
    GEA_RETURN_IF_ERROR(CheckNameFree(out_name, /*replace=*/true));
    GEA_ASSIGN_OR_RETURN(core::GapTable top,
                         core::TopGap(*gap, x, mode, out_name));
    gaps_.emplace(out_name,
                  std::make_shared<const core::GapTable>(std::move(top)));
    RecordLineage(out_name, lineage::NodeKind::kTopGap, "top_gap",
                  {{"x", std::to_string(x)}, {"mode", TopGapModeName(mode)}},
                  {gap_name});
    GEA_RETURN_IF_ERROR(
        WalOp("top_gap", {{"gap", gap_name},
                          {"x", std::to_string(x)},
                          {"mode", std::to_string(static_cast<int>(mode))}}));
    return out_name;
  });
}

Status AnalysisSession::CompareGapTables(const std::string& gap_a,
                                         const std::string& gap_b,
                                         core::GapCompareKind kind,
                                         const std::string& out_name,
                                         bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("compare_gaps",
                gap_a + " " + core::GapCompareKindName(kind) + " " + gap_b,
                [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const core::GapTable* a, GetGap(gap_a));
    GEA_ASSIGN_OR_RETURN(const core::GapTable* b, GetGap(gap_b));
    GEA_RETURN_IF_ERROR(CheckNameFree(out_name, replace));
    GEA_ASSIGN_OR_RETURN(core::GapTable compared,
                         core::CompareGaps(*a, *b, kind, out_name));
    gaps_.emplace(out_name,
                  std::make_shared<const core::GapTable>(std::move(compared)));
    RecordLineage(out_name, lineage::NodeKind::kCompareGap,
                  core::GapCompareKindName(kind), {}, {gap_a, gap_b});
    return WalOp("compare_gaps",
                 {{"a", gap_a},
                  {"b", gap_b},
                  {"kind", std::to_string(static_cast<int>(kind))},
                  {"out", out_name},
                  {"replace", WalBool(replace)}});
  });
}

Status AnalysisSession::RunGapQuery(const std::string& compared_name,
                                    core::GapCompareQuery query,
                                    const std::string& out_name,
                                    bool replace) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  return Logged("gap_query", compared_name + " -> " + out_name,
                [&]() -> Status {
    GEA_ASSIGN_OR_RETURN(const core::GapTable* compared,
                         GetGap(compared_name));
    GEA_RETURN_IF_ERROR(CheckNameFree(out_name, replace));
    GEA_ASSIGN_OR_RETURN(core::GapTable result,
                         core::ApplyGapQuery(*compared, query, out_name));
    gaps_.emplace(out_name,
                  std::make_shared<const core::GapTable>(std::move(result)));
    RecordLineage(out_name, lineage::NodeKind::kGap, "gap_query",
                  {{"query", core::GapCompareQueryDescription(query)}},
                  {compared_name});
    return WalOp("gap_query",
                 {{"compared", compared_name},
                  {"query", std::to_string(static_cast<int>(query))},
                  {"out", out_name},
                  {"replace", WalBool(replace)}});
  });
}

// ---- Search operations ----

Result<sage::LibraryMeta> AnalysisSession::SearchLibrary(int id) const {
  GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
  GEA_ASSIGN_OR_RETURN(const sage::SageLibrary* lib, data->FindById(id));
  return sage::LibraryMeta{lib->id(), lib->name(), lib->tissue(),
                           lib->state(), lib->source()};
}

Result<sage::LibraryMeta> AnalysisSession::SearchLibrary(
    const std::string& name) const {
  GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
  GEA_ASSIGN_OR_RETURN(const sage::SageLibrary* lib, data->FindByName(name));
  return sage::LibraryMeta{lib->id(), lib->name(), lib->tissue(),
                           lib->state(), lib->source()};
}

Result<std::vector<std::string>> AnalysisSession::LibrariesOfTissue(
    sage::TissueType tissue) const {
  GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
  std::vector<std::string> names;
  for (const sage::SageLibrary& lib : data->libraries()) {
    if (lib.tissue() == tissue) names.push_back(lib.name());
  }
  return names;
}

Result<std::vector<AnalysisSession::TagFrequencyRow>>
AnalysisSession::TagFrequency(
    sage::TagId first_tag, sage::TagId last_tag,
    const std::vector<std::string>& library_names) const {
  GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
  if (first_tag > last_tag) std::swap(first_tag, last_tag);
  std::vector<const sage::SageLibrary*> libs;
  for (const std::string& name : library_names) {
    GEA_ASSIGN_OR_RETURN(const sage::SageLibrary* lib,
                         data->FindByName(name));
    libs.push_back(lib);
  }
  // Tags in range appearing in at least one of the selected libraries.
  std::vector<sage::TagId> tags;
  for (const sage::SageLibrary* lib : libs) {
    for (const sage::SageLibrary::Entry& e : lib->entries()) {
      if (e.tag >= first_tag && e.tag <= last_tag) tags.push_back(e.tag);
    }
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());

  std::vector<TagFrequencyRow> rows;
  rows.reserve(tags.size());
  for (sage::TagId tag : tags) {
    TagFrequencyRow row;
    row.tag = tag;
    for (const sage::SageLibrary* lib : libs) {
      row.values.push_back(lib->Count(tag));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::string>> AnalysisSession::SearchLibrariesByTagRange(
    sage::TagId tag, double lo, double hi) const {
  GEA_ASSIGN_OR_RETURN(const sage::SageDataSet* data, DataSet());
  if (lo > hi) std::swap(lo, hi);
  std::vector<std::string> names;
  for (const sage::SageLibrary& lib : data->libraries()) {
    double v = lib.Count(tag);
    if (v >= lo && v <= hi) names.push_back(lib.name());
  }
  return names;
}

Result<rel::Table> AnalysisSession::Query(const std::string& sql) const {
  GEA_RETURN_IF_ERROR(RequireLogin());
  return Logged("sql_query", sql, [&]() -> Result<rel::Table> {
    // Execute against the pinned epoch's frozen catalog: concurrent
    // writers publish new epochs without ever touching this one, so the
    // query needs no session lock at all.
    txn::SnapshotPin pin = PinSnapshot();
    if (pin.valid() && pin->relations != nullptr) {
      return rel::ExecuteQuery(*pin->relations, sql);
    }
    return rel::ExecuteQuery(relations_, sql);
  });
}

Result<std::vector<core::RangeSearchHit>> AnalysisSession::RangeSearchSumys(
    const std::vector<std::string>& sumy_names, sage::TagId first_tag,
    sage::TagId last_tag, interval::AllenRelation relation,
    const interval::Interval& query) const {
  std::string detail = std::to_string(sumy_names.size()) + " tables, tags [" +
                       std::to_string(first_tag) + ", " +
                       std::to_string(last_tag) + "]";
  return Logged("range_search", std::move(detail),
                [&]() -> Result<std::vector<core::RangeSearchHit>> {
                  std::vector<const core::SumyTable*> tables;
                  tables.reserve(sumy_names.size());
                  for (const std::string& name : sumy_names) {
                    GEA_ASSIGN_OR_RETURN(const core::SumyTable* table,
                                         GetSumy(name));
                    tables.push_back(table);
                  }
                  return core::RangeSearch(tables, first_tag, last_tag,
                                           relation, query);
                });
}

// ---- Observability ----

void AnalysisSession::ExportTelemetry(
    const QueryLogEntry& entry, const obs::OperationProfile& profile) const {
  const std::optional<uint64_t> slow_ms = obs::SlowQueryThresholdMs();
  const bool slow =
      slow_ms.has_value() && entry.elapsed_nanos >= *slow_ms * 1000000ull;

  telemetry_.RecordOperation(entry.operation, entry.elapsed_nanos, entry.ok,
                             slow);
  obs::PublishProfile(profile);
  // When a served request is collecting stages on this thread, hand it
  // the execution span tree so the request trace ring gets real spans.
  if (obs::StageCollectionActive()) {
    obs::ContributeRequestSpans(profile.spans);
  }

  if (!slow) return;
  obs::LogRecord record(obs::LogLevel::kWarn, "slow_query");
  record.Str("operation", entry.operation)
      .Str("detail", entry.detail)
      .F64("elapsed_ms", static_cast<double>(entry.elapsed_nanos) / 1e6)
      .U64("threshold_ms", *slow_ms)
      .Bool("ok", entry.ok);
  if (obs::StageCollectionActive()) {
    // Served request: attribute the slow time — admission backlog vs.
    // commit stalls — using the request's stage accumulator.
    record.U64("queue_wait_ns",
               obs::CollectedStageNanos(obs::RequestStage::kQueue));
    record.U64("wal_fsync_ns",
               obs::CollectedStageNanos(obs::RequestStage::kWalFsync));
    record.U64("lock_wait_ns",
               obs::CollectedStageNanos(obs::RequestStage::kLockWait));
  }
  if (const obs::MemoryAccount* account = obs::CurrentMemoryAccount();
      account != nullptr) {
    record.U64("alloc_bytes", account->AllocatedBytes());
    record.U64("peak_bytes", account->PeakBytes());
  }
  if (!entry.ok) record.Str("error", entry.error);
  if (current_user_.has_value()) record.Str("user", *current_user_);
  if (!profile.counters.empty()) {
    std::string counters = "{";
    for (size_t i = 0; i < profile.counters.size(); ++i) {
      if (i > 0) counters += ",";
      counters += "\"" + obs::JsonEscape(profile.counters[i].name) +
                  "\":" + std::to_string(profile.counters[i].delta);
    }
    counters += "}";
    record.RawJson("counters", counters);
  }
  record.Emit();
}

std::vector<AnalysisSession::QueryLogEntry> AnalysisSession::QueryLog() const {
  std::lock_guard<std::mutex> lock(*log_mu_);
  return std::vector<QueryLogEntry>(query_log_.begin(), query_log_.end());
}

void AnalysisSession::ClearQueryLog() {
  std::lock_guard<std::mutex> lock(*log_mu_);
  query_log_.clear();
}

void AnalysisSession::SetQueryLogCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(*log_mu_);
  query_log_capacity_ = capacity == 0 ? 1 : capacity;
  while (query_log_.size() > query_log_capacity_) query_log_.pop_front();
}

size_t AnalysisSession::QueryLogCapacity() const {
  std::lock_guard<std::mutex> lock(*log_mu_);
  return query_log_capacity_;
}

Result<const obs::OperationProfile*> AnalysisSession::LastProfile() const {
  // Borrowed pointer: only meaningful to single-threaded callers — the
  // pointee is replaced by the next logged operation. Concurrent readers
  // should use ExplainLast(), which renders under the lock.
  std::lock_guard<std::mutex> lock(*log_mu_);
  if (!last_profile_.has_value()) {
    return Status::NotFound("no operation has been logged in this session");
  }
  return &*last_profile_;
}

Result<std::string> AnalysisSession::ExplainLast() const {
  std::lock_guard<std::mutex> lock(*log_mu_);
  if (!last_profile_.has_value()) {
    return Status::NotFound("no operation has been logged in this session");
  }
  return last_profile_->Render();
}

// ---- Lineage ----

Status AnalysisSession::CommentOn(const std::string& table_name,
                                  const std::string& comment) {
  GEA_RETURN_IF_ERROR(RequireWritable());
  GEA_ASSIGN_OR_RETURN(lineage::LineageGraph::NodeId id,
                       lineage_.FindByName(table_name));
  GEA_RETURN_IF_ERROR(lineage_.SetComment(id, comment));
  return WalOp("comment", {{"table", table_name}, {"comment", comment}});
}

Status AnalysisSession::DeleteTable(const std::string& table_name,
                                    bool cascade) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  GEA_ASSIGN_OR_RETURN(lineage::LineageGraph::NodeId id,
                       lineage_.FindByName(table_name));
  auto drop = [this](const std::string& name) { DropObject(name); };
  GEA_RETURN_IF_ERROR(cascade ? lineage_.DeleteCascade(id, drop)
                              : lineage_.DeleteContents(id, drop));
  return WalOp("delete_table",
               {{"table", table_name}, {"cascade", WalBool(cascade)}});
}

std::vector<std::string> AnalysisSession::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, table] : enums_) names.push_back(name);
  for (const auto& [name, table] : sumys_) names.push_back(name);
  for (const auto& [name, table] : gaps_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

// ---- MVCC epochs ----

void AnalysisSession::RefreshRelationsSnapshot() {
  relations_snapshot_ =
      std::make_shared<const rel::Catalog>(relations_.Clone());
}

void AnalysisSession::PublishCatalogEpoch() {
  txn::CatalogSnapshot snap;
  snap.enums = enums_;
  snap.sumys = sumys_;
  snap.gaps = gaps_;
  snap.metadata = metadata_;
  snap.dataset = dataset_;
  snap.relations = relations_snapshot_;
  epochs_->Publish(std::move(snap));
}

Result<rel::Table> AnalysisSession::MaterializeAnyTable(
    const std::string& name) const {
  txn::SnapshotPin pin = PinSnapshot();
  if (!pin.valid() || pin->relations == nullptr) {
    return relations_.MaterializeTable(name);
  }
  if (Result<rel::Table> stored = pin->relations->MaterializeTable(name);
      stored.ok()) {
    return stored;
  }
  if (auto it = pin->enums.find(name); it != pin->enums.end()) {
    return it->second->ToRelTable();
  }
  if (auto it = pin->sumys.find(name); it != pin->sumys.end()) {
    return it->second->ToRelTable();
  }
  if (auto it = pin->gaps.find(name); it != pin->gaps.end()) {
    return it->second->ToRelTable();
  }
  return Status::NotFound("no such table: " + name);
}

std::vector<std::string> AnalysisSession::SnapshotTableNames() const {
  txn::SnapshotPin pin = PinSnapshot();
  std::vector<std::string> names;
  if (pin.valid() && pin->relations != nullptr) {
    names = pin->relations->TableNames();
    for (const auto& [name, table] : pin->enums) names.push_back(name);
    for (const auto& [name, table] : pin->sumys) names.push_back(name);
    for (const auto& [name, table] : pin->gaps) names.push_back(name);
  } else {
    names = relations_.TableNames();
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ---- Group commit ----

void AnalysisSession::SetDeferredCommits(bool deferred) {
  deferred_commits_ = deferred;
}

std::shared_ptr<txn::CommitTicket> AnalysisSession::TakePendingCommit() {
  return std::move(pending_commit_);
}

Status AnalysisSession::DrainCommits() {
  pending_commit_.reset();
  if (committer_ == nullptr) return Status::OK();
  return committer_->Drain();
}

}  // namespace gea::workbench
