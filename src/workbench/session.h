#ifndef GEA_WORKBENCH_SESSION_H_
#define GEA_WORKBENCH_SESSION_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/fascicles.h"
#include "common/result.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_compare.h"
#include "core/gap_ops.h"
#include "core/operators.h"
#include "core/sumy.h"
#include "core/sumy_ops.h"
#include "core/populate.h"
#include "interval/interval.h"
#include "lineage/lineage.h"
#include "obs/statviews.h"
#include "obs/trace.h"
#include "rel/catalog.h"
#include "sage/dataset.h"
#include "store/engine.h"
#include "txn/epoch.h"
#include "txn/group_commit.h"
#include "txn/snapshot.h"
#include "workbench/users.h"

namespace gea::workbench {

/// The analysis workbench: the session-level facade tying together the
/// pieces the thesis's GUI exposes — authentication (Appendix III.1),
/// data management (III.2), administration (III.3), configuration (III.4),
/// the data-set / metadata / fascicle / GAP pipeline of Chapter 4, the
/// search facilities of Section 4.4.4, the lineage feature of Section
/// 4.4.2, and the redundancy checks of Section 4.4.5.2.
///
/// All derived tables (ENUM / SUMY / GAP) live in one shared name space,
/// like tables in the thesis's DB2 database; creating a name that exists
/// fails with AlreadyExists unless `replace` is passed.
///
/// ## Concurrency model (MVCC epochs + group commit)
///
/// The session is single-writer, many-reader. Writers are serialized
/// externally (the serve layer's exclusive session lock); each mutating
/// operation applies its change to the live maps — which hold tables by
/// shared_ptr-to-const, so a change is a fresh pointer, never an in-place
/// edit — and then publishes the whole catalog as the next immutable
/// epoch (txn::EpochManager, one atomic pointer swap).
///
/// Readers never take the session lock: PinSnapshot() hands out an RAII
/// pin on the current epoch and Query() / MaterializeAnyTable() /
/// SnapshotTableNames() run entirely against that frozen state, so a
/// checkpoint or writer burst cannot block them. Superseded tables are
/// reclaimed when the last pin referencing them drops.
///
/// Durability is batched through a txn::GroupCommitter: WAL records from
/// concurrent writers coalesce into one fsync. In the default mode every
/// mutating call still waits for its record's batch before returning
/// (ack == durable, exactly the old contract). The serve layer switches
/// on deferred-commit mode, takes the op's CommitTicket via
/// TakePendingCommit() while still holding the writer lock, and waits
/// OUTSIDE the lock — which is what lets concurrent writers' fsyncs
/// actually share a batch.
class AnalysisSession {
 public:
  /// Bootstraps the session with one administrator account.
  AnalysisSession(const std::string& admin_name,
                  const std::string& admin_password);

  // ---- Authentication (Appendix III.1) ----

  /// Name, password and claimed access level must all match.
  Status Login(const std::string& name, const std::string& password,
               AccessLevel level);
  void Logout();
  bool IsLoggedIn() const { return current_user_.has_value(); }
  Result<std::string> CurrentUser() const;

  /// Validates credentials against the user database WITHOUT changing
  /// this session's login state, and returns the granted level. The query
  /// service uses this for per-connection authentication on top of one
  /// shared session. Logged as a "login" operation either way, so failed
  /// attempts are visible in the query log.
  Result<AccessLevel> AuthenticateUser(const std::string& name,
                                       const std::string& password,
                                       AccessLevel level) const;

  // ---- Administration (Appendix III.3; administrators only) ----

  Status AddUser(const std::string& name, const std::string& password,
                 AccessLevel level);
  Status DeleteUser(const std::string& name);
  Status ModifyUser(const std::string& name, const std::string& new_password,
                    AccessLevel new_level);

  // ---- Configuration (Appendix III.4; administrators only) ----

  Status SetConfiguration(const std::string& key, const std::string& value);
  Result<std::string> GetConfiguration(const std::string& key) const;

  // ---- Data management (Appendix III.2) ----

  /// Loads the (cleaned) SAGE data set, creating the Libraries, Typeinfo
  /// and Sageinfo relations and the lineage root.
  Status LoadDataSet(sage::SageDataSet dataset);

  /// Drops every derived table and relation (administrators only) — the
  /// "initialize database" operation.
  Status InitializeDatabase();

  Result<const sage::SageDataSet*> DataSet() const;

  /// Persists the whole analysis database — the SAGE libraries, every
  /// derived ENUM/SUMY/GAP table, the tolerance metadata, and the
  /// operation history — into `directory` (created if needed).
  Status SaveDatabase(const std::string& directory) const;

  /// Replaces the session's analysis state with a database previously
  /// written by SaveDatabase. Users and configuration are unaffected.
  Status LoadDatabase(const std::string& directory);

  // ---- Durable storage (WAL + snapshots; src/store) ----

  /// Attaches a durable storage directory (administrators only) and runs
  /// crash recovery: the latest valid snapshot is restored, the WAL tail
  /// is replayed through the normal operators, and any torn trailing
  /// record is truncated. From then on every mutating operation is
  /// WAL-logged (and fsynced, per `options`) before it is acknowledged,
  /// so an acked operation survives a crash. `env` defaults to the POSIX
  /// file system; tests pass a store::FaultInjectionEnv here.
  Status OpenStorage(const std::string& directory,
                     store::StorageOptions options = {},
                     store::FileEnv* env = nullptr);

  bool StorageAttached() const { return storage_ != nullptr; }

  /// Writes a full snapshot and rotates the WAL. Also runs automatically
  /// every `StorageOptions::checkpoint_every_records` appends.
  Status Checkpoint();

  /// What recovery found and did when storage was last attached.
  Result<store::RecoverySummary> StorageRecovery() const;

  /// Final sync, then detaches. The directory remains openable.
  Status CloseStorage();

  // ---- Replication hooks (consumed by src/dist) ----

  /// Marks the session read-only: every catalog-mutating operation fails
  /// with FailedPrecondition("session is read-only"). The replication
  /// apply paths (ApplyReplicatedRecord / ApplySnapshotBlob) bypass the
  /// guard — a replica session is read-only for clients but writable by
  /// the replication stream. Promotion simply clears the flag.
  void SetReadOnly(bool read_only) { read_only_ = read_only; }
  bool ReadOnly() const { return read_only_; }

  /// Re-executes one shipped WAL record through the normal operator
  /// methods (the same dispatch recovery replay uses), bypassing the
  /// read-only guard and suppressing local WAL re-append. The caller must
  /// be logged in, and must apply records in shipped LSN order.
  Status ApplyReplicatedRecord(const store::WalRecord& record);

  /// The whole catalog as one blob (the in-memory snapshot codec over
  /// BuildSnapshotImage) — replication's cold-follower catch-up payload.
  std::string ExportSnapshotBlob() const;
  /// Replaces the catalog with a blob from ExportSnapshotBlob, bypassing
  /// the read-only guard. A corrupt blob leaves the session untouched.
  Status ApplySnapshotBlob(std::string_view blob);

  /// Observes every acknowledged WAL append: fired with the record and
  /// its LSN right after the fsync covering the record succeeds, before
  /// its waiter is acknowledged and before any automatic checkpoint.
  /// Under group commit the observer runs on whichever thread leads the
  /// record's batch (not necessarily the mutating thread), strictly in
  /// LSN order; a record whose batch fsync fails is NEVER observed — the
  /// dist layer's ships-only-acked contract. A bulk state replacement
  /// that bypasses the WAL (LoadDatabase on an attached store) instead
  /// fires a synthetic kCheckpoint record with op "state_reset" —
  /// shippers must force followers back to snapshot catch-up when they
  /// see it. At most one observer; empty clears it. Set before
  /// concurrent writers start.
  using WalObserver =
      std::function<void(uint64_t lsn, const store::WalRecord& record)>;
  void SetWalObserver(WalObserver observer) {
    wal_observer_ = std::move(observer);
  }

  /// LSN of the last durable WAL record; 0 while storage is detached.
  uint64_t DurableLsn() const { return storage_ ? storage_->last_lsn() : 0; }

  // ---- MVCC snapshot reads (consumed by the serve layer) ----

  /// Pins the current catalog epoch. Wait-free; never blocks behind
  /// writers or checkpoints. The pinned snapshot's tables stay valid for
  /// the pin's whole scope.
  txn::SnapshotPin PinSnapshot() const { return epochs_->Pin(); }
  uint64_t CurrentEpoch() const { return epochs_->CurrentEpoch(); }

  /// Materializes any table visible to readers — a frozen relation or
  /// computed view from the pinned epoch's catalog clone, or a stored
  /// ENUM/SUMY/GAP rendered via ToRelTable — without touching live
  /// session state. The serve layer's lock-free get_table path.
  Result<rel::Table> MaterializeAnyTable(const std::string& name) const;

  /// Sorted union of the pinned epoch's table names (ENUM/SUMY/GAP plus
  /// relations and computed views). Lock-free.
  std::vector<std::string> SnapshotTableNames() const;

  // ---- Group-commit control (consumed by the serve layer) ----

  /// In deferred mode a mutating operation submits its WAL record to the
  /// group committer and returns WITHOUT waiting; the caller must take
  /// the ticket (TakePendingCommit) and Wait() on it before acking the
  /// client. Off (the default), operations wait inline — ack == durable,
  /// the classic contract, for direct library callers.
  void SetDeferredCommits(bool deferred);

  /// The not-yet-awaited ticket of the last deferred mutating operation,
  /// or nullptr. Call while still holding the writer lock; Wait() on it
  /// after releasing, so concurrent writers' fsyncs batch.
  std::shared_ptr<txn::CommitTicket> TakePendingCommit();

  /// Flushes every queued commit (leads the batch if necessary).
  Status DrainCommits();

  // ---- Data sets (Figs. 4.4 and 4.15) ----

  /// System-defined tissue data set, named after the tissue type.
  Status CreateTissueDataSet(sage::TissueType tissue, bool replace = false);

  /// User-defined tissue type from explicit library ids.
  Status CreateCustomDataSet(const std::string& name,
                             const std::vector<int>& library_ids,
                             bool replace = false);

  Result<const core::EnumTable*> GetEnum(const std::string& name) const;
  Result<const core::SumyTable*> GetSumy(const std::string& name) const;
  Result<const core::GapTable*> GetGap(const std::string& name) const;

  // ---- Metadata + fascicles (Figs. 4.5-4.8) ----

  /// Generates the tolerance metadata for `dataset_name`: per-tag
  /// tolerance = `percent`% of the tag's value width.
  Status GenerateMetadata(const std::string& dataset_name, double percent,
                          const std::string& meta_name,
                          bool replace = false);

  /// Runs the Fascicles algorithm; stores, per fascicle i, the member
  /// ENUM table "<out_prefix>_i" and its SUMY "<out_prefix>_i_SUMY".
  /// Returns the fascicle ENUM names in mining order.
  Result<std::vector<std::string>> CalculateFascicles(
      const std::string& dataset_name, const std::string& meta_name,
      size_t min_compact_tags, size_t batch_size, size_t min_size,
      const std::string& out_prefix,
      cluster::FascicleParams::Algorithm algorithm =
          cluster::FascicleParams::Algorithm::kGreedy);

  /// The Fig. 4.8 purity check of a fascicle ENUM table.
  Result<std::vector<core::PurityProperty>> CheckPurity(
      const std::string& enum_name) const;

  /// Names of the tables FormControlGroups creates.
  struct ControlGroups {
    std::string fascicle_sumy;      // e.g. brain35k_4CancerFasTbl
    std::string not_in_fas_enum;    // same-state libraries outside
    std::string not_in_fas_sumy;    //   the fascicle (ENUM2 / SUMY2)
    std::string opposite_enum;      // opposite-state libraries
    std::string opposite_sumy;      //   (ENUM3 / SUMY3)
  };

  /// The "Form SUM" macro of Figs. 4.7-4.8 (Section 4.3.1 steps 4-5):
  /// requires the fascicle to be pure cancer or pure normal; builds the
  /// two control groups over the fascicle's compact tags and aggregates
  /// them. Fails with FailedPrecondition on non-pure fascicles ("the
  /// analysis of this fascicle is terminated").
  Result<ControlGroups> FormControlGroups(const std::string& dataset_name,
                                          const std::string& fascicle_enum);

  // ---- Direct operator invocations ----

  /// SUMY = aggregate(ENUM), stored under `out_name` (the thesis's
  /// summarize step run outside the fascicle macro).
  Status Aggregate(const std::string& enum_name, const std::string& out_name,
                   bool replace = false);

  /// ENUM = populate(SUMY, base ENUM): the libraries of `base_enum` whose
  /// expression values fall inside the SUMY's [min, max] bands, stored
  /// under `out_name`.
  Status Populate(const std::string& sumy_name, const std::string& base_enum,
                  const std::string& out_name, bool replace = false);

  // ---- GAP operations (Figs. 4.9, 4.12, 4.13, 4.19) ----

  /// GAP = diff(sumy1, sumy2), stored under `gap_name`.
  Status CreateGap(const std::string& sumy1_name,
                   const std::string& sumy2_name, const std::string& gap_name,
                   bool replace = false);

  /// Stores the top-x table under "<gap_name>_<x>" and returns that name.
  Result<std::string> CalculateTopGap(
      const std::string& gap_name, size_t x,
      core::TopGapMode mode = core::TopGapMode::kLargestMagnitude);

  /// Combines two GAP tables (Fig. 4.13); result is a stored GAP table.
  Status CompareGapTables(const std::string& gap_a,
                          const std::string& gap_b,
                          core::GapCompareKind kind,
                          const std::string& out_name, bool replace = false);

  /// Runs one of the 13 queries on a stored compared table; stores the
  /// result under `out_name`.
  Status RunGapQuery(const std::string& compared_name,
                     core::GapCompareQuery query,
                     const std::string& out_name, bool replace = false);

  // ---- Search operations (Section 4.4.4.2) ----

  /// Library information by id or name (Fig. 4.23).
  Result<sage::LibraryMeta> SearchLibrary(int id) const;
  Result<sage::LibraryMeta> SearchLibrary(const std::string& name) const;

  /// Names of the libraries of one tissue type (Fig. 4.24).
  Result<std::vector<std::string>> LibrariesOfTissue(
      sage::TissueType tissue) const;

  /// One row of the tag-frequency report (Figs. 4.25/4.26).
  struct TagFrequencyRow {
    sage::TagId tag = 0;
    std::vector<double> values;  // aligned with the queried library names
  };

  /// Expression values of every tag in [first_tag, last_tag] across the
  /// named libraries; pass first == last for a single tag.
  Result<std::vector<TagFrequencyRow>> TagFrequency(
      sage::TagId first_tag, sage::TagId last_tag,
      const std::vector<std::string>& library_names) const;

  /// The "range search for library" of Section 4.4.4.2: names of the
  /// libraries whose expression level for `tag` lies in [lo, hi].
  Result<std::vector<std::string>> SearchLibrariesByTagRange(
      sage::TagId tag, double lo, double hi) const;

  /// Runs a SQL-style query against the auxiliary relations (Libraries,
  /// Typeinfo, Sageinfo) — the ad-hoc querying the thesis performs over
  /// its DB2 tables. See rel/sql.h for the supported grammar.
  Result<rel::Table> Query(const std::string& sql) const;

  /// The Fig. 4.16 range-arithmetic search over stored SUMY tables: for
  /// every tag in [first_tag, last_tag] and every named table, reports
  /// NE / NO / the actual range under `relation` vs `query`.
  Result<std::vector<core::RangeSearchHit>> RangeSearchSumys(
      const std::vector<std::string>& sumy_names, sage::TagId first_tag,
      sage::TagId last_tag, interval::AllenRelation relation,
      const interval::Interval& query) const;

  // ---- Observability (query log + EXPLAIN) ----

  /// One logged operator invocation.
  struct QueryLogEntry {
    std::string operation;   // e.g. "populate", "create_gap"
    std::string detail;      // inputs/outputs, human readable
    uint64_t elapsed_nanos = 0;
    bool ok = true;
    std::string error;       // status message when !ok
  };

  /// Snapshot of the logged operations, oldest first. The log is a
  /// fixed-capacity ring (SetQueryLogCapacity, default 1024 entries):
  /// once full, each append evicts the oldest entry, so a long-lived
  /// serving session cannot grow without bound. Returned by value and
  /// guarded by a mutex, so it is safe to call while other threads run
  /// logged operations.
  std::vector<QueryLogEntry> QueryLog() const;
  void ClearQueryLog();

  /// Caps the query-log ring. Shrinking evicts oldest entries
  /// immediately; a capacity of 0 is clamped to 1.
  void SetQueryLogCapacity(size_t capacity);
  size_t QueryLogCapacity() const;

  /// The captured profile of the most recent logged operation: its span
  /// tree and the registry counters it moved. Spans require GEA_TRACE
  /// (or ScopedTraceEnable), counters GEA_METRICS; with both off the
  /// profile still reports wall time.
  Result<const obs::OperationProfile*> LastProfile() const;

  /// Renders LastProfile() — GEA's EXPLAIN surface:
  ///   populate  1.234 ms
  ///   spans: ...nested tree...
  ///   counters: gea.populate.rows_materialized  35 ...
  Result<std::string> ExplainLast() const;

  // ---- Lineage (Section 4.4.2) ----

  const lineage::LineageGraph& Lineage() const { return lineage_; }

  /// Attaches a user comment to the lineage node of `table_name`.
  Status CommentOn(const std::string& table_name, const std::string& comment);

  /// Deletes a derived table. `cascade` removes everything derived from
  /// it as well; otherwise only the contents are dropped and the lineage
  /// metadata survives for regeneration.
  Status DeleteTable(const std::string& table_name, bool cascade);

  /// All stored table names (ENUM + SUMY + GAP), sorted.
  std::vector<std::string> TableNames() const;

  /// Auxiliary relations (Libraries, Typeinfo, Sageinfo).
  const rel::Catalog& Relations() const { return relations_; }

 private:
  Status RequireLogin() const;
  Status RequireAdmin() const;
  /// FailedPrecondition on a read-only session, unless the call is on
  /// the replication-apply path (applying_replication_).
  Status RequireWritable() const;

  static const Status& StatusOf(const Status& status) { return status; }
  template <typename T>
  static const Status& StatusOf(const Result<T>& result) {
    return result.status();
  }

  /// Runs `body` under an obs::OperationCapture, appends a QueryLogEntry
  /// and stores the operation profile for ExplainLast(). `body` returns
  /// Status or Result<T>; the return value passes through unchanged.
  template <typename Fn>
  auto Logged(const std::string& operation, std::string detail,
              Fn&& body) const -> decltype(body()) {
    obs::OperationCapture capture(operation);
    auto result = body();
    obs::OperationProfile profile = capture.Finish();
    QueryLogEntry entry;
    entry.operation = operation;
    entry.detail = std::move(detail);
    entry.elapsed_nanos = profile.elapsed_nanos;
    const Status& status = StatusOf(result);
    entry.ok = status.ok();
    if (!status.ok()) entry.error = status.message();
    ExportTelemetry(entry, profile);
    {
      std::lock_guard<std::mutex> lock(*log_mu_);
      query_log_.push_back(std::move(entry));
      while (query_log_.size() > query_log_capacity_) query_log_.pop_front();
      last_profile_ = std::move(profile);
    }
    return result;
  }

  /// Fans one finished operation out to the process-wide telemetry: the
  /// TelemetryHub (gea_stat_operators / gea_stat_sessions), the /tracez
  /// slot, and — when the operation is at or over GEA_SLOW_QUERY_MS —
  /// one structured "slow_query" log record.
  void ExportTelemetry(const QueryLogEntry& entry,
                       const obs::OperationProfile& profile) const;
  /// Sets the data set and rebuilds the auxiliary relations without
  /// touching the lineage graph.
  Status InstallDataSet(sage::SageDataSet dataset);
  /// The Section 4.4.5.2 redundancy check over the shared namespace.
  Status CheckNameFree(const std::string& name, bool replace);
  /// Removes `name` from whichever registry holds it.
  void DropObject(const std::string& name);
  /// Registers a lineage node, ignoring duplicate-name errors after
  /// replace-drops.
  void RecordLineage(const std::string& name, lineage::NodeKind kind,
                     const std::string& operation,
                     std::map<std::string, std::string> parameters,
                     const std::vector<std::string>& parent_names);

  // ---- Durable storage plumbing (session_storage.cc) ----

  /// Appends one logical-operation record to the WAL and applies the
  /// automatic checkpoint policy. No-op when storage is detached or the
  /// session is replaying the WAL during recovery.
  Status WalOp(const std::string& op,
               std::map<std::string, std::string> params);
  /// Same, for physical payloads that cannot be re-derived (data sets).
  Status WalBlob(const std::string& kind, std::string payload);
  /// Common WAL tail for WalOp/WalBlob: submits the record to the group
  /// committer, waits inline (or stashes the ticket when deferred commits
  /// are on), and applies the automatic checkpoint policy.
  Status CommitWalRecord(store::WalRecord record);
  /// WAL-logs the currently installed data set as a blob record.
  Status WalLogDataSet();
  /// Re-executes one WAL record through the public operator methods.
  Status ReplayWalRecord(const store::WalRecord& record);
  /// Maps the whole analysis state onto snapshot sections and back.
  store::SnapshotImage BuildSnapshotImage() const;
  Status RestoreFromSnapshotImage(const store::SnapshotImage& image);

  // ---- MVCC plumbing ----

  /// Publishes the live maps as the next immutable epoch (shallow
  /// shared_ptr map copies + the cached relations clone). Called at the
  /// end of every mutating operation, from WalOp/WalBlob.
  void PublishCatalogEpoch();
  /// Re-clones relations_ into the snapshot cache. Called after
  /// operations that change the relations catalog (data-set install,
  /// restore, initialize) — table-map mutations don't need it.
  void RefreshRelationsSnapshot();

  UserDatabase users_;
  /// Registration with the global TelemetryHub; keeps this session
  /// visible in gea_stat_sessions for its lifetime (move-aware).
  obs::SessionTelemetryHandle telemetry_;
  std::optional<std::string> current_user_;
  AccessLevel current_level_ = AccessLevel::kUser;
  std::map<std::string, std::string> configuration_;

  std::shared_ptr<const sage::SageDataSet> dataset_;
  rel::Catalog relations_;
  lineage::LineageGraph lineage_;

  std::unique_ptr<store::StorageEngine> storage_;
  std::optional<store::RecoverySummary> recovery_;
  bool replaying_wal_ = false;
  bool read_only_ = false;
  bool applying_replication_ = false;
  WalObserver wal_observer_;

  /// Group-commit WAL committer; live exactly while storage_ is attached.
  std::unique_ptr<txn::GroupCommitter> committer_;
  bool deferred_commits_ = false;
  std::shared_ptr<txn::CommitTicket> pending_commit_;

  // The working (writer-side) catalog. Values are shared_ptr-to-const so
  // published epochs share them: replacing a table swaps the pointer,
  // which is what keeps superseded epochs' views intact (COW).
  std::map<std::string, std::shared_ptr<const core::EnumTable>> enums_;
  std::map<std::string, std::shared_ptr<const core::SumyTable>> sumys_;
  std::map<std::string, std::shared_ptr<const core::GapTable>> gaps_;
  std::map<std::string, std::shared_ptr<const std::vector<double>>>
      metadata_;  // tolerance vectors

  /// Epoch publication point (unique_ptr keeps the session movable).
  std::unique_ptr<txn::EpochManager> epochs_ =
      std::make_unique<txn::EpochManager>();
  /// Frozen clone of relations_ shared by snapshots until the next
  /// relations-changing operation.
  std::shared_ptr<const rel::Catalog> relations_snapshot_;

  // Mutable: logging is bookkeeping, so const queries (e.g. Query())
  // still append to the log. log_mu_ guards the ring and the profile;
  // the serve layer reads QueryLog()/ExplainLast() while workers append.
  // Held by pointer so the session stays movable (tests return sessions
  // by value); moving a session while another thread logs on it is not
  // supported, same as every other member.
  mutable std::unique_ptr<std::mutex> log_mu_ = std::make_unique<std::mutex>();
  mutable std::deque<QueryLogEntry> query_log_;
  size_t query_log_capacity_ = 1024;
  mutable std::optional<obs::OperationProfile> last_profile_;
};

}  // namespace gea::workbench

#endif  // GEA_WORKBENCH_SESSION_H_
