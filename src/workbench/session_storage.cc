#include <cstdlib>
#include <utility>

#include "common/strings.h"
#include "core/serialization.h"
#include "obs/statviews.h"
#include "sage/io.h"
#include "store/format.h"
#include "workbench/session.h"

/// Durable-storage half of AnalysisSession: mapping the session state
/// onto snapshot sections, replaying logical WAL records through the
/// public operator methods, and the open/checkpoint/close plumbing.
/// The WAL-append call sites themselves live next to each operator in
/// session.cc.

namespace gea::workbench {

namespace {

// ---- Section kinds (frozen: they are written to disk) ----
constexpr char kKindSage[] = "sage";
constexpr char kKindEnum[] = "enum";
constexpr char kKindEnumLibs[] = "enum_libs";
constexpr char kKindSumy[] = "sumy";
constexpr char kKindGap[] = "gap";
constexpr char kKindMetadata[] = "metadata";
constexpr char kKindLineageNodes[] = "lineage_nodes";
constexpr char kKindLineageParams[] = "lineage_params";
constexpr char kKindLineageEdges[] = "lineage_edges";
constexpr char kKindRelation[] = "relation";

std::string EncodeDataSetBlob(const sage::SageDataSet& dataset) {
  std::string out;
  store::PutU32(&out, static_cast<uint32_t>(dataset.NumLibraries()));
  for (const sage::SageLibrary& lib : dataset.libraries()) {
    store::PutString(&out, lib.name());
    store::PutString(&out, sage::WriteLibraryText(lib));
  }
  return out;
}

Result<sage::SageDataSet> DecodeDataSetBlob(std::string_view blob) {
  store::ByteReader reader(blob);
  GEA_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  sage::SageDataSet dataset;
  for (uint32_t i = 0; i < count; ++i) {
    GEA_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(std::string text, reader.ReadString());
    GEA_ASSIGN_OR_RETURN(sage::SageLibrary lib,
                         sage::ReadLibraryText(name, text));
    dataset.AddLibrary(std::move(lib));
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes in SAGE data set blob");
  }
  return dataset;
}

rel::Table ToleranceTable(const std::string& name,
                          const std::vector<double>& tolerances) {
  rel::Table table(name, rel::Schema({{"Index", rel::ValueType::kInt},
                                      {"Tolerance", rel::ValueType::kDouble}}));
  for (size_t i = 0; i < tolerances.size(); ++i) {
    table.AppendRowUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                              rel::Value::Double(tolerances[i])});
  }
  return table;
}

Result<std::vector<double>> TolerancesFromTable(const rel::Table& table) {
  std::vector<double> tolerances(table.NumRows(), 0.0);
  for (size_t r1_ = 0; r1_ < table.NumRows(); ++r1_) {
    const rel::Row row = table.GetRow(r1_);
    if (row.size() != 2 || row[0].type() != rel::ValueType::kInt ||
        row[1].type() != rel::ValueType::kDouble) {
      return Status::InvalidArgument("malformed metadata section: " +
                                     table.name());
    }
    size_t index = static_cast<size_t>(row[0].AsInt());
    if (index >= tolerances.size()) {
      return Status::InvalidArgument("bad metadata index in " + table.name());
    }
    tolerances[index] = row[1].AsDouble();
  }
  return tolerances;
}

// ---- WAL parameter accessors ----

Result<std::string> Param(const std::map<std::string, std::string>& params,
                          const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) {
    return Status::InvalidArgument("WAL record is missing parameter: " + key);
  }
  return it->second;
}

Result<int64_t> IntParam(const std::map<std::string, std::string>& params,
                         const std::string& key) {
  GEA_ASSIGN_OR_RETURN(std::string text, Param(params, key));
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("WAL parameter " + key +
                                   " is not an integer: " + text);
  }
  return static_cast<int64_t>(v);
}

Result<double> DoubleParam(const std::map<std::string, std::string>& params,
                           const std::string& key) {
  GEA_ASSIGN_OR_RETURN(std::string text, Param(params, key));
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("WAL parameter " + key +
                                   " is not a number: " + text);
  }
  return v;
}

Result<bool> BoolParam(const std::map<std::string, std::string>& params,
                       const std::string& key) {
  GEA_ASSIGN_OR_RETURN(std::string text, Param(params, key));
  if (text == "1") return true;
  if (text == "0") return false;
  return Status::InvalidArgument("WAL parameter " + key +
                                 " is not a boolean: " + text);
}

}  // namespace

// ---- Attach / checkpoint / detach ----

Status AnalysisSession::OpenStorage(const std::string& directory,
                                    store::StorageOptions options,
                                    store::FileEnv* env) {
  GEA_RETURN_IF_ERROR(RequireAdmin());
  GEA_RETURN_IF_ERROR(RequireWritable());
  if (storage_) {
    return Status::FailedPrecondition(
        "a storage directory is already attached: " + storage_->directory());
  }
  if (env == nullptr) env = store::FileEnv::Default();

  GEA_ASSIGN_OR_RETURN(store::StorageEngine::OpenResult opened,
                       store::StorageEngine::Open(env, directory, options));
  if (opened.snapshot.has_value()) {
    GEA_RETURN_IF_ERROR(RestoreFromSnapshotImage(*opened.snapshot));
  }
  // Replay is routed through the public operator methods, which are
  // deterministic, so the rebuilt catalog matches the pre-crash one. The
  // guard keeps the replayed operations from being re-appended.
  replaying_wal_ = true;
  Status replayed = Status::OK();
  for (const store::WalRecord& record : opened.records) {
    replayed = ReplayWalRecord(record);
    if (!replayed.ok()) break;
  }
  replaying_wal_ = false;
  GEA_RETURN_IF_ERROR(replayed);

  storage_ = std::move(opened.engine);
  committer_ = std::make_unique<txn::GroupCommitter>(storage_.get());
  // The observer is read at fire time (on the batch-leader thread), so a
  // subscriber attached after OpenStorage still sees every later commit.
  committer_->set_durable_callback(
      [this](uint64_t lsn, const store::WalRecord& record) {
        if (wal_observer_) wal_observer_(lsn, record);
      });
  recovery_ = opened.summary;
  // One query-log entry so recovery shows up in the session history and
  // the telemetry exports (slow-query log, /statz).
  return Logged("open_storage", recovery_->ToString(),
                [] { return Status::OK(); });
}

Status AnalysisSession::Checkpoint() {
  GEA_RETURN_IF_ERROR(RequireLogin());
  if (!storage_) {
    return Status::FailedPrecondition("no storage directory is attached");
  }
  return Logged("checkpoint", storage_->directory(), [&]() -> Status {
    // The checkpoint rotates the WAL under the engine; an in-flight
    // commit batch must land (and be acked) first.
    GEA_RETURN_IF_ERROR(DrainCommits());
    return storage_->Checkpoint(BuildSnapshotImage());
  });
}

Result<store::RecoverySummary> AnalysisSession::StorageRecovery() const {
  if (!recovery_.has_value()) {
    return Status::FailedPrecondition("no storage directory has been attached");
  }
  return *recovery_;
}

Status AnalysisSession::CloseStorage() {
  if (!storage_) return Status::OK();
  Status drained = DrainCommits();
  committer_.reset();
  Status s = storage_->Close();
  storage_.reset();
  return drained.ok() ? s : drained;
}

// ---- WAL append + replay ----

Status AnalysisSession::WalOp(const std::string& op,
                              std::map<std::string, std::string> params) {
  // Every mutating operator funnels through here (or WalBlob), so this is
  // the single point where the new catalog version becomes visible to
  // lock-free readers. Published unconditionally — detached sessions,
  // WAL replay, and replication apply mutate the catalog too, they just
  // skip the log append below.
  PublishCatalogEpoch();
  if (!storage_ || replaying_wal_) return Status::OK();
  return CommitWalRecord(store::WalRecord::LogicalOp(op, std::move(params)));
}

Status AnalysisSession::WalLogDataSet() {
  if (!storage_ || replaying_wal_ || dataset_ == nullptr) {
    // Detached and replaying sessions still mutated the catalog, so the
    // new version must reach snapshot readers even without a log append.
    PublishCatalogEpoch();
    return Status::OK();
  }
  return WalBlob("load_dataset", EncodeDataSetBlob(*dataset_));
}

Status AnalysisSession::WalBlob(const std::string& kind, std::string payload) {
  PublishCatalogEpoch();
  if (!storage_ || replaying_wal_) return Status::OK();
  return CommitWalRecord(store::WalRecord::BlobRecord(kind,
                                                      std::move(payload)));
}

Status AnalysisSession::CommitWalRecord(store::WalRecord record) {
  std::shared_ptr<txn::CommitTicket> ticket =
      committer_->Submit(std::move(record));
  if (deferred_commits_) {
    // The serving layer collects the ticket (TakePendingCommit) inside
    // the writer lock and waits on it after releasing the lock, so
    // concurrent writers' fsyncs coalesce into one batch. The durable
    // callback — not this path — acks the record to replication.
    pending_commit_ = std::move(ticket);
  } else {
    // Direct callers (shell, tests, replay-less tools) keep the old
    // contract: when this returns OK the record is fsynced on disk.
    GEA_RETURN_IF_ERROR(ticket->Wait());
  }
  if (storage_->CheckpointDue()) {
    GEA_RETURN_IF_ERROR(DrainCommits());
    return storage_->Checkpoint(BuildSnapshotImage());
  }
  return Status::OK();
}

// ---- Replication hooks ----

Status AnalysisSession::ApplyReplicatedRecord(const store::WalRecord& record) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  // Same re-execution path as recovery replay. replaying_wal_ keeps the
  // applied operation from being re-appended to a local WAL (a promoted
  // replica attaches its own store later); applying_replication_ lets the
  // operators through the read-only guard.
  applying_replication_ = true;
  replaying_wal_ = true;
  Status applied = ReplayWalRecord(record);
  replaying_wal_ = false;
  applying_replication_ = false;
  return applied;
}

std::string AnalysisSession::ExportSnapshotBlob() const {
  return store::EncodeSnapshot(BuildSnapshotImage());
}

Status AnalysisSession::ApplySnapshotBlob(std::string_view blob) {
  GEA_RETURN_IF_ERROR(RequireLogin());
  GEA_ASSIGN_OR_RETURN(store::SnapshotImage image, store::DecodeSnapshot(blob));
  applying_replication_ = true;
  Status restored = RestoreFromSnapshotImage(image);
  applying_replication_ = false;
  return restored;
}

Status AnalysisSession::ReplayWalRecord(const store::WalRecord& record) {
  const auto& p = record.params;
  if (record.type == store::WalRecord::Type::kBlob) {
    if (record.op == "load_dataset") {
      GEA_ASSIGN_OR_RETURN(sage::SageDataSet dataset,
                           DecodeDataSetBlob(record.payload));
      return LoadDataSet(std::move(dataset));
    }
    return Status::InvalidArgument("unknown WAL blob kind: " + record.op);
  }

  if (record.op == "tissue_dataset") {
    GEA_ASSIGN_OR_RETURN(std::string tissue, Param(p, "tissue"));
    GEA_ASSIGN_OR_RETURN(sage::TissueType type, sage::ParseTissueType(tissue));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return CreateTissueDataSet(type, replace);
  }
  if (record.op == "custom_dataset") {
    GEA_ASSIGN_OR_RETURN(std::string name, Param(p, "name"));
    GEA_ASSIGN_OR_RETURN(std::string ids_text, Param(p, "ids"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    std::vector<int> ids;
    for (const std::string& token : Split(ids_text, ',')) {
      if (token.empty()) continue;
      ids.push_back(std::atoi(token.c_str()));
    }
    return CreateCustomDataSet(name, ids, replace);
  }
  if (record.op == "generate_metadata") {
    GEA_ASSIGN_OR_RETURN(std::string dataset, Param(p, "dataset"));
    GEA_ASSIGN_OR_RETURN(double percent, DoubleParam(p, "percent"));
    GEA_ASSIGN_OR_RETURN(std::string meta, Param(p, "meta"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return GenerateMetadata(dataset, percent, meta, replace);
  }
  if (record.op == "fascicles") {
    GEA_ASSIGN_OR_RETURN(std::string dataset, Param(p, "dataset"));
    GEA_ASSIGN_OR_RETURN(std::string meta, Param(p, "meta"));
    GEA_ASSIGN_OR_RETURN(int64_t min_compact, IntParam(p, "min_compact_tags"));
    GEA_ASSIGN_OR_RETURN(int64_t batch, IntParam(p, "batch_size"));
    GEA_ASSIGN_OR_RETURN(int64_t min_size, IntParam(p, "min_size"));
    GEA_ASSIGN_OR_RETURN(std::string prefix, Param(p, "out_prefix"));
    GEA_ASSIGN_OR_RETURN(int64_t algorithm, IntParam(p, "algorithm"));
    return CalculateFascicles(
               dataset, meta, static_cast<size_t>(min_compact),
               static_cast<size_t>(batch), static_cast<size_t>(min_size),
               prefix,
               static_cast<cluster::FascicleParams::Algorithm>(algorithm))
        .status();
  }
  if (record.op == "control_groups") {
    GEA_ASSIGN_OR_RETURN(std::string dataset, Param(p, "dataset"));
    GEA_ASSIGN_OR_RETURN(std::string fascicle, Param(p, "fascicle"));
    return FormControlGroups(dataset, fascicle).status();
  }
  if (record.op == "aggregate") {
    GEA_ASSIGN_OR_RETURN(std::string in, Param(p, "enum"));
    GEA_ASSIGN_OR_RETURN(std::string out, Param(p, "out"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return Aggregate(in, out, replace);
  }
  if (record.op == "populate") {
    GEA_ASSIGN_OR_RETURN(std::string sumy, Param(p, "sumy"));
    GEA_ASSIGN_OR_RETURN(std::string base, Param(p, "base"));
    GEA_ASSIGN_OR_RETURN(std::string out, Param(p, "out"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return Populate(sumy, base, out, replace);
  }
  if (record.op == "create_gap") {
    GEA_ASSIGN_OR_RETURN(std::string sumy1, Param(p, "sumy1"));
    GEA_ASSIGN_OR_RETURN(std::string sumy2, Param(p, "sumy2"));
    GEA_ASSIGN_OR_RETURN(std::string gap, Param(p, "gap"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return CreateGap(sumy1, sumy2, gap, replace);
  }
  if (record.op == "top_gap") {
    GEA_ASSIGN_OR_RETURN(std::string gap, Param(p, "gap"));
    GEA_ASSIGN_OR_RETURN(int64_t x, IntParam(p, "x"));
    GEA_ASSIGN_OR_RETURN(int64_t mode, IntParam(p, "mode"));
    return CalculateTopGap(gap, static_cast<size_t>(x),
                           static_cast<core::TopGapMode>(mode))
        .status();
  }
  if (record.op == "compare_gaps") {
    GEA_ASSIGN_OR_RETURN(std::string a, Param(p, "a"));
    GEA_ASSIGN_OR_RETURN(std::string b, Param(p, "b"));
    GEA_ASSIGN_OR_RETURN(int64_t kind, IntParam(p, "kind"));
    GEA_ASSIGN_OR_RETURN(std::string out, Param(p, "out"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return CompareGapTables(a, b, static_cast<core::GapCompareKind>(kind), out,
                            replace);
  }
  if (record.op == "gap_query") {
    GEA_ASSIGN_OR_RETURN(std::string compared, Param(p, "compared"));
    GEA_ASSIGN_OR_RETURN(int64_t query, IntParam(p, "query"));
    GEA_ASSIGN_OR_RETURN(std::string out, Param(p, "out"));
    GEA_ASSIGN_OR_RETURN(bool replace, BoolParam(p, "replace"));
    return RunGapQuery(compared, static_cast<core::GapCompareQuery>(query),
                       out, replace);
  }
  if (record.op == "comment") {
    GEA_ASSIGN_OR_RETURN(std::string table, Param(p, "table"));
    GEA_ASSIGN_OR_RETURN(std::string comment, Param(p, "comment"));
    return CommentOn(table, comment);
  }
  if (record.op == "delete_table") {
    GEA_ASSIGN_OR_RETURN(std::string table, Param(p, "table"));
    GEA_ASSIGN_OR_RETURN(bool cascade, BoolParam(p, "cascade"));
    return DeleteTable(table, cascade);
  }
  if (record.op == "initialize") {
    return InitializeDatabase();
  }
  return Status::InvalidArgument("unknown WAL operation: " + record.op);
}

// ---- Snapshot mapping ----

store::SnapshotImage AnalysisSession::BuildSnapshotImage() const {
  store::SnapshotImage image;
  if (dataset_ != nullptr) {
    image.sections.push_back(store::SnapshotSection::Blob(
        kKindSage, "dataset", EncodeDataSetBlob(*dataset_)));
  }
  for (const auto& [name, table] : enums_) {
    image.sections.push_back(
        store::SnapshotSection::Table(kKindEnum, table->ToRelTable()));
    image.sections.push_back(store::SnapshotSection::Table(
        kKindEnumLibs, core::EnumLibrariesToRelTable(*table, name + "_libs")));
  }
  for (const auto& [name, table] : sumys_) {
    (void)name;
    image.sections.push_back(
        store::SnapshotSection::Table(kKindSumy, table->ToRelTable()));
  }
  for (const auto& [name, table] : gaps_) {
    (void)name;
    image.sections.push_back(
        store::SnapshotSection::Table(kKindGap, table->ToRelTable()));
  }
  for (const auto& [name, tolerances] : metadata_) {
    image.sections.push_back(store::SnapshotSection::Table(
        kKindMetadata, ToleranceTable(name, *tolerances)));
  }
  lineage::LineageGraph::RelExport history = lineage_.Export();
  image.sections.push_back(
      store::SnapshotSection::Table(kKindLineageNodes, std::move(history.nodes)));
  image.sections.push_back(store::SnapshotSection::Table(
      kKindLineageParams, std::move(history.params)));
  image.sections.push_back(
      store::SnapshotSection::Table(kKindLineageEdges, std::move(history.edges)));
  // Stored relations only: computed (gea_stat_*) views are live telemetry
  // rebuilt by RegisterStatViews, not data — snapshotting one would
  // freeze a counter sample into the catalog.
  for (const std::string& name : relations_.TableNames()) {
    if (relations_.IsComputed(name)) continue;
    auto table = relations_.GetTable(name);
    if (!table.ok()) continue;
    image.sections.push_back(
        store::SnapshotSection::Table(kKindRelation, **table));
  }
  return image;
}

Status AnalysisSession::RestoreFromSnapshotImage(
    const store::SnapshotImage& image) {
  // Stage everything first so a corrupt section leaves the session as-is.
  std::optional<sage::SageDataSet> dataset;
  std::map<std::string, std::shared_ptr<const core::EnumTable>> enums;
  std::map<std::string, std::shared_ptr<const core::SumyTable>> sumys;
  std::map<std::string, std::shared_ptr<const core::GapTable>> gaps;
  std::map<std::string, std::shared_ptr<const std::vector<double>>> metadata;
  std::vector<rel::Table> stored_relations;
  const rel::Table* lineage_nodes = nullptr;
  const rel::Table* lineage_params = nullptr;
  const rel::Table* lineage_edges = nullptr;

  for (const store::SnapshotSection& section : image.sections) {
    if (section.kind == kKindSage) {
      GEA_ASSIGN_OR_RETURN(sage::SageDataSet decoded,
                           DecodeDataSetBlob(section.blob));
      dataset = std::move(decoded);
    } else if (section.kind == kKindEnum) {
      const store::SnapshotSection* libs =
          image.Find(kKindEnumLibs, section.name + "_libs");
      if (libs == nullptr || !libs->table.has_value() ||
          !section.table.has_value()) {
        return Status::InvalidArgument(
            "snapshot is missing the library table for ENUM " + section.name);
      }
      GEA_ASSIGN_OR_RETURN(
          core::EnumTable table,
          core::EnumFromRelTables(*section.table, *libs->table, section.name));
      enums.emplace(section.name, std::make_shared<const core::EnumTable>(
                                      std::move(table)));
    } else if (section.kind == kKindSumy && section.table.has_value()) {
      GEA_ASSIGN_OR_RETURN(core::SumyTable table,
                           core::SumyFromRelTable(*section.table, section.name));
      sumys.emplace(section.name, std::make_shared<const core::SumyTable>(
                                      std::move(table)));
    } else if (section.kind == kKindGap && section.table.has_value()) {
      GEA_ASSIGN_OR_RETURN(core::GapTable table,
                           core::GapFromRelTable(*section.table, section.name));
      gaps.emplace(section.name, std::make_shared<const core::GapTable>(
                                     std::move(table)));
    } else if (section.kind == kKindMetadata && section.table.has_value()) {
      GEA_ASSIGN_OR_RETURN(std::vector<double> tolerances,
                           TolerancesFromTable(*section.table));
      metadata.emplace(section.name,
                       std::make_shared<const std::vector<double>>(
                           std::move(tolerances)));
    } else if (section.kind == kKindLineageNodes && section.table.has_value()) {
      lineage_nodes = &*section.table;
    } else if (section.kind == kKindLineageParams &&
               section.table.has_value()) {
      lineage_params = &*section.table;
    } else if (section.kind == kKindLineageEdges && section.table.has_value()) {
      lineage_edges = &*section.table;
    } else if (section.kind == kKindRelation && section.table.has_value()) {
      stored_relations.push_back(*section.table);
    } else if (section.kind == kKindEnumLibs) {
      // Consumed alongside its ENUM section.
    } else {
      return Status::InvalidArgument("unknown snapshot section kind: " +
                                     section.kind);
    }
  }

  lineage::LineageGraph history;
  if (lineage_nodes != nullptr && lineage_params != nullptr &&
      lineage_edges != nullptr) {
    GEA_ASSIGN_OR_RETURN(history, lineage::LineageGraph::Import(
                                      *lineage_nodes, *lineage_params,
                                      *lineage_edges));
  }

  // Commit.
  enums_ = std::move(enums);
  sumys_ = std::move(sumys);
  gaps_ = std::move(gaps);
  metadata_ = std::move(metadata);
  lineage_ = std::move(history);
  relations_.Initialize();
  obs::RegisterStatViews(relations_);  // Initialize() dropped the views
  for (rel::Table& table : stored_relations) {
    GEA_RETURN_IF_ERROR(
        relations_.CreateTable(std::move(table), /*replace=*/true));
  }
  dataset_.reset();
  if (dataset.has_value()) {
    // InstallDataSet rebuilds the auxiliary relations, replacing the
    // snapshot copies with identical dataset-derived ones.
    GEA_RETURN_IF_ERROR(InstallDataSet(std::move(*dataset)));
  }
  // The restore replaced the whole catalog wholesale; readers flip to it
  // in one epoch publication.
  RefreshRelationsSnapshot();
  PublishCatalogEpoch();
  return Status::OK();
}

}  // namespace gea::workbench
