#include "workbench/users.h"

namespace gea::workbench {

const char* AccessLevelName(AccessLevel level) {
  switch (level) {
    case AccessLevel::kUser:
      return "user";
    case AccessLevel::kAdministrator:
      return "administrator";
  }
  return "?";
}

uint64_t UserDatabase::HashPassword(const std::string& password,
                                    uint64_t salt) {
  // FNV-1a seeded with the salt; adequate for an offline toolkit store.
  uint64_t hash = 14695981039346656037ull ^ salt;
  for (char c : password) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

UserDatabase::UserDatabase(const std::string& admin_name,
                           const std::string& admin_password) {
  Account admin;
  admin.salt = next_salt_++;
  admin.password_hash = HashPassword(admin_password, admin.salt);
  admin.level = AccessLevel::kAdministrator;
  accounts_.emplace(admin_name, admin);
}

Status UserDatabase::AddUser(const std::string& name,
                             const std::string& password,
                             AccessLevel level) {
  if (name.empty()) {
    return Status::InvalidArgument("user name must be non-empty");
  }
  if (accounts_.count(name) > 0) {
    return Status::AlreadyExists("user already exists: " + name);
  }
  Account account;
  account.salt = next_salt_++;
  account.password_hash = HashPassword(password, account.salt);
  account.level = level;
  accounts_.emplace(name, account);
  return Status::OK();
}

Status UserDatabase::DeleteUser(const std::string& name) {
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    return Status::NotFound("no such user: " + name);
  }
  if (it->second.level == AccessLevel::kAdministrator) {
    size_t admins = 0;
    for (const auto& [n, account] : accounts_) {
      if (account.level == AccessLevel::kAdministrator) ++admins;
    }
    if (admins <= 1) {
      return Status::FailedPrecondition(
          "cannot delete the last administrator account");
    }
  }
  accounts_.erase(it);
  return Status::OK();
}

Status UserDatabase::ModifyUser(const std::string& name,
                                const std::string& new_password,
                                AccessLevel new_level) {
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    return Status::NotFound("no such user: " + name);
  }
  if (it->second.level == AccessLevel::kAdministrator &&
      new_level != AccessLevel::kAdministrator) {
    size_t admins = 0;
    for (const auto& [n, account] : accounts_) {
      if (account.level == AccessLevel::kAdministrator) ++admins;
    }
    if (admins <= 1) {
      return Status::FailedPrecondition(
          "cannot demote the last administrator account");
    }
  }
  it->second.salt = next_salt_++;
  it->second.password_hash = HashPassword(new_password, it->second.salt);
  it->second.level = new_level;
  return Status::OK();
}

Result<AccessLevel> UserDatabase::Authenticate(
    const std::string& name, const std::string& password,
    AccessLevel claimed_level) const {
  auto it = accounts_.find(name);
  if (it == accounts_.end() ||
      it->second.password_hash != HashPassword(password, it->second.salt) ||
      it->second.level != claimed_level) {
    return Status::PermissionDenied(
        "login failed; please check your PASSWORD and TYPE");
  }
  return it->second.level;
}

bool UserDatabase::HasUser(const std::string& name) const {
  return accounts_.count(name) > 0;
}

Result<AccessLevel> UserDatabase::GetLevel(const std::string& name) const {
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    return Status::NotFound("no such user: " + name);
  }
  return it->second.level;
}

std::vector<std::string> UserDatabase::UserNames() const {
  std::vector<std::string> names;
  names.reserve(accounts_.size());
  for (const auto& [name, account] : accounts_) names.push_back(name);
  return names;
}

}  // namespace gea::workbench
