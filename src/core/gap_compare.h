#ifndef GEA_CORE_GAP_COMPARE_H_
#define GEA_CORE_GAP_COMPARE_H_

#include <string>

#include "common/result.h"
#include "core/gap.h"

namespace gea::core {

/// The GAP-comparison facility of Fig. 4.13: combine two single-column
/// GAP tables (each a diff(SUMYa, SUMYb) for its own tissue type) and run
/// one of thirteen canned queries over the combined table.

/// How the two GAP tables are combined ("Compare" radio buttons).
enum class GapCompareKind {
  kUnion = 0,
  kIntersect,
  kDifference,
};

const char* GapCompareKindName(GapCompareKind kind);

/// Combines `gap_a` and `gap_b` per `kind`. Union/intersect produce a
/// two-column table (columns "GapA", "GapB"); difference produces a's
/// single column. Requires both inputs to be single-column.
Result<GapTable> CompareGaps(const GapTable& gap_a, const GapTable& gap_b,
                             GapCompareKind kind,
                             const std::string& out_name);

/// The thirteen queries of Section 4.3.3. In a GAP = diff(SUMYa, SUMYb),
/// a positive gap means the tag is expressed higher in SUMYa and a
/// negative gap higher in SUMYb. "Not" conditions mean the stated
/// condition fails in the other GAP table (null or opposite sign).
/// Queries 1–5 apply to all three comparison kinds; queries 6–13 only to
/// union and intersection (a difference output has no GapB column).
enum class GapCompareQuery {
  kHigherInAInBoth = 1,   // 1: gapA > 0 and gapB > 0
  kLowerInAInBoth,        // 2: gapA < 0 and gapB < 0
  kHigherInBInBoth,       // 3: higher in SUMYb in both = lower in SUMYa
  kLowerInBInBoth,        // 4: lower in SUMYb in both = higher in SUMYa
  kNonNullInBoth,         // 5: both gaps non-null
  kHigherInAOfAOnly,      // 6: gapA > 0, not (gapB > 0)
  kLowerInAOfAOnly,       // 7: gapA < 0, not (gapB < 0)
  kHigherInBOfAOnly,      // 8: gapA < 0, not (gapB < 0)
  kLowerInBOfAOnly,       // 9: gapA > 0, not (gapB > 0)
  kHigherInAOfBOnly,      // 10: gapB > 0, not (gapA > 0)
  kLowerInAOfBOnly,       // 11: gapB < 0, not (gapA < 0)
  kHigherInBOfBOnly,      // 12: gapB < 0, not (gapA < 0)
  kLowerInBOfBOnly,       // 13: gapB > 0, not (gapA > 0)
};

const char* GapCompareQueryDescription(GapCompareQuery query);

/// Applies `query` to a compared table. On a two-column table (union /
/// intersect output) all thirteen queries apply. On a single-column table
/// (difference output) only queries 1-5 apply — evaluated on the lone
/// GapA column, which is how Fig. 4.14 runs query 2 over a difference —
/// and queries 6-13 fail with FailedPrecondition (the thesis's
/// restriction).
Result<GapTable> ApplyGapQuery(const GapTable& compared,
                               GapCompareQuery query,
                               const std::string& out_name);

}  // namespace gea::core

#endif  // GEA_CORE_GAP_COMPARE_H_
