#ifndef GEA_CORE_SUMY_OPS_H_
#define GEA_CORE_SUMY_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/sumy.h"
#include "interval/interval.h"

namespace gea::core {

/// Intensional-world operations on SUMY tables (Sections 3.2.3 and 4.4.1).

/// Selection over SUMY rows with an arbitrary predicate.
Result<SumyTable> SelectSumy(const SumyTable& input,
                             const std::function<bool(const SumyEntry&)>& pred,
                             const std::string& out_name);

/// Range selection via Allen's algebra: keeps the tags whose [min, max]
/// range stands in `relation` to `query` (the Fig. 4.17 "determine all
/// tags whose ranges overlap [5, 700]" operation).
Result<SumyTable> SelectSumyByRange(const SumyTable& input,
                                    interval::AllenRelation relation,
                                    const interval::Interval& query,
                                    const std::string& out_name);

/// Set operations at the level of tags (Section 3.2.3). For tags present
/// in both operands the first operand's aggregates win (the intent is tag
/// manipulation; re-aggregate from an ENUM table for fresh statistics).
Result<SumyTable> SumyMinus(const SumyTable& a, const SumyTable& b,
                            const std::string& out_name);
Result<SumyTable> SumyIntersect(const SumyTable& a, const SumyTable& b,
                                const std::string& out_name);
Result<SumyTable> SumyUnion(const SumyTable& a, const SumyTable& b,
                            const std::string& out_name);

/// One line of the Fig. 4.16 range-arithmetic report for a (tag, SUMY
/// table) pair.
struct RangeSearchHit {
  sage::TagId tag = 0;
  std::string table_name;
  enum class Outcome {
    kNotExist,   // "NE": the tag is absent from the SUMY table
    kNoMatch,    // "NO": present, but the relation does not hold
    kMatch,      // the relation holds; `range` carries [min, max]
  };
  Outcome outcome = Outcome::kNotExist;
  interval::Interval range{0.0, 0.0};

  /// "NE", "NO", or "[lo, hi]".
  std::string Render() const;
};

/// The multi-table range search of Section 4.4.1: for each tag in
/// [first_tag, last_tag] and each SUMY table, reports NE / NO / the range
/// (Fig. 4.16). Pass first_tag == last_tag for a single-tag search.
std::vector<RangeSearchHit> RangeSearch(
    const std::vector<const SumyTable*>& tables, sage::TagId first_tag,
    sage::TagId last_tag, interval::AllenRelation relation,
    const interval::Interval& query);

/// The "Any" mode of Fig. 4.17: every tag of `table` whose range stands
/// in `relation` to `query`, as match hits only.
std::vector<RangeSearchHit> RangeSearchAny(const SumyTable& table,
                                           interval::AllenRelation relation,
                                           const interval::Interval& query);

}  // namespace gea::core

#endif  // GEA_CORE_SUMY_OPS_H_
