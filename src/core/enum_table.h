#ifndef GEA_CORE_ENUM_TABLE_H_
#define GEA_CORE_ENUM_TABLE_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "sage/dataset.h"
#include "sage/matrix.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// A cluster in the **extensional world** (Section 3.1.1): an explicit
/// enumeration of libraries, one row per library, one column per tag
/// (Fig. 3.2). The original SAGE data set is itself stored as a
/// "degenerate" ENUM table.
///
/// Rows carry the library's auxiliary attributes (tissue type, neoplastic
/// state, source) so purity checks and control-group selections work
/// without a side lookup.
class EnumTable {
 public:
  /// Builds an ENUM table over all tags of `dataset`.
  static EnumTable FromDataSet(std::string name,
                               const sage::SageDataSet& dataset);

  /// Builds an ENUM table restricted to `tags` (sorted ascending).
  static EnumTable FromDataSet(std::string name,
                               const sage::SageDataSet& dataset,
                               std::vector<sage::TagId> tags);

  /// Builds an ENUM table from raw parts. `tags` must be sorted
  /// ascending; `values` must be libraries.size() * tags.size() entries,
  /// row-major by library.
  static Result<EnumTable> FromRows(std::string name,
                                    std::vector<sage::LibraryMeta> libraries,
                                    std::vector<sage::TagId> tags,
                                    std::vector<double> values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumLibraries() const { return libraries_.size(); }
  size_t NumTags() const { return tags_.size(); }

  const sage::LibraryMeta& library(size_t row) const {
    return libraries_[row];
  }
  const std::vector<sage::LibraryMeta>& libraries() const {
    return libraries_;
  }
  sage::TagId tag(size_t col) const { return tags_[col]; }
  const std::vector<sage::TagId>& tags() const { return tags_; }

  /// Expression level of library `row` at tag column `col`.
  double ValueAt(size_t row, size_t col) const {
    return values_[row * tags_.size() + col];
  }

  /// Contiguous view of one library's values across the tag columns —
  /// exactly the row layout FascicleMiner consumes.
  std::span<const double> LibraryRow(size_t row) const {
    return {values_.data() + row * tags_.size(), tags_.size()};
  }

  /// Flat row-major (libraries x tags) buffer.
  const std::vector<double>& values() const { return values_; }

  /// Column index of `tag`, or nullopt.
  std::optional<size_t> FindTagColumn(sage::TagId tag) const;

  /// Row index of library `id`, or nullopt.
  std::optional<size_t> FindLibraryRow(int library_id) const;

  /// --- Extensional-world manipulations (Section 3.2.4) ---

  /// Libraries satisfying `pred` (relational selection on the auxiliary
  /// attributes, e.g. sigma_{tissuestatus='cancerous'}).
  EnumTable FilterLibraries(
      const std::string& out_name,
      const std::function<bool(const sage::LibraryMeta&)>& pred) const;

  /// Libraries of this table that are NOT in `other` (set minus on
  /// library ids; tag columns are kept as-is). Used to build the control
  /// groups of Section 4.3.1 step 4.
  EnumTable MinusLibraries(const std::string& out_name,
                           const EnumTable& other) const;

  /// The same libraries restricted to `tags` (sorted ascending, no
  /// duplicates). Tags absent from this table become all-zero columns,
  /// per the absent-tag convention of Section 4.2.
  Result<EnumTable> RestrictTags(const std::string& out_name,
                                 std::vector<sage::TagId> tags) const;

  /// Libraries whose ids appear in `ids`, in this table's order.
  EnumTable SelectLibraries(const std::string& out_name,
                            const std::vector<int>& ids) const;

  /// Renders as a relational table in the rotated physical layout of
  /// Section 4.6.1 (TagName, TagNo, one column per library).
  rel::Table ToRelTable() const;

 private:
  EnumTable(std::string name, std::vector<sage::LibraryMeta> libraries,
            std::vector<sage::TagId> tags, std::vector<double> values)
      : name_(std::move(name)),
        libraries_(std::move(libraries)),
        tags_(std::move(tags)),
        values_(std::move(values)) {}

  std::string name_;
  std::vector<sage::LibraryMeta> libraries_;
  std::vector<sage::TagId> tags_;  // sorted ascending
  std::vector<double> values_;     // libraries x tags, row-major
};

}  // namespace gea::core

#endif  // GEA_CORE_ENUM_TABLE_H_
