#include "core/operators.h"

#include <cmath>

#include "common/thread_pool.h"
#include "core/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

Result<SumyTable> Aggregate(const EnumTable& input,
                            const std::string& out_name) {
  if (input.NumLibraries() == 0) {
    return Status::InvalidArgument(
        "cannot aggregate an ENUM table with no libraries: " + input.name());
  }
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.aggregate.calls");
  static obs::Counter& tags_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.aggregate.tags_scanned");
  static obs::Counter& cells_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.aggregate.cells_scanned");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("gea.aggregate.nanos");
  obs::TraceSpan span("aggregate");
  obs::ScopedLatency timer(latency);
  calls.Add();
  tags_scanned.Add(input.NumTags());
  cells_scanned.Add(static_cast<uint64_t>(input.NumTags()) *
                    input.NumLibraries());
  static obs::Counter& tag_lookups =
      obs::MetricsRegistry::Global().GetCounter("gea.core.tag_lookups");
  // Tags are independent, so the pass is partitioned per tag column; each
  // chunk fills a disjoint slice of `entries` via the striped batch kernel
  // (kernels.cc), and the serial and parallel paths execute the identical
  // per-column arithmetic (bit-identical results at any thread count).
  std::vector<SumyEntry> entries(input.NumTags());
  const size_t num_rows = input.NumLibraries();
  const size_t num_tags = input.NumTags();
  const double n = static_cast<double>(num_rows);
  const double* values = input.values().data();
  const sage::TagId* tags = input.tags().data();
  // Grain 4096: below ~8 chunks' worth of columns the scan is so cheap
  // that the queue handoff dominates, so small tables run inline.
  ParallelFor(0, num_tags, 4096, [&](size_t col_begin, size_t col_end) {
    // Tag ids resolve once per column batch, not per cell.
    tag_lookups.Add(col_end - col_begin);
    AggregateColumns(values, num_rows, num_tags, col_begin, col_end, n, tags,
                     entries.data());
  });
  // The kernel emits entries in EnumTable tag order (strictly ascending)
  // with min <= max by construction, so the checked Create() scans are
  // pure overhead here.
  return SumyTable::FromSortedEntries(out_name, std::move(entries));
}

const char* PurityPropertyName(PurityProperty property) {
  switch (property) {
    case PurityProperty::kCancer:
      return "cancer";
    case PurityProperty::kNormal:
      return "normal";
    case PurityProperty::kBulkTissue:
      return "bulk_tissue";
    case PurityProperty::kCellLine:
      return "cell_line";
  }
  return "?";
}

namespace {

bool HasProperty(const sage::LibraryMeta& lib, PurityProperty property) {
  switch (property) {
    case PurityProperty::kCancer:
      return lib.state == sage::NeoplasticState::kCancer;
    case PurityProperty::kNormal:
      return lib.state == sage::NeoplasticState::kNormal;
    case PurityProperty::kBulkTissue:
      return lib.source == sage::TissueSource::kBulkTissue;
    case PurityProperty::kCellLine:
      return lib.source == sage::TissueSource::kCellLine;
  }
  return false;
}

}  // namespace

bool IsPure(const EnumTable& cluster, PurityProperty property) {
  if (cluster.NumLibraries() == 0) return false;
  for (const sage::LibraryMeta& lib : cluster.libraries()) {
    if (!HasProperty(lib, property)) return false;
  }
  return true;
}

std::vector<PurityProperty> PureProperties(const EnumTable& cluster) {
  std::vector<PurityProperty> out;
  for (PurityProperty p :
       {PurityProperty::kCancer, PurityProperty::kNormal,
        PurityProperty::kBulkTissue, PurityProperty::kCellLine}) {
    if (IsPure(cluster, p)) out.push_back(p);
  }
  return out;
}

Result<std::vector<MinedFascicle>> Mine(const EnumTable& input,
                                        const cluster::FascicleParams& params,
                                        const std::string& out_prefix) {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.mine.calls");
  static obs::Counter& mined =
      obs::MetricsRegistry::Global().GetCounter("gea.mine.fascicles_mined");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("gea.mine.nanos");
  obs::TraceSpan span("mine");
  obs::ScopedLatency timer(latency);
  calls.Add();
  cluster::FascicleMiner miner(input.values().data(), input.NumLibraries(),
                               input.NumTags());
  GEA_ASSIGN_OR_RETURN(std::vector<cluster::Fascicle> fascicles,
                       miner.Mine(params));
  mined.Add(fascicles.size());
  std::vector<MinedFascicle> out;
  out.reserve(fascicles.size());
  for (size_t f = 0; f < fascicles.size(); ++f) {
    cluster::Fascicle& fascicle = fascicles[f];
    const std::string name =
        out_prefix + "_" + std::to_string(f + 1);

    // Member ENUM over the compact tags.
    std::vector<int> member_ids;
    member_ids.reserve(fascicle.members.size());
    for (size_t row : fascicle.members) {
      member_ids.push_back(input.library(row).id);
    }
    std::vector<sage::TagId> compact_tags;
    compact_tags.reserve(fascicle.compact_columns.size());
    for (size_t col : fascicle.compact_columns) {
      compact_tags.push_back(input.tag(col));
    }
    GEA_ASSIGN_OR_RETURN(
        EnumTable full_members,
        input.SelectLibraries(name + "_members_full", member_ids)
            .RestrictTags(name + "_ENUM", compact_tags));

    // SUMY over the members (the thesis's macro operation, Section 4.1).
    GEA_ASSIGN_OR_RETURN(SumyTable sumy,
                         Aggregate(full_members, name + "_SUMY"));

    out.emplace_back(std::move(fascicle), std::move(sumy),
                     std::move(full_members));
  }
  return out;
}

std::vector<double> MakeToleranceMetadata(const EnumTable& input,
                                          double percent) {
  return cluster::TolerancesFromWidthPercent(
      input.values().data(), input.NumLibraries(), input.NumTags(), percent);
}

}  // namespace gea::core
