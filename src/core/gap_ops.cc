#include "core/gap_ops.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

namespace {

/// Columnar gather: the rows of `input` whose index is in `rows` (which
/// must be ascending so tag order is preserved), as a new table.
GapTable GatherRows(const GapTable& input, const std::vector<size_t>& rows,
                    const std::string& out_name) {
  std::vector<sage::TagId> tags;
  tags.reserve(rows.size());
  for (size_t i : rows) tags.push_back(input.tag(i));
  std::vector<std::vector<double>> values(input.NumColumns());
  std::vector<std::vector<uint8_t>> valid(input.NumColumns());
  for (size_t c = 0; c < input.NumColumns(); ++c) {
    const std::vector<double>& in_values = input.column_values(c);
    const std::vector<uint8_t>& in_valid = input.column_valid(c);
    values[c].reserve(rows.size());
    valid[c].reserve(rows.size());
    for (size_t i : rows) {
      values[c].push_back(in_values[i]);
      valid[c].push_back(in_valid[i]);
    }
  }
  return GapTable::FromColumns(out_name, input.gap_columns(), std::move(tags),
                               std::move(values), std::move(valid));
}

/// Shared select plumbing: keep[i] != 0 keeps row i.
GapTable SelectByMask(const GapTable& input, const std::vector<char>& keep,
                      const std::string& out_name) {
  static obs::Counter& tags_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.select.tags_scanned");
  static obs::Counter& rows_kept =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.select.rows_kept");
  tags_scanned.Add(input.NumTags());
  std::vector<size_t> rows;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) rows.push_back(i);
  }
  rows_kept.Add(rows.size());
  return GatherRows(input, rows, out_name);
}

}  // namespace

Result<GapTable> SelectGap(const GapTable& input,
                           const std::function<bool(const GapEntry&)>& pred,
                           const std::string& out_name) {
  obs::TraceSpan span("gap.select");
  // Evaluate the predicate per tag in parallel (the gap-compare queries
  // run it over every row of a p-tag table), then gather the survivors
  // in tag order. `pred` must be pure — all built-in predicates are.
  std::vector<char> keep(input.NumTags(), 0);
  ParallelFor(0, input.NumTags(), 1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      keep[i] = pred(input.entry(i)) ? 1 : 0;
    }
  });
  return SelectByMask(input, keep, out_name);
}

namespace {

/// Fast path for the sign/null selects: a branch over the first value
/// and validity columns directly, with no per-row GapEntry.
enum class FirstColumnFilter { kNonNull, kPositive, kNegative };

Result<GapTable> SelectFirstColumn(const GapTable& input,
                                   FirstColumnFilter filter,
                                   const std::string& out_name) {
  obs::TraceSpan span("gap.select");
  const std::vector<double>& values = input.column_values(0);
  const std::vector<uint8_t>& valid = input.column_valid(0);
  std::vector<char> keep(input.NumTags(), 0);
  ParallelFor(0, input.NumTags(), 4096, [&](size_t begin, size_t end) {
    switch (filter) {
      case FirstColumnFilter::kNonNull:
        for (size_t i = begin; i < end; ++i) keep[i] = valid[i] ? 1 : 0;
        break;
      case FirstColumnFilter::kPositive:
        for (size_t i = begin; i < end; ++i) {
          keep[i] = (valid[i] && values[i] > 0) ? 1 : 0;
        }
        break;
      case FirstColumnFilter::kNegative:
        for (size_t i = begin; i < end; ++i) {
          keep[i] = (valid[i] && values[i] < 0) ? 1 : 0;
        }
        break;
    }
  });
  return SelectByMask(input, keep, out_name);
}

}  // namespace

Result<GapTable> SelectNonNullGaps(const GapTable& input,
                                   const std::string& out_name) {
  return SelectFirstColumn(input, FirstColumnFilter::kNonNull, out_name);
}

Result<GapTable> SelectPositiveGaps(const GapTable& input,
                                    const std::string& out_name) {
  return SelectFirstColumn(input, FirstColumnFilter::kPositive, out_name);
}

Result<GapTable> SelectNegativeGaps(const GapTable& input,
                                    const std::string& out_name) {
  return SelectFirstColumn(input, FirstColumnFilter::kNegative, out_name);
}

Result<GapTable> ProjectGap(const GapTable& input,
                            const std::vector<std::string>& gap_columns,
                            const std::string& out_name) {
  std::vector<size_t> indices;
  for (const std::string& name : gap_columns) {
    auto it = std::find(input.gap_columns().begin(),
                        input.gap_columns().end(), name);
    if (it == input.gap_columns().end()) {
      return Status::NotFound("no such gap column: " + name);
    }
    indices.push_back(
        static_cast<size_t>(it - input.gap_columns().begin()));
  }
  // Column projection is a whole-column copy in the columnar layout.
  std::vector<std::vector<double>> values;
  std::vector<std::vector<uint8_t>> valid;
  for (size_t idx : indices) {
    values.push_back(input.column_values(idx));
    valid.push_back(input.column_valid(idx));
  }
  return GapTable::FromColumns(out_name, gap_columns, input.tags(),
                               std::move(values), std::move(valid));
}

Result<GapTable> GapMinus(const GapTable& a, const GapTable& b,
                          const std::string& out_name) {
  // Merge walk over the two ascending tag vectors instead of a binary
  // search per row.
  const std::vector<sage::TagId>& ta = a.tags();
  const std::vector<sage::TagId>& tb = b.tags();
  std::vector<size_t> rows;
  size_t j = 0;
  for (size_t i = 0; i < ta.size(); ++i) {
    while (j < tb.size() && tb[j] < ta[i]) ++j;
    if (j >= tb.size() || tb[j] != ta[i]) rows.push_back(i);
  }
  return GatherRows(a, rows, out_name);
}

namespace {

/// Output columns for intersect/union: a's columns then b's, with "_1"/
/// "_2" suffixes on name clashes (so intersecting two fresh diff outputs
/// yields "Gap_1", "Gap_2" like Fig. 3.6d's Gap1/Gap2).
std::vector<std::string> CombineColumns(const GapTable& a,
                                        const GapTable& b) {
  std::vector<std::string> columns;
  for (const std::string& col : a.gap_columns()) {
    bool clash = std::find(b.gap_columns().begin(), b.gap_columns().end(),
                           col) != b.gap_columns().end();
    columns.push_back(clash ? col + "_1" : col);
  }
  for (const std::string& col : b.gap_columns()) {
    bool clash = std::find(a.gap_columns().begin(), a.gap_columns().end(),
                           col) != a.gap_columns().end();
    columns.push_back(clash ? col + "_2" : col);
  }
  return columns;
}

/// Appends row `row` of every column of `from` to the output columns
/// starting at `first_out_col`; `row == nullopt` appends nulls instead.
void AppendSide(const GapTable& from, std::optional<size_t> row,
                size_t first_out_col, std::vector<std::vector<double>>& values,
                std::vector<std::vector<uint8_t>>& valid) {
  for (size_t c = 0; c < from.NumColumns(); ++c) {
    if (row.has_value()) {
      values[first_out_col + c].push_back(from.column_values(c)[*row]);
      valid[first_out_col + c].push_back(from.column_valid(c)[*row]);
    } else {
      values[first_out_col + c].push_back(0.0);
      valid[first_out_col + c].push_back(0);
    }
  }
}

}  // namespace

Result<GapTable> GapIntersect(const GapTable& a, const GapTable& b,
                              const std::string& out_name) {
  const size_t out_cols = a.NumColumns() + b.NumColumns();
  std::vector<sage::TagId> tags;
  std::vector<std::vector<double>> values(out_cols);
  std::vector<std::vector<uint8_t>> valid(out_cols);
  size_t i = 0;
  size_t j = 0;
  while (i < a.NumTags() && j < b.NumTags()) {
    if (a.tag(i) < b.tag(j)) {
      ++i;
    } else if (b.tag(j) < a.tag(i)) {
      ++j;
    } else {
      tags.push_back(a.tag(i));
      AppendSide(a, i, 0, values, valid);
      AppendSide(b, j, a.NumColumns(), values, valid);
      ++i;
      ++j;
    }
  }
  return GapTable::FromColumns(out_name, CombineColumns(a, b),
                               std::move(tags), std::move(values),
                               std::move(valid));
}

Result<GapTable> GapUnion(const GapTable& a, const GapTable& b,
                          const std::string& out_name) {
  const size_t out_cols = a.NumColumns() + b.NumColumns();
  std::vector<sage::TagId> tags;
  std::vector<std::vector<double>> values(out_cols);
  std::vector<std::vector<uint8_t>> valid(out_cols);
  size_t i = 0;
  size_t j = 0;
  while (i < a.NumTags() || j < b.NumTags()) {
    const bool take_a =
        j >= b.NumTags() || (i < a.NumTags() && a.tag(i) <= b.tag(j));
    const bool take_b =
        i >= a.NumTags() || (j < b.NumTags() && b.tag(j) <= a.tag(i));
    tags.push_back(take_a ? a.tag(i) : b.tag(j));
    AppendSide(a, take_a ? std::optional<size_t>(i) : std::nullopt, 0, values,
               valid);
    AppendSide(b, take_b ? std::optional<size_t>(j) : std::nullopt,
               a.NumColumns(), values, valid);
    if (take_a) ++i;
    if (take_b) ++j;
  }
  return GapTable::FromColumns(out_name, CombineColumns(a, b),
                               std::move(tags), std::move(values),
                               std::move(valid));
}

const char* TopGapModeName(TopGapMode mode) {
  switch (mode) {
    case TopGapMode::kLargestMagnitude:
      return "largest_magnitude";
    case TopGapMode::kHighest:
      return "highest";
    case TopGapMode::kLowest:
      return "lowest";
  }
  return "?";
}

Result<GapTable> TopGap(const GapTable& input, size_t x, TopGapMode mode,
                        const std::string& out_name) {
  if (x == 0) {
    return Status::InvalidArgument("top-x requires x >= 1");
  }
  static obs::Counter& tags_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.top.tags_scanned");
  obs::TraceSpan span("top_gap");
  tags_scanned.Add(input.NumTags());
  const std::vector<double>& gaps = input.column_values(0);
  const std::vector<uint8_t>& valid = input.column_valid(0);
  // Rank row indices instead of materialized rows: the sort moves 8-byte
  // indices and reads the key straight from the value column.
  std::vector<size_t> ranked;
  ranked.reserve(input.NumTags());
  for (size_t i = 0; i < input.NumTags(); ++i) {
    if (valid[i]) ranked.push_back(i);
  }
  auto key = [&gaps, mode](size_t i) {
    switch (mode) {
      case TopGapMode::kLargestMagnitude:
        return std::abs(gaps[i]);
      case TopGapMode::kHighest:
        return gaps[i];
      case TopGapMode::kLowest:
        return -gaps[i];
    }
    return gaps[i];
  };
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](size_t a, size_t b) { return key(a) > key(b); });
  if (ranked.size() > x) ranked.resize(x);
  // The table stores rows in tag order; the gather below requires
  // ascending indices, which is exactly that order.
  std::sort(ranked.begin(), ranked.end());
  return GatherRows(input, ranked, out_name);
}

std::vector<std::string> RenderGapList(const GapTable& table,
                                       size_t max_entries) {
  // GapTable stores entries sorted by tag, so re-rank by first column
  // magnitude for a display that matches the thesis windows.
  const std::vector<double>& gaps = table.column_values(0);
  const std::vector<uint8_t>& valid = table.column_valid(0);
  std::vector<size_t> ordered;
  ordered.reserve(table.NumTags());
  for (size_t i = 0; i < table.NumTags(); ++i) ordered.push_back(i);
  std::stable_sort(ordered.begin(), ordered.end(), [&](size_t a, size_t b) {
    double ka = valid[a] ? std::abs(gaps[a]) : -1.0;
    double kb = valid[b] ? std::abs(gaps[b]) : -1.0;
    return ka > kb;
  });
  std::vector<std::string> out;
  for (size_t i : ordered) {
    if (out.size() >= max_entries) break;
    std::string line = sage::TagLabel(table.tag(i));
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      line += "_";
      std::optional<double> g = table.GapAt(i, c);
      line += g.has_value() ? FormatDouble(*g, 2) : "NULL";
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace gea::core
