#include "core/gap_ops.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

Result<GapTable> SelectGap(const GapTable& input,
                           const std::function<bool(const GapEntry&)>& pred,
                           const std::string& out_name) {
  static obs::Counter& tags_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.select.tags_scanned");
  static obs::Counter& rows_kept =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.select.rows_kept");
  obs::TraceSpan span("gap.select");
  tags_scanned.Add(input.NumTags());
  // Evaluate the predicate per tag in parallel (the gap-compare queries
  // run it over every row of a p-tag table), then collect the survivors
  // serially in tag order. `pred` must be pure — all built-in predicates
  // are.
  std::vector<char> keep(input.NumTags(), 0);
  ParallelFor(0, input.NumTags(), 1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      keep[i] = pred(input.entry(i)) ? 1 : 0;
    }
  });
  std::vector<GapEntry> entries;
  for (size_t i = 0; i < input.NumTags(); ++i) {
    if (keep[i]) entries.push_back(input.entry(i));
  }
  rows_kept.Add(entries.size());
  return GapTable::Create(out_name, input.gap_columns(), std::move(entries));
}

Result<GapTable> SelectNonNullGaps(const GapTable& input,
                                   const std::string& out_name) {
  return SelectGap(
      input, [](const GapEntry& e) { return e.gaps[0].has_value(); },
      out_name);
}

Result<GapTable> SelectPositiveGaps(const GapTable& input,
                                    const std::string& out_name) {
  return SelectGap(
      input,
      [](const GapEntry& e) { return e.gaps[0].has_value() && *e.gaps[0] > 0; },
      out_name);
}

Result<GapTable> SelectNegativeGaps(const GapTable& input,
                                    const std::string& out_name) {
  return SelectGap(
      input,
      [](const GapEntry& e) { return e.gaps[0].has_value() && *e.gaps[0] < 0; },
      out_name);
}

Result<GapTable> ProjectGap(const GapTable& input,
                            const std::vector<std::string>& gap_columns,
                            const std::string& out_name) {
  std::vector<size_t> indices;
  for (const std::string& name : gap_columns) {
    auto it = std::find(input.gap_columns().begin(),
                        input.gap_columns().end(), name);
    if (it == input.gap_columns().end()) {
      return Status::NotFound("no such gap column: " + name);
    }
    indices.push_back(
        static_cast<size_t>(it - input.gap_columns().begin()));
  }
  std::vector<GapEntry> entries;
  entries.reserve(input.NumTags());
  for (const GapEntry& e : input.entries()) {
    GapEntry projected;
    projected.tag = e.tag;
    for (size_t idx : indices) projected.gaps.push_back(e.gaps[idx]);
    entries.push_back(std::move(projected));
  }
  return GapTable::Create(out_name, gap_columns, std::move(entries));
}

Result<GapTable> GapMinus(const GapTable& a, const GapTable& b,
                          const std::string& out_name) {
  std::vector<GapEntry> entries;
  for (const GapEntry& e : a.entries()) {
    if (!b.Find(e.tag).has_value()) entries.push_back(e);
  }
  return GapTable::Create(out_name, a.gap_columns(), std::move(entries));
}

namespace {

/// Output columns for intersect/union: a's columns then b's, with "_1"/
/// "_2" suffixes on name clashes (so intersecting two fresh diff outputs
/// yields "Gap_1", "Gap_2" like Fig. 3.6d's Gap1/Gap2).
std::vector<std::string> CombineColumns(const GapTable& a,
                                        const GapTable& b) {
  std::vector<std::string> columns;
  for (const std::string& col : a.gap_columns()) {
    bool clash = std::find(b.gap_columns().begin(), b.gap_columns().end(),
                           col) != b.gap_columns().end();
    columns.push_back(clash ? col + "_1" : col);
  }
  for (const std::string& col : b.gap_columns()) {
    bool clash = std::find(a.gap_columns().begin(), a.gap_columns().end(),
                           col) != a.gap_columns().end();
    columns.push_back(clash ? col + "_2" : col);
  }
  return columns;
}

}  // namespace

Result<GapTable> GapIntersect(const GapTable& a, const GapTable& b,
                              const std::string& out_name) {
  std::vector<GapEntry> entries;
  for (const GapEntry& ea : a.entries()) {
    std::optional<GapEntry> eb = b.Find(ea.tag);
    if (!eb.has_value()) continue;
    GapEntry merged;
    merged.tag = ea.tag;
    merged.gaps = ea.gaps;
    merged.gaps.insert(merged.gaps.end(), eb->gaps.begin(), eb->gaps.end());
    entries.push_back(std::move(merged));
  }
  return GapTable::Create(out_name, CombineColumns(a, b),
                          std::move(entries));
}

Result<GapTable> GapUnion(const GapTable& a, const GapTable& b,
                          const std::string& out_name) {
  std::vector<GapEntry> entries;
  for (const GapEntry& ea : a.entries()) {
    GapEntry merged;
    merged.tag = ea.tag;
    merged.gaps = ea.gaps;
    std::optional<GapEntry> eb = b.Find(ea.tag);
    if (eb.has_value()) {
      merged.gaps.insert(merged.gaps.end(), eb->gaps.begin(),
                         eb->gaps.end());
    } else {
      merged.gaps.resize(merged.gaps.size() + b.NumColumns(), std::nullopt);
    }
    entries.push_back(std::move(merged));
  }
  for (const GapEntry& eb : b.entries()) {
    if (a.Find(eb.tag).has_value()) continue;
    GapEntry merged;
    merged.tag = eb.tag;
    merged.gaps.resize(a.NumColumns(), std::nullopt);
    merged.gaps.insert(merged.gaps.end(), eb.gaps.begin(), eb.gaps.end());
    entries.push_back(std::move(merged));
  }
  return GapTable::Create(out_name, CombineColumns(a, b),
                          std::move(entries));
}

const char* TopGapModeName(TopGapMode mode) {
  switch (mode) {
    case TopGapMode::kLargestMagnitude:
      return "largest_magnitude";
    case TopGapMode::kHighest:
      return "highest";
    case TopGapMode::kLowest:
      return "lowest";
  }
  return "?";
}

Result<GapTable> TopGap(const GapTable& input, size_t x, TopGapMode mode,
                        const std::string& out_name) {
  if (x == 0) {
    return Status::InvalidArgument("top-x requires x >= 1");
  }
  static obs::Counter& tags_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.top.tags_scanned");
  obs::TraceSpan span("top_gap");
  tags_scanned.Add(input.NumTags());
  std::vector<GapEntry> non_null;
  for (const GapEntry& e : input.entries()) {
    if (e.gaps[0].has_value()) non_null.push_back(e);
  }
  auto key = [mode](const GapEntry& e) {
    double g = *e.gaps[0];
    switch (mode) {
      case TopGapMode::kLargestMagnitude:
        return std::abs(g);
      case TopGapMode::kHighest:
        return g;
      case TopGapMode::kLowest:
        return -g;
    }
    return g;
  };
  std::stable_sort(non_null.begin(), non_null.end(),
                   [&](const GapEntry& a, const GapEntry& b) {
                     return key(a) > key(b);
                   });
  if (non_null.size() > x) non_null.resize(x);
  return GapTable::Create(out_name, input.gap_columns(),
                          std::move(non_null));
}

std::vector<std::string> RenderGapList(const GapTable& table,
                                       size_t max_entries) {
  // Preserve the table's own order when it is a top-gap table; GapTable
  // stores entries sorted by tag, so re-rank by first column magnitude
  // for a display that matches the thesis windows.
  std::vector<const GapEntry*> ordered;
  ordered.reserve(table.NumTags());
  for (const GapEntry& e : table.entries()) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const GapEntry* a, const GapEntry* b) {
                     double ka = a->gaps[0].has_value()
                                     ? std::abs(*a->gaps[0])
                                     : -1.0;
                     double kb = b->gaps[0].has_value()
                                     ? std::abs(*b->gaps[0])
                                     : -1.0;
                     return ka > kb;
                   });
  std::vector<std::string> out;
  for (const GapEntry* e : ordered) {
    if (out.size() >= max_entries) break;
    std::string line = sage::TagLabel(e->tag);
    for (const std::optional<double>& g : e->gaps) {
      line += "_";
      line += g.has_value() ? FormatDouble(*g, 2) : "NULL";
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace gea::core
