#ifndef GEA_CORE_SERIALIZATION_H_
#define GEA_CORE_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/sumy.h"
#include "rel/table.h"

namespace gea::core {

/// Round-trips between the GEA structures and their relational renderings
/// (Appendix IV schemas), completing the persistence story: a SUMY / GAP /
/// ENUM table can be exported with ToRelTable(), stored as typed CSV via
/// rel::SaveTable, and rebuilt from disk with the readers below.

/// Inverse of SumyTable::ToRelTable(). Expects columns TagName:string,
/// TagNo:int, Min:double, Max:double, Average:double, StdDev:double.
Result<SumyTable> SumyFromRelTable(const rel::Table& table,
                                   const std::string& name);

/// Inverse of GapTable::ToRelTable(). Expects TagName:string, TagNo:int,
/// then one double column per gap column (any number >= 1); SQL NULLs
/// become null gaps.
Result<GapTable> GapFromRelTable(const rel::Table& table,
                                 const std::string& name);

/// Library-attribute side table for an ENUM export (same schema as
/// sage::BuildLibraryInfoTable, minus the aggregate columns):
///   Lib_ID:int, Lib_Name:string, Type:string, CAN_NOR:string,
///   BT_CL:string.
rel::Table EnumLibrariesToRelTable(const EnumTable& table,
                                   const std::string& out_name);

/// Inverse of EnumTable::ToRelTable() + EnumLibrariesToRelTable():
/// rebuilds the ENUM from the rotated data table (TagName, TagNo, one
/// double column per library) and the library-attribute table. Library
/// columns are matched by name.
Result<EnumTable> EnumFromRelTables(const rel::Table& data,
                                    const rel::Table& libraries,
                                    const std::string& name);

}  // namespace gea::core

#endif  // GEA_CORE_SERIALIZATION_H_
