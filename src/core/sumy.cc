#include "core/sumy.h"

#include <algorithm>

namespace gea::core {

Result<SumyTable> SumyTable::Create(std::string name,
                                    std::vector<SumyEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SumyEntry& a, const SumyEntry& b) {
              return a.tag < b.tag;
            });
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].min > entries[i].max) {
      return Status::InvalidArgument(
          "SUMY entry for " + sage::TagLabel(entries[i].tag) +
          " has min > max");
    }
    if (i > 0 && entries[i].tag == entries[i - 1].tag) {
      return Status::InvalidArgument("duplicate SUMY tag: " +
                                     sage::TagLabel(entries[i].tag));
    }
  }
  SumyTable table(std::move(name));
  table.entries_ = std::move(entries);
  return table;
}

std::optional<SumyEntry> SumyTable::Find(sage::TagId tag) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), tag,
      [](const SumyEntry& e, sage::TagId t) { return e.tag < t; });
  if (it == entries_.end() || it->tag != tag) return std::nullopt;
  return *it;
}

rel::Table SumyTable::ToRelTable() const {
  rel::Schema schema({{"TagName", rel::ValueType::kString},
                      {"TagNo", rel::ValueType::kInt},
                      {"Min", rel::ValueType::kDouble},
                      {"Max", rel::ValueType::kDouble},
                      {"Average", rel::ValueType::kDouble},
                      {"StdDev", rel::ValueType::kDouble}});
  rel::Table table(name_, schema);
  for (const SumyEntry& e : entries_) {
    table.AppendRowUnchecked({rel::Value::String(sage::DecodeTag(e.tag)),
                              rel::Value::Int(static_cast<int64_t>(e.tag)),
                              rel::Value::Double(e.min),
                              rel::Value::Double(e.max),
                              rel::Value::Double(e.mean),
                              rel::Value::Double(e.stddev)});
  }
  return table;
}

}  // namespace gea::core
