#include "core/sumy.h"

#include <algorithm>
#include <cassert>

#include "obs/resource.h"

namespace gea::core {

Result<SumyTable> SumyTable::Create(std::string name,
                                    std::vector<SumyEntry> entries) {
  // The hot producers (Aggregate, the codec) already emit tag order;
  // skip the sort for them and pay it only for genuinely unsorted input.
  const auto by_tag = [](const SumyEntry& a, const SumyEntry& b) {
    return a.tag < b.tag;
  };
  if (!std::is_sorted(entries.begin(), entries.end(), by_tag)) {
    std::sort(entries.begin(), entries.end(), by_tag);
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].min > entries[i].max) {
      return Status::InvalidArgument(
          "SUMY entry for " + sage::TagLabel(entries[i].tag) +
          " has min > max");
    }
    if (i > 0 && entries[i].tag == entries[i - 1].tag) {
      return Status::InvalidArgument("duplicate SUMY tag: " +
                                     sage::TagLabel(entries[i].tag));
    }
  }
  SumyTable table(std::move(name));
  table.entries_ = std::move(entries);
  obs::AccountAllocation(table.entries_.size() * sizeof(SumyEntry));
  return table;
}

SumyTable SumyTable::FromSortedEntries(std::string name,
                                       std::vector<SumyEntry> entries) {
#ifndef NDEBUG
  for (size_t i = 0; i < entries.size(); ++i) {
    assert(!(entries[i].min > entries[i].max));
    assert(i == 0 || entries[i - 1].tag < entries[i].tag);
  }
#endif
  SumyTable table(std::move(name));
  table.entries_ = std::move(entries);
  obs::AccountAllocation(table.entries_.size() * sizeof(SumyEntry));
  return table;
}

std::optional<SumyEntry> SumyTable::Find(sage::TagId tag) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), tag,
      [](const SumyEntry& e, sage::TagId t) { return e.tag < t; });
  if (it == entries_.end() || it->tag != tag) return std::nullopt;
  return *it;
}

rel::Table SumyTable::ToRelTable() const {
  rel::Schema schema({{"TagName", rel::ValueType::kString},
                      {"TagNo", rel::ValueType::kInt},
                      {"Min", rel::ValueType::kDouble},
                      {"Max", rel::ValueType::kDouble},
                      {"Average", rel::ValueType::kDouble},
                      {"StdDev", rel::ValueType::kDouble}});
  rel::Table table(name_, schema);
  for (const SumyEntry& e : entries_) {
    table.AppendRowUnchecked({rel::Value::String(sage::DecodeTag(e.tag)),
                              rel::Value::Int(static_cast<int64_t>(e.tag)),
                              rel::Value::Double(e.min),
                              rel::Value::Double(e.max),
                              rel::Value::Double(e.mean),
                              rel::Value::Double(e.stddev)});
  }
  return table;
}

}  // namespace gea::core
