#ifndef GEA_CORE_INDEX_ADVISOR_H_
#define GEA_CORE_INDEX_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/enum_table.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// The index-selection analysis of Section 3.3.2, which decides how many
/// indexes to build (m) and which tags to index (the top-m by entropy).

/// Probability that, of the `p` tags included in a SUMY table drawn
/// uniformly from `n` total tags, exactly `w` carry one of the `m`
/// indexes:
///
///   P(exactly w) = C(p, w) (m/n)^w (1 - m/n)^(p-w)
///
/// Computed in log space so p = 25,000 poses no overflow problem.
double ProbExactlyWIndexHits(int64_t n, int64_t p, int64_t m, int64_t w);

/// P(at least w hits) = 1 - sum_{i<w} P(exactly i).
double ProbAtLeastWIndexHits(int64_t n, int64_t p, int64_t m, int64_t w);

/// The smallest m guaranteeing P(at least `w` hits) >= `probability`
/// (the thesis fixes 0.999). With n = 60,000 and p = 25,000 this
/// reproduces Table 3.1: w = 1..10 -> m = 17, 23, 27, 32, 36, 40, 44, 48,
/// 51, 55.
Result<int64_t> RequiredIndexCount(int64_t n, int64_t p, int64_t w,
                                   double probability = 0.999);

/// Shannon entropy (bits) of one tag column of `table`, computed over a
/// `num_buckets`-bucket equal-width histogram of its values. Constant
/// columns have entropy 0.
double TagEntropy(const EnumTable& table, size_t column, int num_buckets = 16);

/// The heuristic of Section 3.3.2: the `m` tags with the highest entropy
/// ("highest variation"), ties broken by tag id for determinism. Returns
/// at most NumTags() entries.
std::vector<sage::TagId> TopEntropyTags(const EnumTable& table, size_t m,
                                        int num_buckets = 16);

}  // namespace gea::core

#endif  // GEA_CORE_INDEX_ADVISOR_H_
