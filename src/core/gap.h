#ifndef GEA_CORE_GAP_H_
#define GEA_CORE_GAP_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/sumy.h"
#include "rel/table.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// One row of a GAP table: a tag with one gap value per gap column. A gap
/// value is null when the two clusters' µ±σ bands overlap (Fig. 3.4).
struct GapEntry {
  sage::TagId tag = 0;
  std::vector<std::optional<double>> gaps;  // one per gap column
};

/// A GAP table (Fig. 3.3b): summarizes the per-tag difference between two
/// SUMY tables. Fresh diff() output has a single gap column; the
/// intersect/union comparison operators produce two (Fig. 3.6d).
class GapTable {
 public:
  GapTable() = default;

  /// Builds from entries; sorts by tag, rejects duplicates and rows whose
  /// gap count differs from the column count. Requires >= 1 column.
  static Result<GapTable> Create(std::string name,
                                 std::vector<std::string> gap_columns,
                                 std::vector<GapEntry> entries);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumColumns() const { return gap_columns_.size(); }
  const std::vector<std::string>& gap_columns() const { return gap_columns_; }

  size_t NumTags() const { return entries_.size(); }
  const GapEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<GapEntry>& entries() const { return entries_; }

  /// Entry for `tag`, or nullopt.
  std::optional<GapEntry> Find(sage::TagId tag) const;

  /// Gap value of `tag` in column `col` (nullopt if the tag is absent or
  /// the gap is null).
  std::optional<double> Gap(sage::TagId tag, size_t col = 0) const;

  /// Relational rendering: TagName, TagNo, then one double column per gap
  /// column (null gaps become SQL NULL) — the GapTable schema of
  /// Appendix IV (table 10).
  rel::Table ToRelTable() const;

 private:
  std::string name_;
  std::vector<std::string> gap_columns_;
  std::vector<GapEntry> entries_;  // sorted by tag
};

/// The diff() operator (Section 3.2.2): GAP = diff(SUMY1, SUMY2).
///
/// For each tag common to both SUMY tables, with `hi` the operand of
/// higher mean and `lo` the other:
///
///   gap magnitude = (µ_hi − σ_hi) − (µ_lo + σ_lo)
///
/// A non-positive magnitude means the µ±σ bands overlap and the gap is
/// null. Otherwise the gap carries the magnitude with a **positive** sign
/// when `sumy1` has the higher mean and **negative** when `sumy1` has the
/// lower mean (the worked Fig. 3.5 example: Tag1 → −1, Tag3 → null,
/// Tag4 → +2).
Result<GapTable> Diff(const SumyTable& sumy1, const SumyTable& sumy2,
                      const std::string& out_name,
                      const std::string& gap_column = "Gap");

}  // namespace gea::core

#endif  // GEA_CORE_GAP_H_
