#ifndef GEA_CORE_GAP_H_
#define GEA_CORE_GAP_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/sumy.h"
#include "rel/table.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// One row of a GAP table: a tag with one gap value per gap column. A gap
/// value is null when the two clusters' µ±σ bands overlap (Fig. 3.4).
///
/// This is the *row view* — GapTable stores columns (see below) and
/// materializes GapEntry values on demand for row-oriented callers.
struct GapEntry {
  sage::TagId tag = 0;
  std::vector<std::optional<double>> gaps;  // one per gap column
};

/// A GAP table (Fig. 3.3b): summarizes the per-tag difference between two
/// SUMY tables. Fresh diff() output has a single gap column; the
/// intersect/union comparison operators produce two (Fig. 3.6d).
///
/// Physical layout is columnar: one ascending tag vector plus, per gap
/// column, a contiguous double vector and a parallel validity vector
/// (1 = value present, 0 = null; null slots hold 0.0 so whole columns
/// compare deterministically). diff() writes these arrays directly from
/// its batch kernel; the GapEntry-based accessors below materialize rows
/// for tests and low-frequency callers.
class GapTable {
 public:
  GapTable() = default;

  /// Builds from row entries; sorts by tag, rejects duplicates and rows
  /// whose gap count differs from the column count. Requires >= 1 column.
  static Result<GapTable> Create(std::string name,
                                 std::vector<std::string> gap_columns,
                                 std::vector<GapEntry> entries);

  /// Trusted fast path for operators that already produce sorted,
  /// validated columns (diff(), the gap set operations): adopts the
  /// arrays without the per-row checks Create() performs. Tags must be
  /// strictly ascending and every column sized like `tags`; null slots
  /// must hold value 0.0 (debug-asserted).
  static GapTable FromColumns(std::string name,
                              std::vector<std::string> gap_columns,
                              std::vector<sage::TagId> tags,
                              std::vector<std::vector<double>> values,
                              std::vector<std::vector<uint8_t>> valid);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumColumns() const { return gap_columns_.size(); }
  const std::vector<std::string>& gap_columns() const { return gap_columns_; }

  size_t NumTags() const { return tags_.size(); }

  // ---- Columnar access (the operator hot paths) ----

  const std::vector<sage::TagId>& tags() const { return tags_; }
  sage::TagId tag(size_t i) const { return tags_[i]; }

  /// Raw value column (0.0 in null slots) and its validity column.
  const std::vector<double>& column_values(size_t col) const {
    return values_[col];
  }
  const std::vector<uint8_t>& column_valid(size_t col) const {
    return valid_[col];
  }

  /// Gap at row index `i`, column `col` (nullopt when the slot is null).
  std::optional<double> GapAt(size_t i, size_t col) const {
    if (!valid_[col][i]) return std::nullopt;
    return values_[col][i];
  }

  // ---- Row-view access (materializes; tests and display paths) ----

  /// Row `i` as a GapEntry value.
  GapEntry entry(size_t i) const;

  /// All rows as GapEntry values, in tag order.
  std::vector<GapEntry> entries() const;

  /// Entry for `tag`, or nullopt.
  std::optional<GapEntry> Find(sage::TagId tag) const;

  /// Row index of `tag`, or nullopt (binary search).
  std::optional<size_t> FindIndex(sage::TagId tag) const;

  /// Gap value of `tag` in column `col` (nullopt if the tag is absent or
  /// the gap is null).
  std::optional<double> Gap(sage::TagId tag, size_t col = 0) const;

  /// Same table with the gap columns renamed (arity must match).
  GapTable WithColumnNames(std::vector<std::string> gap_columns) const;

  /// Relational rendering: TagName, TagNo, then one double column per gap
  /// column (null gaps become SQL NULL) — the GapTable schema of
  /// Appendix IV (table 10).
  rel::Table ToRelTable() const;

 private:
  std::string name_;
  std::vector<std::string> gap_columns_;
  std::vector<sage::TagId> tags_;              // strictly ascending
  std::vector<std::vector<double>> values_;    // [column][row]
  std::vector<std::vector<uint8_t>> valid_;    // [column][row]
};

/// The diff() operator (Section 3.2.2): GAP = diff(SUMY1, SUMY2).
///
/// For each tag common to both SUMY tables, with `hi` the operand of
/// higher mean and `lo` the other:
///
///   gap magnitude = (µ_hi − σ_hi) − (µ_lo + σ_lo)
///
/// A non-positive magnitude means the µ±σ bands overlap and the gap is
/// null. Otherwise the gap carries the magnitude with a **positive** sign
/// when `sumy1` has the higher mean and **negative** when `sumy1` has the
/// lower mean (the worked Fig. 3.5 example: Tag1 → −1, Tag3 → null,
/// Tag4 → +2).
Result<GapTable> Diff(const SumyTable& sumy1, const SumyTable& sumy2,
                      const std::string& out_name,
                      const std::string& gap_column = "Gap");

}  // namespace gea::core

#endif  // GEA_CORE_GAP_H_
