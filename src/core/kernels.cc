#include "core/kernels.h"

#include <algorithm>
#include <cmath>

namespace gea::core {

namespace {

// Eight doubles wide, 8-byte aligned so Load() can sit on any column
// offset. GCC lowers the ops per clone (zmm under avx512f, ymm pairs
// under avx2, SSE quads in the default clone); the per-lane arithmetic
// is identical in every lowering.
typedef double vd8 __attribute__((vector_size(64), aligned(8)));
inline vd8 Load(const double* p) { return *reinterpret_cast<const vd8*>(p); }

// Lane-wise std::min(a, b) / std::max(a, b), including their exact NaN
// behavior: the comparison is false for unordered operands, so the first
// argument wins, as in the scalar <algorithm> forms.
inline vd8 VMin(vd8 a, vd8 b) { return b < a ? b : a; }
inline vd8 VMax(vd8 a, vd8 b) { return a < b ? b : a; }

}  // namespace

// Columns advance in stripes of 16 (two vd8 lane-groups, so the
// loop-carried accumulator chains overlap) and the accumulators stay in
// registers; the row loop streams contiguous 128-byte slices, one SIMD
// lane per column, with a software prefetch a few stripes ahead to keep
// the 24-odd row streams out of the demand-miss path. Per column the
// arithmetic is the exact scalar sequence — min/max plus *shifted*
// sums Σd and Σd² with d = v - v₀ (v₀ the column's first row) over
// ascending rows, then mean = v₀ + Σd*(1/n) and
// stddev = sqrt(max(0, Σd²*(1/n) - (Σd*(1/n))²)). The shift keeps the
// moment subtraction from cancelling catastrophically when counts are
// large with small spread (the 1e9-magnitude regression test), like the
// two-pass form but in a single pass; the reciprocal multiply (one
// division up front) keeps the divider unit off the writeback's
// critical path. Both round within every consumer's tolerance, and v₀
// is a property of the column — not of the chunking — so results stay
// bit-identical across architectures and thread counts. No clone lists
// "fma": contracting d*d+acc would round differently from the tail.
namespace {

// One column, scalar: the reference arithmetic every vector lane must
// reproduce bit-for-bit.
inline void AggregateOneColumn(const double* values, size_t num_rows,
                               size_t num_tags, size_t c, double n,
                               const sage::TagId* tags, SumyEntry* entries) {
  const double shift = values[c];
  double lo = shift;
  double hi = shift;
  double sum = 0.0;
  double sumsq = 0.0;
  for (size_t row = 0; row < num_rows; ++row) {
    const double v = values[row * num_tags + c];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    const double d = v - shift;
    sum += d;
    sumsq += d * d;
  }
  const double inv_n = 1.0 / n;
  const double mean_d = sum * inv_n;
  const double var = sumsq * inv_n - mean_d * mean_d;
  SumyEntry& e = entries[c];
  e.tag = tags[c];
  e.min = lo;
  e.max = hi;
  e.mean = shift + mean_d;
  e.stddev = std::sqrt(std::max(0.0, var));
}

}  // namespace

// Function multi-versioning is disabled under ThreadSanitizer: GCC emits
// the target_clones IFUNC resolver as an instrumented function, and the
// dynamic loader runs resolvers while processing IRELATIVE relocations —
// before TSan's runtime has set up its thread state — so the first
// __tsan_func_entry dereferences a null TLS pointer and crashes pre-main.
// The bit-identity contract makes the clones interchangeable anyway.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GEA_TSAN_BUILD 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define GEA_TSAN_BUILD 1
#endif

#if defined(GEA_TSAN_BUILD)
#define GEA_KERNEL_CLONES
#else
#define GEA_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif

GEA_KERNEL_CLONES void
AggregateColumns(const double* values, size_t num_rows, size_t num_tags,
                 size_t col_begin, size_t col_end, double n,
                 const sage::TagId* tags, SumyEntry* entries) {
  constexpr size_t kStripe = 32;
  size_t col = col_begin;
  // Peel scalar columns until the stripe loads are 64-byte aligned. The
  // row stride (num_tags doubles) must also preserve that alignment row
  // to row, else stay on the (slower) unaligned path.
  const bool can_align = num_tags % 8 == 0;
  if (can_align) {
    while (col < col_end &&
           (reinterpret_cast<uintptr_t>(values + col) & 63) != 0) {
      AggregateOneColumn(values, num_rows, num_tags, col, n, tags, entries);
      ++col;
    }
  }
  for (; col + kStripe <= col_end; col += kStripe) {
    const double* first = values + col;
    vd8 shift[4], lo[4], hi[4], sum[4], sq[4];
    for (size_t g = 0; g < 4; ++g) {
      shift[g] = Load(first + 8 * g);
      lo[g] = shift[g];
      hi[g] = shift[g];
      sum[g] = vd8{};
      sq[g] = vd8{};
    }
    // Four rows per iteration: four in-flight row streams per
    // accumulator update. Per lane the updates still apply in ascending
    // row order (v0, v1, v2, v3), so results are unchanged.
    size_t row = 0;
    for (; row + 4 <= num_rows; row += 4) {
      const double* slice0 = values + row * num_tags + col;
      const double* slice1 = slice0 + num_tags;
      const double* slice2 = slice1 + num_tags;
      const double* slice3 = slice2 + num_tags;
      for (size_t line = 0; line < kStripe; line += 8) {
        __builtin_prefetch(slice0 + 2 * kStripe + line, 0, 3);
        __builtin_prefetch(slice1 + 2 * kStripe + line, 0, 3);
        __builtin_prefetch(slice2 + 2 * kStripe + line, 0, 3);
        __builtin_prefetch(slice3 + 2 * kStripe + line, 0, 3);
      }
      for (size_t g = 0; g < 4; ++g) {
        const vd8 v0 = Load(slice0 + 8 * g);
        const vd8 v1 = Load(slice1 + 8 * g);
        const vd8 v2 = Load(slice2 + 8 * g);
        const vd8 v3 = Load(slice3 + 8 * g);
        lo[g] = VMin(VMin(VMin(VMin(lo[g], v0), v1), v2), v3);
        hi[g] = VMax(VMax(VMax(VMax(hi[g], v0), v1), v2), v3);
        const vd8 d0 = v0 - shift[g];
        const vd8 d1 = v1 - shift[g];
        const vd8 d2 = v2 - shift[g];
        const vd8 d3 = v3 - shift[g];
        sum[g] = (((sum[g] + d0) + d1) + d2) + d3;
        sq[g] = (((sq[g] + d0 * d0) + d1 * d1) + d2 * d2) + d3 * d3;
      }
    }
    for (; row < num_rows; ++row) {
      const double* slice = values + row * num_tags + col;
      __builtin_prefetch(slice + 2 * kStripe, 0, 3);
      __builtin_prefetch(slice + 2 * kStripe + 8, 0, 3);
      __builtin_prefetch(slice + 2 * kStripe + 16, 0, 3);
      __builtin_prefetch(slice + 2 * kStripe + 24, 0, 3);
      for (size_t g = 0; g < 4; ++g) {
        const vd8 v = Load(slice + 8 * g);
        lo[g] = VMin(lo[g], v);
        hi[g] = VMax(hi[g], v);
        const vd8 d = v - shift[g];
        sum[g] += d;
        sq[g] += d * d;
      }
    }
    const double inv_n = 1.0 / n;
    for (size_t g = 0; g < 4; ++g) {
      const vd8 mean_d = sum[g] * inv_n;
      const vd8 mean = shift[g] + mean_d;
      const vd8 var = sq[g] * inv_n - mean_d * mean_d;
      // Lane-wise std::max(0.0, var): the comparison is false for NaN,
      // so NaN clamps to 0 exactly like the scalar form.
      const vd8 zero{};
      const vd8 clamped = zero < var ? var : zero;
      // Lane loop (not std::sqrt on the struct scatter below) so SLP can
      // pack the sqrts; vsqrtpd rounds identically to vsqrtsd.
      vd8 sd;
      for (size_t j = 0; j < 8; ++j) sd[j] = std::sqrt(clamped[j]);
      for (size_t j = 0; j < 8; ++j) {
        SumyEntry& e = entries[col + 8 * g + j];
        e.tag = tags[col + 8 * g + j];
        e.min = lo[g][j];
        e.max = hi[g][j];
        e.mean = mean[j];
        e.stddev = sd[j];
      }
    }
  }
  // Scalar tail for the last partial stripe: identical per-column row
  // order and moment formulas.
  for (; col < col_end; ++col) {
    AggregateOneColumn(values, num_rows, num_tags, col, n, tags, entries);
  }
}

// The entry rows are 40-byte AoS records, so this pass stays scalar —
// the win over the row path is dropping its per-row heap allocations
// and sort, not SIMD. Branch-free selects (cmov) keep the
// mean-comparison pattern off the predictor. Matches the original
// per-pair arithmetic exactly: `magnitude <= 0.0` is the null test, so
// a NaN magnitude stays non-null, and the sign follows which operand
// had the higher (>=) mean.
size_t DiffEntries(const SumyEntry* a, const SumyEntry* b, size_t begin,
                   size_t end, sage::TagId* tags, double* gaps,
                   uint8_t* valid) {
  size_t nulls = 0;
  for (size_t k = begin; k < end; ++k) {
    const SumyEntry& ea = a[k];
    const SumyEntry& eb = b[k];
    const bool first_is_higher = ea.mean >= eb.mean;
    const double hi_mean = first_is_higher ? ea.mean : eb.mean;
    const double hi_stddev = first_is_higher ? ea.stddev : eb.stddev;
    const double lo_mean = first_is_higher ? eb.mean : ea.mean;
    const double lo_stddev = first_is_higher ? eb.stddev : ea.stddev;
    const double magnitude = (hi_mean - hi_stddev) - (lo_mean + lo_stddev);
    const bool is_null = magnitude <= 0.0;
    tags[k] = ea.tag;
    gaps[k] = is_null ? 0.0 : (first_is_higher ? magnitude : -magnitude);
    valid[k] = is_null ? 0 : 1;
    nulls += is_null ? 1 : 0;
  }
  return nulls;
}

}  // namespace gea::core
