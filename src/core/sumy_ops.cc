#include "core/sumy_ops.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

Result<SumyTable> SelectSumy(const SumyTable& input,
                             const std::function<bool(const SumyEntry&)>& pred,
                             const std::string& out_name) {
  static obs::Counter& tags_scanned =
      obs::MetricsRegistry::Global().GetCounter("gea.sumy.select.tags_scanned");
  static obs::Counter& rows_kept =
      obs::MetricsRegistry::Global().GetCounter("gea.sumy.select.rows_kept");
  obs::TraceSpan span("sumy.select");
  tags_scanned.Add(input.NumTags());
  std::vector<SumyEntry> entries;
  for (const SumyEntry& e : input.entries()) {
    if (pred(e)) entries.push_back(e);
  }
  rows_kept.Add(entries.size());
  return SumyTable::Create(out_name, std::move(entries));
}

Result<SumyTable> SelectSumyByRange(const SumyTable& input,
                                    interval::AllenRelation relation,
                                    const interval::Interval& query,
                                    const std::string& out_name) {
  return SelectSumy(
      input,
      [&](const SumyEntry& e) {
        return interval::Holds(relation, e.Range(), query);
      },
      out_name);
}

Result<SumyTable> SumyMinus(const SumyTable& a, const SumyTable& b,
                            const std::string& out_name) {
  std::vector<SumyEntry> entries;
  for (const SumyEntry& e : a.entries()) {
    if (!b.Contains(e.tag)) entries.push_back(e);
  }
  return SumyTable::Create(out_name, std::move(entries));
}

Result<SumyTable> SumyIntersect(const SumyTable& a, const SumyTable& b,
                                const std::string& out_name) {
  std::vector<SumyEntry> entries;
  for (const SumyEntry& e : a.entries()) {
    if (b.Contains(e.tag)) entries.push_back(e);
  }
  return SumyTable::Create(out_name, std::move(entries));
}

Result<SumyTable> SumyUnion(const SumyTable& a, const SumyTable& b,
                            const std::string& out_name) {
  std::vector<SumyEntry> entries = a.entries();
  for (const SumyEntry& e : b.entries()) {
    if (!a.Contains(e.tag)) entries.push_back(e);
  }
  return SumyTable::Create(out_name, std::move(entries));
}

std::string RangeSearchHit::Render() const {
  switch (outcome) {
    case Outcome::kNotExist:
      return "NE";
    case Outcome::kNoMatch:
      return "NO";
    case Outcome::kMatch:
      return range.ToString();
  }
  return "?";
}

std::vector<RangeSearchHit> RangeSearch(
    const std::vector<const SumyTable*>& tables, sage::TagId first_tag,
    sage::TagId last_tag, interval::AllenRelation relation,
    const interval::Interval& query) {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.sumy.range_search.calls");
  obs::TraceSpan span("sumy.range_search");
  calls.Add();
  std::vector<RangeSearchHit> out;
  if (first_tag > last_tag) std::swap(first_tag, last_tag);
  // Collect the tags in range from any table (reporting NE per table for
  // the others), so the report has one line per (tag, table) pair like
  // Fig. 4.16.
  std::vector<sage::TagId> tags;
  for (const SumyTable* table : tables) {
    for (const SumyEntry& e : table->entries()) {
      if (e.tag >= first_tag && e.tag <= last_tag) tags.push_back(e.tag);
    }
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());

  for (sage::TagId tag : tags) {
    for (const SumyTable* table : tables) {
      RangeSearchHit hit;
      hit.tag = tag;
      hit.table_name = table->name();
      std::optional<SumyEntry> entry = table->Find(tag);
      if (!entry.has_value()) {
        hit.outcome = RangeSearchHit::Outcome::kNotExist;
      } else if (interval::Holds(relation, entry->Range(), query)) {
        hit.outcome = RangeSearchHit::Outcome::kMatch;
        hit.range = entry->Range();
      } else {
        hit.outcome = RangeSearchHit::Outcome::kNoMatch;
      }
      out.push_back(std::move(hit));
    }
  }
  return out;
}

std::vector<RangeSearchHit> RangeSearchAny(const SumyTable& table,
                                           interval::AllenRelation relation,
                                           const interval::Interval& query) {
  std::vector<RangeSearchHit> out;
  for (const SumyEntry& e : table.entries()) {
    if (!interval::Holds(relation, e.Range(), query)) continue;
    RangeSearchHit hit;
    hit.tag = e.tag;
    hit.table_name = table.name();
    hit.outcome = RangeSearchHit::Outcome::kMatch;
    hit.range = e.Range();
    out.push_back(std::move(hit));
  }
  return out;
}

}  // namespace gea::core
