#ifndef GEA_CORE_MINE_ALTERNATIVES_H_
#define GEA_CORE_MINE_ALTERNATIVES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/distance.h"
#include "common/result.h"
#include "core/enum_table.h"
#include "core/sumy.h"

namespace gea::core {

/// Alternative mine() back ends. Section 2.6 stresses that the GEA model
/// is not tied to fascicles: "the mining operation can be something other
/// than fascicle production. Examples include other clustering
/// operations." These adapters run k-means or hierarchical clustering
/// over an ENUM table's libraries and materialize every cluster in both
/// worlds, exactly like the fascicle-based Mine():
///
///   * the member ENUM table over all of the input's tags, and
///   * its SUMY table (aggregate() of the members).
///
/// Unlike fascicles these methods have no notion of compact tags, so the
/// SUMY covers every tag — the selection operators of Section 3.2.3 can
/// then narrow it.
struct MinedCluster {
  /// Row indices of the input ENUM's member libraries.
  std::vector<size_t> members;
  SumyTable sumy;
  EnumTable enum_table;

  MinedCluster(std::vector<size_t> m, SumyTable s, EnumTable e)
      : members(std::move(m)), sumy(std::move(s)),
        enum_table(std::move(e)) {}
};

/// mine() via k-means over the library rows (Euclidean on expression
/// levels). Produces exactly `k` clusters named "<out_prefix>_1" ..
/// "<out_prefix>_k" (clusters left empty by k-means are skipped).
Result<std::vector<MinedCluster>> MineKMeans(const EnumTable& input, int k,
                                             uint64_t seed,
                                             const std::string& out_prefix);

/// mine() via hierarchical agglomerative clustering cut at `k` clusters.
Result<std::vector<MinedCluster>> MineHierarchical(
    const EnumTable& input, size_t k, cluster::DistanceKind distance,
    const std::string& out_prefix);

}  // namespace gea::core

#endif  // GEA_CORE_MINE_ALTERNATIVES_H_
