#include "core/enum_table.h"

#include <algorithm>
#include <unordered_set>

namespace gea::core {

EnumTable EnumTable::FromDataSet(std::string name,
                                 const sage::SageDataSet& dataset) {
  return FromDataSet(std::move(name), dataset, dataset.TagUniverse());
}

EnumTable EnumTable::FromDataSet(std::string name,
                                 const sage::SageDataSet& dataset,
                                 std::vector<sage::TagId> tags) {
  std::vector<sage::LibraryMeta> libs;
  libs.reserve(dataset.NumLibraries());
  for (const sage::SageLibrary& lib : dataset.libraries()) {
    libs.push_back(
        {lib.id(), lib.name(), lib.tissue(), lib.state(), lib.source()});
  }
  std::vector<double> values(libs.size() * tags.size(), 0.0);
  for (size_t row = 0; row < dataset.NumLibraries(); ++row) {
    const sage::SageLibrary& lib = dataset.library(row);
    size_t col = 0;
    for (const sage::SageLibrary::Entry& e : lib.entries()) {
      while (col < tags.size() && tags[col] < e.tag) ++col;
      if (col == tags.size()) break;
      if (tags[col] == e.tag) {
        values[row * tags.size() + col] = e.count;
      }
    }
  }
  return EnumTable(std::move(name), std::move(libs), std::move(tags),
                   std::move(values));
}

Result<EnumTable> EnumTable::FromRows(std::string name,
                                      std::vector<sage::LibraryMeta> libraries,
                                      std::vector<sage::TagId> tags,
                                      std::vector<double> values) {
  if (!std::is_sorted(tags.begin(), tags.end()) ||
      std::adjacent_find(tags.begin(), tags.end()) != tags.end()) {
    return Status::InvalidArgument(
        "tags must be strictly ascending in ENUM table " + name);
  }
  if (values.size() != libraries.size() * tags.size()) {
    return Status::InvalidArgument(
        "value buffer has " + std::to_string(values.size()) +
        " entries, expected " +
        std::to_string(libraries.size() * tags.size()));
  }
  return EnumTable(std::move(name), std::move(libraries), std::move(tags),
                   std::move(values));
}

std::optional<size_t> EnumTable::FindTagColumn(sage::TagId tag) const {
  auto it = std::lower_bound(tags_.begin(), tags_.end(), tag);
  if (it == tags_.end() || *it != tag) return std::nullopt;
  return static_cast<size_t>(it - tags_.begin());
}

std::optional<size_t> EnumTable::FindLibraryRow(int library_id) const {
  for (size_t row = 0; row < libraries_.size(); ++row) {
    if (libraries_[row].id == library_id) return row;
  }
  return std::nullopt;
}

EnumTable EnumTable::FilterLibraries(
    const std::string& out_name,
    const std::function<bool(const sage::LibraryMeta&)>& pred) const {
  std::vector<sage::LibraryMeta> libs;
  std::vector<double> values;
  for (size_t row = 0; row < libraries_.size(); ++row) {
    if (!pred(libraries_[row])) continue;
    libs.push_back(libraries_[row]);
    std::span<const double> src = LibraryRow(row);
    values.insert(values.end(), src.begin(), src.end());
  }
  return EnumTable(out_name, std::move(libs), tags_, std::move(values));
}

EnumTable EnumTable::MinusLibraries(const std::string& out_name,
                                    const EnumTable& other) const {
  std::unordered_set<int> excluded;
  for (const sage::LibraryMeta& lib : other.libraries_) {
    excluded.insert(lib.id);
  }
  return FilterLibraries(out_name, [&](const sage::LibraryMeta& lib) {
    return excluded.count(lib.id) == 0;
  });
}

Result<EnumTable> EnumTable::RestrictTags(
    const std::string& out_name, std::vector<sage::TagId> tags) const {
  if (!std::is_sorted(tags.begin(), tags.end()) ||
      std::adjacent_find(tags.begin(), tags.end()) != tags.end()) {
    return Status::InvalidArgument(
        "RestrictTags requires strictly ascending tags");
  }
  std::vector<std::optional<size_t>> cols;
  cols.reserve(tags.size());
  for (sage::TagId tag : tags) {
    cols.push_back(FindTagColumn(tag));
  }
  std::vector<double> values;
  values.reserve(libraries_.size() * cols.size());
  for (size_t row = 0; row < libraries_.size(); ++row) {
    for (const std::optional<size_t>& col : cols) {
      values.push_back(col.has_value() ? ValueAt(row, *col) : 0.0);
    }
  }
  return EnumTable(out_name, libraries_, std::move(tags), std::move(values));
}

EnumTable EnumTable::SelectLibraries(const std::string& out_name,
                                     const std::vector<int>& ids) const {
  std::unordered_set<int> wanted(ids.begin(), ids.end());
  return FilterLibraries(out_name, [&](const sage::LibraryMeta& lib) {
    return wanted.count(lib.id) > 0;
  });
}

rel::Table EnumTable::ToRelTable() const {
  std::vector<rel::ColumnDef> defs = {{"TagName", rel::ValueType::kString},
                                      {"TagNo", rel::ValueType::kInt}};
  for (const sage::LibraryMeta& lib : libraries_) {
    defs.push_back({lib.name, rel::ValueType::kDouble});
  }
  rel::Table table(name_, rel::Schema(std::move(defs)));
  for (size_t col = 0; col < tags_.size(); ++col) {
    rel::Row row = {rel::Value::String(sage::DecodeTag(tags_[col])),
                    rel::Value::Int(static_cast<int64_t>(tags_[col]))};
    for (size_t lib = 0; lib < libraries_.size(); ++lib) {
      row.push_back(rel::Value::Double(ValueAt(lib, col)));
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

}  // namespace gea::core
