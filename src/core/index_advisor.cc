#include "core/index_advisor.h"

#include <algorithm>
#include <cmath>

namespace gea::core {

namespace {

// log C(p, w) via lgamma.
double LogChoose(int64_t p, int64_t w) {
  return std::lgamma(static_cast<double>(p) + 1.0) -
         std::lgamma(static_cast<double>(w) + 1.0) -
         std::lgamma(static_cast<double>(p - w) + 1.0);
}

}  // namespace

double ProbExactlyWIndexHits(int64_t n, int64_t p, int64_t m, int64_t w) {
  if (w < 0 || w > p) return 0.0;
  if (m <= 0) return w == 0 ? 1.0 : 0.0;
  if (m >= n) return w == p ? 1.0 : 0.0;
  double q = static_cast<double>(m) / static_cast<double>(n);
  double log_prob = LogChoose(p, w) + static_cast<double>(w) * std::log(q) +
                    static_cast<double>(p - w) * std::log1p(-q);
  return std::exp(log_prob);
}

double ProbAtLeastWIndexHits(int64_t n, int64_t p, int64_t m, int64_t w) {
  double miss = 0.0;
  for (int64_t i = 0; i < w; ++i) {
    miss += ProbExactlyWIndexHits(n, p, m, i);
  }
  return 1.0 - miss;
}

Result<int64_t> RequiredIndexCount(int64_t n, int64_t p, int64_t w,
                                   double probability) {
  if (n <= 0 || p <= 0 || p > n) {
    return Status::InvalidArgument("need 0 < p <= n");
  }
  if (w < 1 || w > p) {
    return Status::InvalidArgument("need 1 <= w <= p");
  }
  if (probability <= 0.0 || probability >= 1.0) {
    return Status::InvalidArgument("probability must be in (0, 1)");
  }
  for (int64_t m = 1; m <= n; ++m) {
    if (ProbAtLeastWIndexHits(n, p, m, w) >= probability) return m;
  }
  return Status::Internal("no m <= n reaches the requested probability");
}

double TagEntropy(const EnumTable& table, size_t column, int num_buckets) {
  const size_t n = table.NumLibraries();
  if (n == 0 || num_buckets < 2) return 0.0;
  double lo = table.ValueAt(0, column);
  double hi = lo;
  for (size_t row = 1; row < n; ++row) {
    double v = table.ValueAt(row, column);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  std::vector<size_t> counts(static_cast<size_t>(num_buckets), 0);
  for (size_t row = 0; row < n; ++row) {
    double v = table.ValueAt(row, column);
    int bucket = static_cast<int>((v - lo) / (hi - lo) *
                                  static_cast<double>(num_buckets));
    bucket = std::clamp(bucket, 0, num_buckets - 1);
    ++counts[static_cast<size_t>(bucket)];
  }
  double entropy = 0.0;
  for (size_t count : counts) {
    if (count == 0) continue;
    double prob = static_cast<double>(count) / static_cast<double>(n);
    entropy -= prob * std::log2(prob);
  }
  return entropy;
}

std::vector<sage::TagId> TopEntropyTags(const EnumTable& table, size_t m,
                                        int num_buckets) {
  std::vector<std::pair<double, sage::TagId>> scored;
  scored.reserve(table.NumTags());
  for (size_t col = 0; col < table.NumTags(); ++col) {
    scored.emplace_back(TagEntropy(table, col, num_buckets), table.tag(col));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<sage::TagId> out;
  size_t take = std::min(m, scored.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace gea::core
