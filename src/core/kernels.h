#ifndef GEA_CORE_KERNELS_H_
#define GEA_CORE_KERNELS_H_

#include <cstddef>

#include "core/sumy.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// Batch kernels over the raw columnar arrays of the core operators.
/// Compiled in their own translation unit at -O3 with per-arch clones
/// (see CMakeLists.txt) so the stripe loops actually vectorize; every
/// kernel keeps the per-column arithmetic in exact ascending-row scalar
/// order, so results are bit-identical to the row-at-a-time reference
/// paths at any thread count and on every architecture clone.

/// Summary pass over tag columns [col_begin, col_end) of the row-major
/// `values` matrix (num_rows x num_tags): per column min/max/sum over
/// ascending rows, then squared deviations over ascending rows. Fills
/// entries[col] for each col in range.
void AggregateColumns(const double* values, size_t num_rows, size_t num_tags,
                      size_t col_begin, size_t col_end, double n,
                      const sage::TagId* tags, SumyEntry* entries);

/// diff() batch over aligned entry rows [begin, end) of two SUMY tables
/// whose tag sets match position-for-position in that range: writes
/// tags[k], gaps[k] (0.0 where null) and valid[k] (1 = non-null) for
/// each k. Exact original per-pair arithmetic, including its NaN
/// behavior (a NaN magnitude is NOT null: `magnitude <= 0` is false).
/// Returns the number of null gaps produced.
size_t DiffEntries(const SumyEntry* a, const SumyEntry* b, size_t begin,
                   size_t end, sage::TagId* tags, double* gaps,
                   uint8_t* valid);

}  // namespace gea::core

#endif  // GEA_CORE_KERNELS_H_
