#ifndef GEA_CORE_OPERATORS_H_
#define GEA_CORE_OPERATORS_H_

#include <string>
#include <vector>

#include "cluster/fascicles.h"
#include "common/result.h"
#include "core/enum_table.h"
#include "core/sumy.h"

namespace gea::core {

/// The inter-world operators of Fig. 3.1: mine(), aggregate() and (in
/// populate.h) populate().

/// aggregate(): converts a cluster from its extensional/ENUM form to its
/// intensional/SUMY form, computing range, mean and population standard
/// deviation per tag in one pass over the libraries (Section 3.3.1 item 2).
Result<SumyTable> Aggregate(const EnumTable& input,
                            const std::string& out_name);

/// Purity properties of Fig. 4.7/4.8: a fascicle may be checked against
/// any one of the four.
enum class PurityProperty {
  kCancer = 0,
  kNormal,
  kBulkTissue,
  kCellLine,
};

const char* PurityPropertyName(PurityProperty property);

/// True when every library in `cluster` has `property` (Section 4.3.1.2:
/// "the libraries in the fascicle consist of only one property").
bool IsPure(const EnumTable& cluster, PurityProperty property);

/// All properties for which `cluster` is pure (possibly several: a pure
/// cancer fascicle may also be pure bulk tissue).
std::vector<PurityProperty> PureProperties(const EnumTable& cluster);

/// Result of mining one fascicle: the macro operation of Section 4.1
/// creates the SUMY table and the member ENUM table together.
struct MinedFascicle {
  cluster::Fascicle fascicle;
  /// SUMY over the fascicle's compact tags, aggregated over its members.
  SumyTable sumy;
  /// ENUM of the member libraries restricted to the compact tags.
  EnumTable members;

  MinedFascicle(cluster::Fascicle f, SumyTable s, EnumTable m)
      : fascicle(std::move(f)), sumy(std::move(s)), members(std::move(m)) {}
};

/// mine(): runs the Fascicles algorithm on `input` and materializes each
/// fascicle in both worlds. Result tables are named
/// "<out_prefix>_1", "<out_prefix>_2", ... in mining order, matching the
/// thesis's naming (e.g. brain35k_1 .. brain35k_4, Fig. 4.7).
Result<std::vector<MinedFascicle>> Mine(
    const EnumTable& input, const cluster::FascicleParams& params,
    const std::string& out_prefix);

/// Builds the Fig. 4.5 tolerance metadata for `input`: per-tag tolerance
/// = `percent`% of the tag's value width over the input libraries.
std::vector<double> MakeToleranceMetadata(const EnumTable& input,
                                          double percent);

}  // namespace gea::core

#endif  // GEA_CORE_OPERATORS_H_
