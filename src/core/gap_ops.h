#ifndef GEA_CORE_GAP_OPS_H_
#define GEA_CORE_GAP_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/gap.h"

namespace gea::core {

/// Intensional-world operations on GAP tables (Sections 3.2.3 and 4.4.3).

/// Selection with an arbitrary predicate (e.g. "keep tags with negative
/// gap values", the Case 3 building block).
Result<GapTable> SelectGap(const GapTable& input,
                           const std::function<bool(const GapEntry&)>& pred,
                           const std::string& out_name);

/// Keeps only entries whose first gap column is non-null.
Result<GapTable> SelectNonNullGaps(const GapTable& input,
                                   const std::string& out_name);

/// Keeps entries whose first gap column is non-null and positive /
/// negative.
Result<GapTable> SelectPositiveGaps(const GapTable& input,
                                    const std::string& out_name);
Result<GapTable> SelectNegativeGaps(const GapTable& input,
                                    const std::string& out_name);

/// Projection: keeps the named gap columns, in order (Section 3.2.3's
/// "standard projection operator to remove unwanted columns").
Result<GapTable> ProjectGap(const GapTable& input,
                            const std::vector<std::string>& gap_columns,
                            const std::string& out_name);

/// Set minus at the level of tags (Fig. 3.6c): tags of `a` missing from
/// `b`, with a's gap columns.
Result<GapTable> GapMinus(const GapTable& a, const GapTable& b,
                          const std::string& out_name);

/// Set intersection (Fig. 3.6d): the common tags; the output carries a's
/// gap columns followed by b's (renamed "<name>_1"/"<name>_2" on clash).
Result<GapTable> GapIntersect(const GapTable& a, const GapTable& b,
                              const std::string& out_name);

/// Set union, defined like intersection (Section 3.2.3): all tags from
/// either operand, with a's columns then b's; a tag absent from one
/// operand carries nulls in that operand's columns.
Result<GapTable> GapUnion(const GapTable& a, const GapTable& b,
                          const std::string& out_name);

/// Ranking criterion for top-gap extraction (Section 4.4.3).
enum class TopGapMode {
  /// Largest |gap| first — what the Fig. 4.9 "Top Gap Values" list shows.
  kLargestMagnitude = 0,
  /// Most positive first.
  kHighest,
  /// Most negative first.
  kLowest,
};

const char* TopGapModeName(TopGapMode mode);

/// The top-x non-null gaps of the first gap column under `mode`
/// ("Calculate Top Gap Table", Fig. 4.19). The thesis's convention names
/// the output "<gap name>_<x>".
Result<GapTable> TopGap(const GapTable& input, size_t x, TopGapMode mode,
                        const std::string& out_name);

/// Formats entries like the thesis's windows: "TAGNAME_(id)_value[_value2]".
std::vector<std::string> RenderGapList(const GapTable& table,
                                       size_t max_entries = 20);

}  // namespace gea::core

#endif  // GEA_CORE_GAP_OPS_H_
