#include "core/mine_alternatives.h"

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "core/operators.h"

namespace gea::core {

namespace {

/// Materializes assignment labels into per-cluster ENUM + SUMY pairs.
Result<std::vector<MinedCluster>> Materialize(
    const EnumTable& input, const std::vector<int>& assignments,
    const std::string& out_prefix) {
  int max_label = -1;
  for (int label : assignments) max_label = std::max(max_label, label);

  std::vector<MinedCluster> out;
  for (int label = 0; label <= max_label; ++label) {
    std::vector<size_t> members;
    std::vector<int> member_ids;
    for (size_t row = 0; row < assignments.size(); ++row) {
      if (assignments[row] == label) {
        members.push_back(row);
        member_ids.push_back(input.library(row).id);
      }
    }
    if (members.empty()) continue;
    const std::string name =
        out_prefix + "_" + std::to_string(out.size() + 1);
    EnumTable cluster_enum =
        input.SelectLibraries(name + "_ENUM", member_ids);
    GEA_ASSIGN_OR_RETURN(SumyTable sumy,
                         Aggregate(cluster_enum, name + "_SUMY"));
    out.emplace_back(std::move(members), std::move(sumy),
                     std::move(cluster_enum));
  }
  return out;
}

/// The library rows as points for the clustering substrate.
std::vector<std::vector<double>> LibraryPoints(const EnumTable& input) {
  std::vector<std::vector<double>> points;
  points.reserve(input.NumLibraries());
  for (size_t row = 0; row < input.NumLibraries(); ++row) {
    std::span<const double> values = input.LibraryRow(row);
    points.emplace_back(values.begin(), values.end());
  }
  return points;
}

}  // namespace

Result<std::vector<MinedCluster>> MineKMeans(const EnumTable& input, int k,
                                             uint64_t seed,
                                             const std::string& out_prefix) {
  cluster::KMeansParams params;
  params.k = k;
  params.seed = seed;
  GEA_ASSIGN_OR_RETURN(cluster::KMeansResult result,
                       cluster::KMeans(LibraryPoints(input), params));
  return Materialize(input, result.assignments, out_prefix);
}

Result<std::vector<MinedCluster>> MineHierarchical(
    const EnumTable& input, size_t k, cluster::DistanceKind distance,
    const std::string& out_prefix) {
  GEA_ASSIGN_OR_RETURN(
      cluster::Dendrogram dendro,
      cluster::HierarchicalCluster(LibraryPoints(input), distance,
                                   cluster::Linkage::kAverage));
  GEA_ASSIGN_OR_RETURN(std::vector<int> assignments, dendro.Cut(k));
  return Materialize(input, assignments, out_prefix);
}

}  // namespace gea::core
