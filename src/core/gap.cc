#include "core/gap.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

Result<GapTable> GapTable::Create(std::string name,
                                  std::vector<std::string> gap_columns,
                                  std::vector<GapEntry> entries) {
  if (gap_columns.empty()) {
    return Status::InvalidArgument("GAP table needs at least one gap column");
  }
  std::sort(entries.begin(), entries.end(),
            [](const GapEntry& a, const GapEntry& b) { return a.tag < b.tag; });
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].gaps.size() != gap_columns.size()) {
      return Status::InvalidArgument(
          "GAP entry for " + sage::TagLabel(entries[i].tag) + " has " +
          std::to_string(entries[i].gaps.size()) + " values, table has " +
          std::to_string(gap_columns.size()) + " gap columns");
    }
    if (i > 0 && entries[i].tag == entries[i - 1].tag) {
      return Status::InvalidArgument("duplicate GAP tag: " +
                                     sage::TagLabel(entries[i].tag));
    }
  }
  GapTable table;
  table.name_ = std::move(name);
  table.gap_columns_ = std::move(gap_columns);
  table.entries_ = std::move(entries);
  return table;
}

std::optional<GapEntry> GapTable::Find(sage::TagId tag) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), tag,
      [](const GapEntry& e, sage::TagId t) { return e.tag < t; });
  if (it == entries_.end() || it->tag != tag) return std::nullopt;
  return *it;
}

std::optional<double> GapTable::Gap(sage::TagId tag, size_t col) const {
  std::optional<GapEntry> entry = Find(tag);
  if (!entry.has_value() || col >= entry->gaps.size()) return std::nullopt;
  return entry->gaps[col];
}

rel::Table GapTable::ToRelTable() const {
  std::vector<rel::ColumnDef> defs = {{"TagName", rel::ValueType::kString},
                                      {"TagNo", rel::ValueType::kInt}};
  for (const std::string& col : gap_columns_) {
    defs.push_back({col, rel::ValueType::kDouble});
  }
  rel::Table table(name_, rel::Schema(std::move(defs)));
  for (const GapEntry& e : entries_) {
    rel::Row row = {rel::Value::String(sage::DecodeTag(e.tag)),
                    rel::Value::Int(static_cast<int64_t>(e.tag))};
    for (const std::optional<double>& g : e.gaps) {
      row.push_back(g.has_value() ? rel::Value::Double(*g)
                                  : rel::Value::Null());
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

Result<GapTable> Diff(const SumyTable& sumy1, const SumyTable& sumy2,
                      const std::string& out_name,
                      const std::string& gap_column) {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.calls");
  static obs::Counter& tags_compared =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.tags_compared");
  static obs::Counter& gaps_null =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.gaps_null");
  static obs::Counter& rows_materialized =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.rows_materialized");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("gea.diff.nanos");
  obs::TraceSpan span("diff");
  obs::ScopedLatency timer(latency);
  calls.Add();
  tags_compared.Add(sumy1.NumTags() + sumy2.NumTags());
  // Merge over the two sorted entry lists; GAP rows exist only for the
  // common tags (Fig. 3.5: the resultant table consists of the tags
  // common to both SUMY tables). The merge itself is a cheap index walk;
  // the per-tag gap computation is then partitioned across the pool, each
  // matched pair filling its own output slot.
  std::vector<std::pair<size_t, size_t>> matched;
  matched.reserve(std::min(sumy1.NumTags(), sumy2.NumTags()));
  size_t i = 0;
  size_t j = 0;
  while (i < sumy1.NumTags() && j < sumy2.NumTags()) {
    sage::TagId ta = sumy1.entry(i).tag;
    sage::TagId tb = sumy2.entry(j).tag;
    if (ta < tb) {
      ++i;
    } else if (tb < ta) {
      ++j;
    } else {
      matched.emplace_back(i, j);
      ++i;
      ++j;
    }
  }
  std::vector<GapEntry> entries(matched.size());
  ParallelFor(0, matched.size(), 512, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const SumyEntry& a = sumy1.entry(matched[k].first);
      const SumyEntry& b = sumy2.entry(matched[k].second);
      const bool first_is_higher = a.mean >= b.mean;
      const SumyEntry& hi = first_is_higher ? a : b;
      const SumyEntry& lo = first_is_higher ? b : a;
      double magnitude = (hi.mean - hi.stddev) - (lo.mean + lo.stddev);
      GapEntry& entry = entries[k];
      entry.tag = a.tag;
      if (magnitude <= 0.0) {
        entry.gaps.push_back(std::nullopt);  // the bands overlap
      } else {
        entry.gaps.push_back(first_is_higher ? magnitude : -magnitude);
      }
    }
  });
  rows_materialized.Add(entries.size());
  if (obs::MetricsEnabled()) {
    uint64_t nulls = 0;
    for (const GapEntry& entry : entries) {
      if (!entry.gaps[0].has_value()) ++nulls;
    }
    gaps_null.Add(nulls);
  }
  return GapTable::Create(out_name, {gap_column}, std::move(entries));
}

}  // namespace gea::core
