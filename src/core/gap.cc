#include "core/gap.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/thread_pool.h"
#include "core/kernels.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace gea::core {

namespace {

/// Bytes held by a gap table's columnar arrays (tags + per-column
/// values/validity), charged to the bound memory account at build time.
uint64_t GapPayloadBytes(const std::vector<sage::TagId>& tags,
                         const std::vector<std::vector<double>>& values,
                         const std::vector<std::vector<uint8_t>>& valid) {
  uint64_t bytes = tags.size() * sizeof(sage::TagId);
  for (const std::vector<double>& column : values) {
    bytes += column.size() * sizeof(double);
  }
  for (const std::vector<uint8_t>& column : valid) bytes += column.size();
  return bytes;
}

}  // namespace

Result<GapTable> GapTable::Create(std::string name,
                                  std::vector<std::string> gap_columns,
                                  std::vector<GapEntry> entries) {
  if (gap_columns.empty()) {
    return Status::InvalidArgument("GAP table needs at least one gap column");
  }
  std::sort(entries.begin(), entries.end(),
            [](const GapEntry& a, const GapEntry& b) { return a.tag < b.tag; });
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].gaps.size() != gap_columns.size()) {
      return Status::InvalidArgument(
          "GAP entry for " + sage::TagLabel(entries[i].tag) + " has " +
          std::to_string(entries[i].gaps.size()) + " values, table has " +
          std::to_string(gap_columns.size()) + " gap columns");
    }
    if (i > 0 && entries[i].tag == entries[i - 1].tag) {
      return Status::InvalidArgument("duplicate GAP tag: " +
                                     sage::TagLabel(entries[i].tag));
    }
  }
  // Transpose the validated rows into the columnar layout.
  GapTable table;
  table.name_ = std::move(name);
  table.gap_columns_ = std::move(gap_columns);
  const size_t num_rows = entries.size();
  const size_t num_cols = table.gap_columns_.size();
  table.tags_.reserve(num_rows);
  table.values_.assign(num_cols, {});
  table.valid_.assign(num_cols, {});
  for (size_t c = 0; c < num_cols; ++c) {
    table.values_[c].reserve(num_rows);
    table.valid_[c].reserve(num_rows);
  }
  for (const GapEntry& e : entries) {
    table.tags_.push_back(e.tag);
    for (size_t c = 0; c < num_cols; ++c) {
      const std::optional<double>& g = e.gaps[c];
      table.values_[c].push_back(g.value_or(0.0));
      table.valid_[c].push_back(g.has_value() ? 1 : 0);
    }
  }
  obs::AccountAllocation(
      GapPayloadBytes(table.tags_, table.values_, table.valid_));
  return table;
}

GapTable GapTable::FromColumns(std::string name,
                               std::vector<std::string> gap_columns,
                               std::vector<sage::TagId> tags,
                               std::vector<std::vector<double>> values,
                               std::vector<std::vector<uint8_t>> valid) {
#ifndef NDEBUG
  assert(!gap_columns.empty());
  assert(values.size() == gap_columns.size());
  assert(valid.size() == gap_columns.size());
  for (size_t i = 1; i < tags.size(); ++i) assert(tags[i - 1] < tags[i]);
  for (size_t c = 0; c < values.size(); ++c) {
    assert(values[c].size() == tags.size());
    assert(valid[c].size() == tags.size());
    for (size_t i = 0; i < tags.size(); ++i) {
      assert(valid[c][i] || values[c][i] == 0.0);
    }
  }
#endif
  GapTable table;
  table.name_ = std::move(name);
  table.gap_columns_ = std::move(gap_columns);
  table.tags_ = std::move(tags);
  table.values_ = std::move(values);
  table.valid_ = std::move(valid);
  obs::AccountAllocation(
      GapPayloadBytes(table.tags_, table.values_, table.valid_));
  return table;
}

GapEntry GapTable::entry(size_t i) const {
  GapEntry e;
  e.tag = tags_[i];
  e.gaps.reserve(NumColumns());
  for (size_t c = 0; c < NumColumns(); ++c) e.gaps.push_back(GapAt(i, c));
  return e;
}

std::vector<GapEntry> GapTable::entries() const {
  std::vector<GapEntry> out;
  out.reserve(NumTags());
  for (size_t i = 0; i < NumTags(); ++i) out.push_back(entry(i));
  return out;
}

std::optional<size_t> GapTable::FindIndex(sage::TagId tag) const {
  auto it = std::lower_bound(tags_.begin(), tags_.end(), tag);
  if (it == tags_.end() || *it != tag) return std::nullopt;
  return static_cast<size_t>(it - tags_.begin());
}

std::optional<GapEntry> GapTable::Find(sage::TagId tag) const {
  std::optional<size_t> i = FindIndex(tag);
  if (!i.has_value()) return std::nullopt;
  return entry(*i);
}

std::optional<double> GapTable::Gap(sage::TagId tag, size_t col) const {
  std::optional<size_t> i = FindIndex(tag);
  if (!i.has_value() || col >= NumColumns()) return std::nullopt;
  return GapAt(*i, col);
}

GapTable GapTable::WithColumnNames(
    std::vector<std::string> gap_columns) const {
  assert(gap_columns.size() == gap_columns_.size());
  GapTable renamed = *this;
  renamed.gap_columns_ = std::move(gap_columns);
  return renamed;
}

rel::Table GapTable::ToRelTable() const {
  std::vector<rel::ColumnDef> defs = {{"TagName", rel::ValueType::kString},
                                      {"TagNo", rel::ValueType::kInt}};
  for (const std::string& col : gap_columns_) {
    defs.push_back({col, rel::ValueType::kDouble});
  }
  rel::Table table(name_, rel::Schema(std::move(defs)));
  for (size_t i = 0; i < NumTags(); ++i) {
    rel::Row row = {rel::Value::String(sage::DecodeTag(tags_[i])),
                    rel::Value::Int(static_cast<int64_t>(tags_[i]))};
    for (size_t c = 0; c < NumColumns(); ++c) {
      row.push_back(valid_[c][i] ? rel::Value::Double(values_[c][i])
                                 : rel::Value::Null());
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

Result<GapTable> Diff(const SumyTable& sumy1, const SumyTable& sumy2,
                      const std::string& out_name,
                      const std::string& gap_column) {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.calls");
  static obs::Counter& tags_compared =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.tags_compared");
  static obs::Counter& gaps_null =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.gaps_null");
  static obs::Counter& rows_materialized =
      obs::MetricsRegistry::Global().GetCounter("gea.diff.rows_materialized");
  static obs::Counter& tag_lookups =
      obs::MetricsRegistry::Global().GetCounter("gea.core.tag_lookups");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("gea.diff.nanos");
  obs::TraceSpan span("diff");
  obs::ScopedLatency timer(latency);
  calls.Add();
  tags_compared.Add(sumy1.NumTags() + sumy2.NumTags());

  const SumyEntry* a = sumy1.entries().data();
  const SumyEntry* b = sumy2.entries().data();
  const size_t na = sumy1.NumTags();
  const size_t nb = sumy2.NumTags();

  // GAP rows exist only for the common tags (Fig. 3.5). The overwhelmingly
  // common shape is two aggregates over the same ENUM tag universe, where
  // the entry lists line up position-for-position; detect that with one
  // cheap scan (which also warms the lines the kernel is about to read)
  // and go straight to the aligned batch kernel. Mismatched tag sets take
  // the merge below into compacted aligned buffers first.
  bool aligned = na == nb;
  if (aligned) {
    for (size_t i = 0; i < na; ++i) {
      if (a[i].tag != b[i].tag) {
        aligned = false;
        break;
      }
    }
  }

  std::vector<SumyEntry> packed_a;
  std::vector<SumyEntry> packed_b;
  size_t matched = na;
  if (!aligned) {
    // Merge walk over the two sorted entry lists, packing the matched
    // pairs so the kernel still sees aligned rows.
    packed_a.reserve(std::min(na, nb));
    packed_b.reserve(std::min(na, nb));
    size_t i = 0;
    size_t j = 0;
    while (i < na && j < nb) {
      if (a[i].tag < b[j].tag) {
        ++i;
      } else if (b[j].tag < a[i].tag) {
        ++j;
      } else {
        packed_a.push_back(a[i++]);
        packed_b.push_back(b[j++]);
      }
    }
    a = packed_a.data();
    b = packed_b.data();
    matched = packed_a.size();
  }

  std::vector<sage::TagId> tags(matched);
  std::vector<double> gaps(matched);
  std::vector<uint8_t> valid(matched);
  std::atomic<uint64_t> nulls{0};
  ParallelFor(0, matched, 4096, [&](size_t begin, size_t end) {
    // Tag ids resolve once per entry batch, not per comparison.
    tag_lookups.Add(end - begin);
    nulls.fetch_add(
        DiffEntries(a, b, begin, end, tags.data(), gaps.data(), valid.data()),
        std::memory_order_relaxed);
  });
  rows_materialized.Add(matched);
  gaps_null.Add(nulls.load(std::memory_order_relaxed));

  std::vector<std::vector<double>> values_cols;
  values_cols.push_back(std::move(gaps));
  std::vector<std::vector<uint8_t>> valid_cols;
  valid_cols.push_back(std::move(valid));
  return GapTable::FromColumns(out_name, {gap_column}, std::move(tags),
                               std::move(values_cols), std::move(valid_cols));
}

}  // namespace gea::core
