#ifndef GEA_CORE_SUMY_H_
#define GEA_CORE_SUMY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "interval/interval.h"
#include "rel/table.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// One row of a SUMY table: a compact tag with its range, mean and
/// standard deviation over the cluster's libraries (Fig. 3.3a).
struct SumyEntry {
  sage::TagId tag;
  double min;
  double max;
  double mean;
  double stddev;  // population standard deviation

  // Deliberately leaves the members uninitialized: Aggregate fills
  // whole-table entry vectors with the batch kernel, and zero-filling
  // them first costs a full pass over the output. Every producer must
  // assign all five fields.
  SumyEntry() {}
  SumyEntry(sage::TagId t, double mn, double mx, double me, double sd)
      : tag(t), min(mn), max(mx), mean(me), stddev(sd) {}

  interval::Interval Range() const { return {min, max}; }
};

/// A cluster in the **intensional world** (Section 3.1.2): the cluster's
/// definition as the set of compact tags with their value ranges and
/// aggregates. A library belongs to the cluster iff its value falls within
/// [min, max] for every row — which is what populate() evaluates.
class SumyTable {
 public:
  SumyTable() = default;
  explicit SumyTable(std::string name) : name_(std::move(name)) {}

  /// Builds from entries; sorts by tag and rejects duplicates or rows
  /// with min > max.
  static Result<SumyTable> Create(std::string name,
                                  std::vector<SumyEntry> entries);

  /// Trusted fast path for producers whose output is sorted and valid by
  /// construction (Aggregate fills entries in EnumTable tag order, which
  /// is strictly ascending, with min <= max per entry). Skips the O(n)
  /// validation scans; debug builds still assert the invariant.
  static SumyTable FromSortedEntries(std::string name,
                                     std::vector<SumyEntry> entries);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumTags() const { return entries_.size(); }
  const SumyEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<SumyEntry>& entries() const { return entries_; }

  /// Entry for `tag`, or nullopt.
  std::optional<SumyEntry> Find(sage::TagId tag) const;

  bool Contains(sage::TagId tag) const { return Find(tag).has_value(); }

  /// Relational rendering (TagName, TagNo, Min, Max, Average, StdDev) —
  /// the SummaryTable schema of Appendix IV (table 17).
  rel::Table ToRelTable() const;

 private:
  std::string name_;
  std::vector<SumyEntry> entries_;  // sorted by tag
};

}  // namespace gea::core

#endif  // GEA_CORE_SUMY_H_
