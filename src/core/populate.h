#ifndef GEA_CORE_POPULATE_H_
#define GEA_CORE_POPULATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/enum_table.h"
#include "core/sumy.h"
#include "sage/tag_codec.h"

namespace gea::core {

/// populate(): given a SUMY table and an ENUM data set, finds all
/// libraries satisfying every tag-range condition laid out in the SUMY
/// table (Section 3.2.1), converting the cluster from its intensional form
/// back to an extensional enumeration.
///
/// A SUMY table easily carries p = 25,000–30,000 range conditions
/// (Section 3.3.2), so the engine supports the thesis's optimization:
/// sorted indexes on the top-m highest-entropy tags. The plan intersects
/// the candidate sets of the hit indexes (most selective first) and
/// verifies the remaining conditions by scanning only the candidates;
/// with no usable index it falls back to a sequential scan with early
/// exit.
class PopulateEngine {
 public:
  /// `base` must outlive the engine.
  explicit PopulateEngine(const EnumTable& base) : base_(&base) {}

  /// Builds sorted indexes over the given tags (tags absent from the base
  /// table are reported as NotFound). Replaces any previous index set.
  Status BuildIndexes(const std::vector<sage::TagId>& tags);

  size_t NumIndexes() const { return indexes_.size(); }

  /// Execution statistics of one populate() call, for the Table 3.2
  /// benchmark.
  struct Stats {
    size_t conditions = 0;             // p: SUMY rows
    size_t index_hits = 0;             // w: conditions served by an index
    size_t candidates_after_index = 0; // rows surviving index intersection
    size_t values_checked = 0;         // cell comparisons performed
  };

  /// How candidate rows are verified against the unindexed conditions.
  enum class ScanMode {
    /// Stop at the first failing condition. The natural in-memory mode.
    kEarlyExit,
    /// Evaluate every condition for every candidate — emulating the
    /// paged row store of the thesis's host DBMS, where fetching a tuple
    /// costs the whole tuple regardless of which condition fails. The
    /// Table 3.2 benchmark uses this mode so the time-saved-per-index-hit
    /// measurement reflects the thesis's cost model.
    kFullRow,
  };

  /// Runs populate(SUMY, base) producing an ENUM table named `out_name`
  /// whose columns are the SUMY's tags. A SUMY tag missing from the base
  /// table is treated as holding level 0 in every library (the absent-tag
  /// convention), so its condition reduces to "min <= 0 <= max".
  Result<EnumTable> Populate(const SumyTable& sumy,
                             const std::string& out_name,
                             Stats* stats = nullptr,
                             ScanMode mode = ScanMode::kEarlyExit) const;

 private:
  // One per-tag sorted index: (value, library row) pairs ascending.
  struct TagIndex {
    size_t column = 0;
    std::vector<std::pair<double, size_t>> entries;

    // Rows with value in [lo, hi].
    void Lookup(double lo, double hi, std::vector<size_t>* out) const;
    size_t Count(double lo, double hi) const;
  };

  const EnumTable* base_;
  std::map<sage::TagId, TagIndex> indexes_;
};

}  // namespace gea::core

#endif  // GEA_CORE_POPULATE_H_
