#include "core/serialization.h"

#include <algorithm>

namespace gea::core {

namespace {

Result<size_t> RequireColumn(const rel::Table& table,
                             const std::string& name,
                             rel::ValueType type) {
  GEA_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
  if (table.schema().column(idx).type != type) {
    return Status::InvalidArgument(
        "column '" + name + "' of table " + table.name() + " has type " +
        rel::ValueTypeName(table.schema().column(idx).type) + ", expected " +
        rel::ValueTypeName(type));
  }
  return idx;
}

Result<double> NumericCell(const rel::Value& v, const char* what) {
  if (v.is_null() || !v.IsNumeric()) {
    return Status::InvalidArgument(std::string("non-numeric ") + what);
  }
  return v.AsNumeric();
}

}  // namespace

Result<SumyTable> SumyFromRelTable(const rel::Table& table,
                                   const std::string& name) {
  GEA_ASSIGN_OR_RETURN(size_t tagno,
                       RequireColumn(table, "TagNo", rel::ValueType::kInt));
  GEA_ASSIGN_OR_RETURN(size_t min_col,
                       RequireColumn(table, "Min", rel::ValueType::kDouble));
  GEA_ASSIGN_OR_RETURN(size_t max_col,
                       RequireColumn(table, "Max", rel::ValueType::kDouble));
  GEA_ASSIGN_OR_RETURN(
      size_t avg_col,
      RequireColumn(table, "Average", rel::ValueType::kDouble));
  GEA_ASSIGN_OR_RETURN(
      size_t dev_col,
      RequireColumn(table, "StdDev", rel::ValueType::kDouble));

  std::vector<SumyEntry> entries;
  entries.reserve(table.NumRows());
  for (size_t r1_ = 0; r1_ < table.NumRows(); ++r1_) {
    const rel::Row row = table.GetRow(r1_);
    SumyEntry e;
    if (row[tagno].is_null()) {
      return Status::InvalidArgument("null TagNo in SUMY table");
    }
    int64_t tag = row[tagno].AsInt();
    if (tag < 0 || tag >= static_cast<int64_t>(sage::kNumPossibleTags)) {
      return Status::InvalidArgument("TagNo out of range: " +
                                     std::to_string(tag));
    }
    e.tag = static_cast<sage::TagId>(tag);
    GEA_ASSIGN_OR_RETURN(e.min, NumericCell(row[min_col], "Min"));
    GEA_ASSIGN_OR_RETURN(e.max, NumericCell(row[max_col], "Max"));
    GEA_ASSIGN_OR_RETURN(e.mean, NumericCell(row[avg_col], "Average"));
    GEA_ASSIGN_OR_RETURN(e.stddev, NumericCell(row[dev_col], "StdDev"));
    entries.push_back(e);
  }
  return SumyTable::Create(name, std::move(entries));
}

Result<GapTable> GapFromRelTable(const rel::Table& table,
                                 const std::string& name) {
  GEA_ASSIGN_OR_RETURN(size_t tagno,
                       RequireColumn(table, "TagNo", rel::ValueType::kInt));
  // Gap columns: every double column other than the two fixed ones.
  std::vector<size_t> gap_cols;
  std::vector<std::string> gap_names;
  for (size_t c = 0; c < table.schema().NumColumns(); ++c) {
    const rel::ColumnDef& def = table.schema().column(c);
    if (def.name == "TagName" || def.name == "TagNo") continue;
    if (def.type != rel::ValueType::kDouble) {
      return Status::InvalidArgument("unexpected non-double column in GAP "
                                     "table: " +
                                     def.name);
    }
    gap_cols.push_back(c);
    gap_names.push_back(def.name);
  }
  if (gap_cols.empty()) {
    return Status::InvalidArgument("GAP table has no gap columns");
  }

  std::vector<GapEntry> entries;
  entries.reserve(table.NumRows());
  for (size_t r2_ = 0; r2_ < table.NumRows(); ++r2_) {
    const rel::Row row = table.GetRow(r2_);
    GapEntry e;
    if (row[tagno].is_null()) {
      return Status::InvalidArgument("null TagNo in GAP table");
    }
    int64_t tag = row[tagno].AsInt();
    if (tag < 0 || tag >= static_cast<int64_t>(sage::kNumPossibleTags)) {
      return Status::InvalidArgument("TagNo out of range: " +
                                     std::to_string(tag));
    }
    e.tag = static_cast<sage::TagId>(tag);
    for (size_t c : gap_cols) {
      if (row[c].is_null()) {
        e.gaps.push_back(std::nullopt);
      } else {
        e.gaps.push_back(row[c].AsNumeric());
      }
    }
    entries.push_back(std::move(e));
  }
  return GapTable::Create(name, std::move(gap_names), std::move(entries));
}

rel::Table EnumLibrariesToRelTable(const EnumTable& table,
                                   const std::string& out_name) {
  rel::Schema schema({{"Lib_ID", rel::ValueType::kInt},
                      {"Lib_Name", rel::ValueType::kString},
                      {"Type", rel::ValueType::kString},
                      {"CAN_NOR", rel::ValueType::kString},
                      {"BT_CL", rel::ValueType::kString}});
  rel::Table out(out_name, schema);
  for (const sage::LibraryMeta& lib : table.libraries()) {
    out.AppendRowUnchecked(
        {rel::Value::Int(lib.id), rel::Value::String(lib.name),
         rel::Value::String(sage::TissueTypeName(lib.tissue)),
         rel::Value::String(sage::NeoplasticStateName(lib.state)),
         rel::Value::String(sage::TissueSourceName(lib.source))});
  }
  return out;
}

Result<EnumTable> EnumFromRelTables(const rel::Table& data,
                                    const rel::Table& libraries,
                                    const std::string& name) {
  GEA_ASSIGN_OR_RETURN(size_t tagno,
                       RequireColumn(data, "TagNo", rel::ValueType::kInt));
  GEA_ASSIGN_OR_RETURN(size_t id_col,
                       RequireColumn(libraries, "Lib_ID",
                                     rel::ValueType::kInt));
  GEA_ASSIGN_OR_RETURN(size_t name_col,
                       RequireColumn(libraries, "Lib_Name",
                                     rel::ValueType::kString));
  GEA_ASSIGN_OR_RETURN(size_t type_col,
                       RequireColumn(libraries, "Type",
                                     rel::ValueType::kString));
  GEA_ASSIGN_OR_RETURN(size_t state_col,
                       RequireColumn(libraries, "CAN_NOR",
                                     rel::ValueType::kString));
  GEA_ASSIGN_OR_RETURN(size_t source_col,
                       RequireColumn(libraries, "BT_CL",
                                     rel::ValueType::kString));

  // Rebuild the library metadata and locate each library's data column.
  std::vector<sage::LibraryMeta> metas;
  std::vector<size_t> data_cols;
  for (size_t r3_ = 0; r3_ < libraries.NumRows(); ++r3_) {
    const rel::Row row = libraries.GetRow(r3_);
    sage::LibraryMeta meta;
    meta.id = static_cast<int>(row[id_col].AsInt());
    meta.name = row[name_col].AsString();
    GEA_ASSIGN_OR_RETURN(meta.tissue,
                         sage::ParseTissueType(row[type_col].AsString()));
    const std::string& state = row[state_col].AsString();
    if (state == "cancer") {
      meta.state = sage::NeoplasticState::kCancer;
    } else if (state == "normal") {
      meta.state = sage::NeoplasticState::kNormal;
    } else {
      return Status::InvalidArgument("bad CAN_NOR value: " + state);
    }
    const std::string& source = row[source_col].AsString();
    if (source == "bulk_tissue") {
      meta.source = sage::TissueSource::kBulkTissue;
    } else if (source == "cell_line") {
      meta.source = sage::TissueSource::kCellLine;
    } else {
      return Status::InvalidArgument("bad BT_CL value: " + source);
    }
    GEA_ASSIGN_OR_RETURN(size_t col, data.schema().ColumnIndex(meta.name));
    metas.push_back(std::move(meta));
    data_cols.push_back(col);
  }

  // Tags must come out sorted; the rotated export writes them sorted, but
  // sort defensively by building (tag, row-index) pairs.
  std::vector<std::pair<sage::TagId, size_t>> tag_rows;
  tag_rows.reserve(data.NumRows());
  for (size_t r = 0; r < data.NumRows(); ++r) {
    int64_t tag = data.At(r, tagno).AsInt();
    if (tag < 0 || tag >= static_cast<int64_t>(sage::kNumPossibleTags)) {
      return Status::InvalidArgument("TagNo out of range: " +
                                     std::to_string(tag));
    }
    tag_rows.emplace_back(static_cast<sage::TagId>(tag), r);
  }
  std::sort(tag_rows.begin(), tag_rows.end());

  std::vector<sage::TagId> tags;
  tags.reserve(tag_rows.size());
  for (const auto& [tag, r] : tag_rows) tags.push_back(tag);

  std::vector<double> values(metas.size() * tags.size(), 0.0);
  for (size_t t = 0; t < tag_rows.size(); ++t) {
    const size_t src_row = tag_rows[t].second;
    for (size_t lib = 0; lib < metas.size(); ++lib) {
      const rel::Value v = data.At(src_row, data_cols[lib]);
      values[lib * tags.size() + t] = v.is_null() ? 0.0 : v.AsNumeric();
    }
  }
  return EnumTable::FromRows(name, std::move(metas), std::move(tags),
                             std::move(values));
}

}  // namespace gea::core
