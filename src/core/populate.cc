#include "core/populate.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

void PopulateEngine::TagIndex::Lookup(double lo, double hi,
                                      std::vector<size_t>* out) const {
  auto begin = std::lower_bound(
      entries.begin(), entries.end(), lo,
      [](const std::pair<double, size_t>& e, double v) { return e.first < v; });
  for (auto it = begin; it != entries.end() && it->first <= hi; ++it) {
    out->push_back(it->second);
  }
}

size_t PopulateEngine::TagIndex::Count(double lo, double hi) const {
  auto begin = std::lower_bound(
      entries.begin(), entries.end(), lo,
      [](const std::pair<double, size_t>& e, double v) { return e.first < v; });
  auto end = std::upper_bound(
      entries.begin(), entries.end(), hi,
      [](double v, const std::pair<double, size_t>& e) { return v < e.first; });
  return end > begin ? static_cast<size_t>(end - begin) : 0;
}

Status PopulateEngine::BuildIndexes(const std::vector<sage::TagId>& tags) {
  std::map<sage::TagId, TagIndex> built;
  for (sage::TagId tag : tags) {
    std::optional<size_t> col = base_->FindTagColumn(tag);
    if (!col.has_value()) {
      return Status::NotFound("cannot index tag absent from base table: " +
                              sage::TagLabel(tag));
    }
    TagIndex index;
    index.column = *col;
    index.entries.reserve(base_->NumLibraries());
    for (size_t row = 0; row < base_->NumLibraries(); ++row) {
      index.entries.emplace_back(base_->ValueAt(row, *col), row);
    }
    std::sort(index.entries.begin(), index.entries.end());
    built.emplace(tag, std::move(index));
  }
  indexes_ = std::move(built);
  return Status::OK();
}

Result<EnumTable> PopulateEngine::Populate(const SumyTable& sumy,
                                           const std::string& out_name,
                                           Stats* stats,
                                           ScanMode mode) const {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.populate.calls");
  static obs::Counter& conditions_counter =
      obs::MetricsRegistry::Global().GetCounter("gea.populate.conditions");
  static obs::Counter& index_hits_counter =
      obs::MetricsRegistry::Global().GetCounter("gea.populate.index_hits");
  static obs::Counter& candidates_verified =
      obs::MetricsRegistry::Global().GetCounter(
          "gea.populate.candidates_verified");
  static obs::Counter& values_checked_counter =
      obs::MetricsRegistry::Global().GetCounter("gea.populate.values_checked");
  static obs::Counter& rows_materialized =
      obs::MetricsRegistry::Global().GetCounter(
          "gea.populate.rows_materialized");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("gea.populate.nanos");
  obs::TraceSpan span("populate");
  obs::ScopedLatency timer(latency);
  calls.Add();

  Stats local;
  local.conditions = sumy.NumTags();
  conditions_counter.Add(sumy.NumTags());

  // Partition the conditions into indexed and unindexed; estimate
  // selectivity of the indexed ones so the intersection starts with the
  // most selective index.
  struct IndexedCondition {
    const TagIndex* index;
    double lo;
    double hi;
    size_t estimated;
  };
  std::vector<IndexedCondition> indexed;
  struct ScanCondition {
    // Column in the base table, or nullopt when the SUMY tag is absent
    // from the base (the condition then tests the implicit level 0).
    std::optional<size_t> column;
    double lo;
    double hi;
  };
  std::vector<ScanCondition> scans;
  scans.reserve(sumy.NumTags());

  // Resolve every SUMY tag to its base column in one merge pass (both
  // sides are sorted by tag); with p in the tens of thousands this beats
  // per-tag binary searches.
  std::vector<std::optional<size_t>> sumy_columns(sumy.NumTags());
  {
    const std::vector<sage::TagId>& base_tags = base_->tags();
    size_t col = 0;
    for (size_t i = 0; i < sumy.NumTags(); ++i) {
      sage::TagId tag = sumy.entry(i).tag;
      while (col < base_tags.size() && base_tags[col] < tag) ++col;
      if (col < base_tags.size() && base_tags[col] == tag) {
        sumy_columns[i] = col;
      }
    }
  }

  for (size_t i = 0; i < sumy.NumTags(); ++i) {
    const SumyEntry& e = sumy.entry(i);
    auto it = indexes_.empty() ? indexes_.end() : indexes_.find(e.tag);
    if (it != indexes_.end()) {
      indexed.push_back({&it->second, e.min, e.max,
                         it->second.Count(e.min, e.max)});
    } else {
      scans.push_back({sumy_columns[i], e.min, e.max});
    }
  }
  local.index_hits = indexed.size();
  std::sort(indexed.begin(), indexed.end(),
            [](const IndexedCondition& a, const IndexedCondition& b) {
              return a.estimated < b.estimated;
            });

  index_hits_counter.Add(local.index_hits);

  // Candidate set: intersection of the indexed conditions' row sets, or
  // all rows when no index applies (sequential scan).
  std::vector<size_t> candidates;
  {
    obs::TraceSpan intersect_span("populate.index_intersect");
    if (indexed.empty()) {
      candidates.resize(base_->NumLibraries());
      for (size_t r = 0; r < candidates.size(); ++r) candidates[r] = r;
    } else {
      indexed.front().index->Lookup(indexed.front().lo, indexed.front().hi,
                                    &candidates);
      std::sort(candidates.begin(), candidates.end());
      for (size_t c = 1; c < indexed.size() && !candidates.empty(); ++c) {
        std::vector<size_t> hits;
        indexed[c].index->Lookup(indexed[c].lo, indexed[c].hi, &hits);
        std::sort(hits.begin(), hits.end());
        std::vector<size_t> merged;
        std::set_intersection(candidates.begin(), candidates.end(),
                              hits.begin(), hits.end(),
                              std::back_inserter(merged));
        candidates = std::move(merged);
      }
    }
  }
  local.candidates_after_index = candidates.size();
  candidates_verified.Add(candidates.size());

  // Verify the remaining (unindexed) conditions on each candidate. The
  // per-library membership tests are independent, so the candidate list is
  // partitioned across the shared pool; each chunk fills a disjoint slice
  // of the verdict vector and the qualifying list is collected serially in
  // candidate order, keeping the output identical to the serial scan.
  std::vector<char> qualifies(candidates.size(), 0);
  std::atomic<size_t> values_checked{0};
  {
    obs::TraceSpan verify_span("populate.verify");
    ParallelFor(0, candidates.size(), 256, [&](size_t begin, size_t end) {
      size_t checked = 0;
      for (size_t i = begin; i < end; ++i) {
        const size_t row = candidates[i];
        bool ok = true;
        for (const ScanCondition& cond : scans) {
          ++checked;
          double v = cond.column.has_value()
                         ? base_->ValueAt(row, *cond.column)
                         : 0.0;
          if (v < cond.lo || v > cond.hi) {
            ok = false;
            if (mode == ScanMode::kEarlyExit) break;
          }
        }
        qualifies[i] = ok ? 1 : 0;
      }
      values_checked.fetch_add(checked, std::memory_order_relaxed);
    });
  }
  local.values_checked = values_checked.load(std::memory_order_relaxed);
  values_checked_counter.Add(local.values_checked);
  std::vector<size_t> qualifying;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (qualifies[i]) qualifying.push_back(candidates[i]);
  }

  // Materialize the result ENUM over the SUMY's tags.
  std::vector<sage::TagId> out_tags;
  out_tags.reserve(sumy.NumTags());
  for (const SumyEntry& e : sumy.entries()) out_tags.push_back(e.tag);
  std::vector<sage::LibraryMeta> out_libs;
  out_libs.reserve(qualifying.size());
  for (size_t row : qualifying) out_libs.push_back(base_->library(row));
  // Gather the result matrix in parallel: qualifying row i owns the
  // disjoint slice [i * tags, (i+1) * tags) of the output.
  std::vector<double> out_values(qualifying.size() * out_tags.size());
  {
    obs::TraceSpan materialize_span("populate.materialize");
    ParallelFor(0, qualifying.size(), 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const size_t row = qualifying[i];
        double* out = out_values.data() + i * sumy_columns.size();
        for (const std::optional<size_t>& col : sumy_columns) {
          *out++ = col.has_value() ? base_->ValueAt(row, *col) : 0.0;
        }
      }
    });
  }
  rows_materialized.Add(qualifying.size());
  if (stats != nullptr) *stats = local;
  return EnumTable::FromRows(out_name, std::move(out_libs),
                             std::move(out_tags), std::move(out_values));
}

}  // namespace gea::core
