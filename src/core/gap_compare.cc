#include "core/gap_compare.h"

#include "core/gap_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::core {

const char* GapCompareKindName(GapCompareKind kind) {
  switch (kind) {
    case GapCompareKind::kUnion:
      return "union";
    case GapCompareKind::kIntersect:
      return "intersect";
    case GapCompareKind::kDifference:
      return "difference";
  }
  return "?";
}

Result<GapTable> CompareGaps(const GapTable& gap_a, const GapTable& gap_b,
                             GapCompareKind kind,
                             const std::string& out_name) {
  if (gap_a.NumColumns() != 1 || gap_b.NumColumns() != 1) {
    return Status::InvalidArgument(
        "gap comparison expects single-column GAP tables");
  }
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.compare.calls");
  obs::TraceSpan span("gap.compare");
  calls.Add();
  // Rename columns so the combined table reads GapA / GapB; a column-name
  // swap is metadata-only, the tag/value/valid vectors are shared copies.
  GapTable named_a = gap_a.WithColumnNames({"GapA"});
  GapTable named_b = gap_b.WithColumnNames({"GapB"});
  switch (kind) {
    case GapCompareKind::kUnion:
      return GapUnion(named_a, named_b, out_name);
    case GapCompareKind::kIntersect:
      return GapIntersect(named_a, named_b, out_name);
    case GapCompareKind::kDifference:
      return GapMinus(named_a, named_b, out_name);
  }
  return Status::InvalidArgument("unknown comparison kind");
}

const char* GapCompareQueryDescription(GapCompareQuery query) {
  switch (query) {
    case GapCompareQuery::kHigherInAInBoth:
      return "tags always have higher expression values in SUMYa in both "
             "GAP tables";
    case GapCompareQuery::kLowerInAInBoth:
      return "tags always have lower expression values in SUMYa in both "
             "GAP tables";
    case GapCompareQuery::kHigherInBInBoth:
      return "tags always have higher expression values in SUMYb in both "
             "GAP tables";
    case GapCompareQuery::kLowerInBInBoth:
      return "tags always have lower expression values in SUMYb in both "
             "GAP tables";
    case GapCompareQuery::kNonNullInBoth:
      return "all tags have non-null gap values in both GAP tables";
    case GapCompareQuery::kHigherInAOfAOnly:
      return "tags have higher expression in SUMYa of GAPa, not in SUMYa "
             "of GAPb";
    case GapCompareQuery::kLowerInAOfAOnly:
      return "tags have lower expression in SUMYa of GAPa, not in SUMYa "
             "of GAPb";
    case GapCompareQuery::kHigherInBOfAOnly:
      return "tags have higher expression in SUMYb of GAPa, not in SUMYb "
             "of GAPb";
    case GapCompareQuery::kLowerInBOfAOnly:
      return "tags have lower expression in SUMYb of GAPa, not in SUMYb "
             "of GAPb";
    case GapCompareQuery::kHigherInAOfBOnly:
      return "tags have higher expression in SUMYa of GAPb, not in SUMYa "
             "of GAPa";
    case GapCompareQuery::kLowerInAOfBOnly:
      return "tags have lower expression in SUMYa of GAPb, not in SUMYa "
             "of GAPa";
    case GapCompareQuery::kHigherInBOfBOnly:
      return "tags have higher expression in SUMYb of GAPb, not in SUMYb "
             "of GAPa";
    case GapCompareQuery::kLowerInBOfBOnly:
      return "tags have lower expression in SUMYb of GAPb, not in SUMYb "
             "of GAPa";
  }
  return "?";
}

namespace {

bool Positive(const std::optional<double>& g) {
  return g.has_value() && *g > 0.0;
}
bool Negative(const std::optional<double>& g) {
  return g.has_value() && *g < 0.0;
}

}  // namespace

Result<GapTable> ApplyGapQuery(const GapTable& compared,
                               GapCompareQuery query,
                               const std::string& out_name) {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("gea.gap.query.calls");
  obs::TraceSpan span("gap.query");
  calls.Add();
  const bool single_column = compared.NumColumns() < 2;
  if (single_column && query > GapCompareQuery::kNonNullInBoth) {
    return Status::FailedPrecondition(
        "queries 6-13 require a two-column compared GAP table (union or "
        "intersect output); got " +
        std::to_string(compared.NumColumns()) + " column(s)");
  }
  auto pred = [query, single_column](const GapEntry& e) {
    // On a difference output there is only GapA; queries 1-5 degenerate
    // to their GapA condition (the Fig. 4.14 usage).
    const std::optional<double>& a = e.gaps[0];
    const std::optional<double>& b = single_column ? e.gaps[0] : e.gaps[1];
    switch (query) {
      case GapCompareQuery::kHigherInAInBoth:
      case GapCompareQuery::kLowerInBInBoth:
        return Positive(a) && Positive(b);
      case GapCompareQuery::kLowerInAInBoth:
      case GapCompareQuery::kHigherInBInBoth:
        return Negative(a) && Negative(b);
      case GapCompareQuery::kNonNullInBoth:
        return a.has_value() && b.has_value();
      case GapCompareQuery::kHigherInAOfAOnly:
      case GapCompareQuery::kLowerInBOfAOnly:
        return Positive(a) && !Positive(b);
      case GapCompareQuery::kLowerInAOfAOnly:
      case GapCompareQuery::kHigherInBOfAOnly:
        return Negative(a) && !Negative(b);
      case GapCompareQuery::kHigherInAOfBOnly:
      case GapCompareQuery::kLowerInBOfBOnly:
        return Positive(b) && !Positive(a);
      case GapCompareQuery::kLowerInAOfBOnly:
      case GapCompareQuery::kHigherInBOfBOnly:
        return Negative(b) && !Negative(a);
    }
    return false;
  };
  return SelectGap(compared, pred, out_name);
}

}  // namespace gea::core
