// Case study 1 & 2 (Sections 4.3.1-4.3.2), end to end, through the
// workbench session — the exact step sequence of Section 4.3.1.1:
//
//   1. E_brain = sigma_{tissueType='brain'}(SAGE)
//   2. SUMY1   = mine(E_brain, fascicle)
//   3. ENUM1   = populate(SUMY1, E_brain)
//   4. ENUM2   = sigma_{cancer}(E_brain) - ENUM1;  ENUM3 = sigma_{normal}
//   5. SUMY2/3 = aggregate(ENUM2/3)
//   6. GAP1    = diff(SUMY1, SUMY3);  GAP2 = diff(SUMY1, SUMY2)
//   7. remove overlapping (null) gaps, sort, report
//
// plus the Case 5 verification (redo with a user-defined data set) and a
// Fig. 4.10-style per-tag distribution listing.
//
// Run:  ./case_study_brain

#include <cstdio>
#include <cstdlib>

#include "core/populate.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "workbench/session.h"

namespace {

void Check(const gea::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(gea::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

// Prints a Fig. 4.10-style listing: one tag's expression level in every
// library of the brain data set, grouped by role.
void PlotTagDistribution(const gea::core::EnumTable& brain,
                         const gea::core::EnumTable& fascicle,
                         gea::sage::TagId tag) {
  std::printf("\nDistribution of %s across brain libraries:\n",
              gea::sage::TagLabel(tag).c_str());
  std::optional<size_t> col = brain.FindTagColumn(tag);
  if (!col.has_value()) {
    std::printf("  (tag not present)\n");
    return;
  }
  for (size_t row = 0; row < brain.NumLibraries(); ++row) {
    const gea::sage::LibraryMeta& lib = brain.library(row);
    const char* group =
        fascicle.FindLibraryRow(lib.id).has_value() ? "cancer-in-fascicle"
        : lib.state == gea::sage::NeoplasticState::kCancer
            ? "cancer-not-in-fascicle"
            : "normal";
    std::printf("  %-28s %-22s %10.1f\n", lib.name.c_str(), group,
                brain.ValueAt(row, *col));
  }
}

}  // namespace

int main() {
  using namespace gea;
  using workbench::AccessLevel;
  using workbench::AnalysisSession;

  // ---- Setup: login, load cleaned data (Appendix III). ----
  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleaningStats stats = sage::CleanAndNormalize(synth.dataset);

  AnalysisSession session("admin", "secret");
  Check(session.Login("admin", "secret", AccessLevel::kAdministrator));
  Check(session.LoadDataSet(synth.dataset));
  std::printf("logged in as %s; cleaning: %s\n",
              CheckResult(session.CurrentUser()).c_str(),
              stats.ToString().c_str());

  // ---- Step 1: the brain tissue data set (Fig. 4.4). The underlying
  // relational selection is also available as plain SQL over the
  // auxiliary relations. ----
  rel::Table brains = CheckResult(session.Query(
      "SELECT Lib_Name, CAN_NOR FROM Libraries WHERE Type = 'brain' "
      "ORDER BY Lib_Name"));
  std::printf("sigma_{Type='brain'}(Libraries) matches %zu libraries\n",
              brains.NumRows());
  Check(session.CreateTissueDataSet(sage::TissueType::kBrain));
  const core::EnumTable* brain = CheckResult(session.GetEnum("brain"));
  std::printf("step 1: E_brain has %zu libraries x %zu tags\n",
              brain->NumLibraries(), brain->NumTags());

  // ---- Step 2: metadata (Fig. 4.5) + fascicles (Fig. 4.6). ----
  Check(session.GenerateMetadata("brain", 25.0, "brainfile.meta"));
  std::vector<std::string> fascicles = CheckResult(session.CalculateFascicles(
      "brain", "brainfile.meta", /*min_compact_tags=*/150, /*batch_size=*/6,
      /*min_size=*/3, "brain25k"));
  std::printf("step 2: mined %zu fascicles\n", fascicles.size());

  // ---- Purity check (Figs. 4.7-4.8): pick a pure cancer fascicle. ----
  std::string chosen;
  for (const std::string& name : fascicles) {
    std::vector<core::PurityProperty> purity =
        CheckResult(session.CheckPurity(name));
    for (core::PurityProperty p : purity) {
      if (p == core::PurityProperty::kCancer) chosen = name;
    }
    if (!chosen.empty()) break;
  }
  if (chosen.empty()) {
    std::fprintf(stderr, "no pure cancer fascicle\n");
    return 1;
  }
  const core::EnumTable* fascicle = CheckResult(session.GetEnum(chosen));
  std::printf("purity check: the fascicle %s IS pure (cancer), members:\n",
              chosen.c_str());
  for (const sage::LibraryMeta& lib : fascicle->libraries()) {
    std::printf("  %s\n", lib.name.c_str());
  }

  // ---- Step 3 (the populate view): ENUM1 = populate(SUMY1, E_brain). ----
  const core::SumyTable* sumy1 = CheckResult(session.GetSumy(chosen + "_SUMY"));
  core::PopulateEngine engine(*brain);
  core::PopulateEngine::Stats pstats;
  core::EnumTable enum1 =
      CheckResult(engine.Populate(*sumy1, chosen + "_ENUM1", &pstats));
  std::printf(
      "step 3: populate over %zu range conditions matched %zu libraries\n",
      pstats.conditions, enum1.NumLibraries());

  // ---- Steps 4-5: control groups (the formSUM macro of Fig. 4.8). ----
  AnalysisSession::ControlGroups groups =
      CheckResult(session.FormControlGroups("brain", chosen));
  std::printf("steps 4-5: SUMY tables %s / %s / %s\n",
              groups.fascicle_sumy.c_str(), groups.not_in_fas_sumy.c_str(),
              groups.opposite_sumy.c_str());

  // ---- Step 6: GAP1 = diff(SUMY1, SUMY3) — Case 1 (Fig. 4.9). ----
  Check(session.CreateGap(groups.fascicle_sumy, groups.opposite_sumy,
                          "brain25k_canvsnor_gap"));
  std::string top1 =
      CheckResult(session.CalculateTopGap("brain25k_canvsnor_gap", 10));
  std::printf("\nCase 1 — cancer-in-fascicle vs normal, top gaps (%s):\n",
              top1.c_str());
  const core::GapTable* top_gap1 = CheckResult(session.GetGap(top1));
  for (const std::string& line : core::RenderGapList(*top_gap1, 10)) {
    std::printf("  %s\n", line.c_str());
  }

  // ---- Case 2: GAP2 = diff(SUMY1, SUMY2) (Fig. 4.12). ----
  Check(session.CreateGap(groups.fascicle_sumy, groups.not_in_fas_sumy,
                          "brain25k_canvscnif_gap"));
  std::string top2 =
      CheckResult(session.CalculateTopGap("brain25k_canvscnif_gap", 10));
  std::printf(
      "\nCase 2 — cancer inside vs outside the fascicle, top gaps (%s):\n",
      top2.c_str());
  const core::GapTable* top_gap2 = CheckResult(session.GetGap(top2));
  for (const std::string& line : core::RenderGapList(*top_gap2, 10)) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf(
      "\n(as in Section 4.3.2, the inside-vs-outside gaps run smaller than\n"
      "the cancer-vs-normal gaps: the two cancer groups resemble each\n"
      "other more than they resemble normal tissue)\n");

  // ---- Fig. 4.10: the distribution of the top tag. ----
  if (top_gap1->NumTags() > 0) {
    PlotTagDistribution(*brain, *fascicle, top_gap1->entry(0).tag);
  }

  // ---- Case 5: verification with a user-defined data set (Fig. 4.15).
  std::vector<int> kept;
  for (const sage::LibraryMeta& lib : brain->libraries()) {
    kept.push_back(lib.id);
  }
  kept.pop_back();
  Check(session.CreateCustomDataSet("newBrain", kept));
  std::printf(
      "\nCase 5: user-defined data set 'newBrain' with %zu libraries "
      "created;\nre-run any of the steps above against it to verify the "
      "findings.\n",
      kept.size());

  // ---- The lineage view (Fig. 4.18). ----
  Check(session.CommentOn(chosen,
                          "The compact tags in this fascicle are very "
                          "interesting"));
  lineage::LineageGraph::NodeId node = CheckResult(
      session.Lineage().FindByName("brain25k_canvsnor_gap"));
  std::printf("\nLineage of brain25k_canvsnor_gap:\n");
  const lineage::LineageGraph::Node* gap_node =
      CheckResult(session.Lineage().GetNode(node));
  std::printf("  operation: %s\n", gap_node->operation.c_str());
  for (const auto& [key, value] : gap_node->parameters) {
    std::printf("  %s = %s\n", key.c_str(), value.c_str());
  }
  std::printf("  subtree:\n%s",
              CheckResult(session.Lineage().RenderTree(node)).c_str());
  return 0;
}
