// Case studies 3 & 4 (Sections 4.3.3-4.3.4): multi-tissue screens.
//
// Case 3 builds a cancer-vs-normal GAP table per tissue type, intersects
// them, and runs comparison query 2 to find the genes that are *always*
// expressed lower in cancer than in normal tissue — candidate pan-cancer
// drug targets (Fig. 4.13).
//
// Case 4 takes the set difference of two tissues' GAP tables to find the
// genes whose cancer deregulation is *unique* to one tissue (Fig. 4.14).
//
// Run:  ./multi_tissue_screen

#include <cstdio>
#include <cstdlib>

#include "core/gap_compare.h"
#include "core/gap_ops.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "workbench/session.h"

namespace {

void Check(const gea::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(gea::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

// Runs the Section 4.3.1 pipeline for one tissue and leaves a
// "<tissue>_canvsnor_gap" table in the session. Returns the gap name.
std::string BuildCancerVsNormalGap(gea::workbench::AnalysisSession& session,
                                   gea::sage::TissueType tissue) {
  using namespace gea;
  const std::string name = sage::TissueTypeName(tissue);
  Check(session.CreateTissueDataSet(tissue));
  Check(session.GenerateMetadata(name, 25.0, name + ".meta"));
  std::vector<std::string> fascicles = CheckResult(session.CalculateFascicles(
      name, name + ".meta", /*min_compact_tags=*/150, /*batch_size=*/6,
      /*min_size=*/3, name + "25k"));
  std::string chosen;
  for (const std::string& fas : fascicles) {
    std::vector<core::PurityProperty> purity =
        CheckResult(session.CheckPurity(fas));
    for (core::PurityProperty p : purity) {
      if (p == core::PurityProperty::kCancer) chosen = fas;
    }
    if (!chosen.empty()) break;
  }
  if (chosen.empty()) {
    std::fprintf(stderr, "%s: no pure cancer fascicle\n", name.c_str());
    std::exit(1);
  }
  workbench::AnalysisSession::ControlGroups groups =
      CheckResult(session.FormControlGroups(name, chosen));
  const std::string gap_name = name + "_canvsnor_gap";
  Check(session.CreateGap(groups.fascicle_sumy, groups.opposite_sumy,
                          gap_name));
  const core::GapTable* gap = CheckResult(session.GetGap(gap_name));
  std::printf("%-8s fascicle %-12s -> GAP %-22s (%zu tags)\n", name.c_str(),
              chosen.c_str(), gap_name.c_str(), gap->NumTags());
  return gap_name;
}

void PrintGapTable(const gea::core::GapTable& table, size_t max_lines) {
  for (const std::string& line : gea::core::RenderGapList(table, max_lines)) {
    std::printf("  %s\n", line.c_str());
  }
  if (table.NumTags() > max_lines) {
    std::printf("  ... (%zu more)\n", table.NumTags() - max_lines);
  }
}

}  // namespace

int main() {
  using namespace gea;
  using workbench::AccessLevel;
  using workbench::AnalysisSession;
  using core::GapCompareKind;
  using core::GapCompareQuery;

  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);

  AnalysisSession session("admin", "secret");
  Check(session.Login("admin", "secret", AccessLevel::kAdministrator));
  Check(session.LoadDataSet(synth.dataset));

  std::printf("== building per-tissue cancer-vs-normal GAP tables ==\n");
  std::string brain_gap =
      BuildCancerVsNormalGap(session, sage::TissueType::kBrain);
  std::string breast_gap =
      BuildCancerVsNormalGap(session, sage::TissueType::kBreast);

  // ---- Case 3: intersection + query 2 (Fig. 4.13). ----
  Check(session.CompareGapTables(brain_gap, breast_gap,
                                 GapCompareKind::kIntersect,
                                 "brainBreastIntersect1"));
  Check(session.RunGapQuery("brainBreastIntersect1",
                            GapCompareQuery::kLowerInAInBoth,
                            "alwaysLowerInCancer"));
  const core::GapTable* lower =
      CheckResult(session.GetGap("alwaysLowerInCancer"));
  std::printf(
      "\nCase 3 (query 2): %zu tags always have LOWER expression in the\n"
      "cancer fascicle than in normal tissue, in BOTH brain and breast:\n",
      lower->NumTags());
  PrintGapTable(*lower, 12);

  Check(session.RunGapQuery("brainBreastIntersect1",
                            GapCompareQuery::kHigherInAInBoth,
                            "alwaysHigherInCancer"));
  const core::GapTable* higher =
      CheckResult(session.GetGap("alwaysHigherInCancer"));
  std::printf(
      "\nCase 3 (query 1): %zu tags always HIGHER in cancer in both tissue\n"
      "types (possible pan-cancer drug targets):\n",
      higher->NumTags());
  PrintGapTable(*higher, 12);

  // ---- Case 4: difference (Fig. 4.14). ----
  Check(session.CompareGapTables(brain_gap, breast_gap,
                                 GapCompareKind::kDifference,
                                 "brainBreastDiff1"));
  Check(session.RunGapQuery("brainBreastDiff1",
                            GapCompareQuery::kLowerInAInBoth,
                            "brainOnlyLowerInCancer"));
  const core::GapTable* unique =
      CheckResult(session.GetGap("brainOnlyLowerInCancer"));
  std::printf(
      "\nCase 4: %zu tags are silenced in brain cancer but show no such\n"
      "signal in breast at all (brain-unique deregulation):\n",
      unique->NumTags());
  PrintGapTable(*unique, 12);

  std::printf(
      "\nInterpretation: intersection surfaces pan-tissue cancer genes;\n"
      "difference surfaces genes whose deregulation is specific to one\n"
      "cancer type — \"different types of cancer possibly caused by\n"
      "different sets of genes\" (Section 4.3.4).\n");
  return 0;
}
