// Integrated genomic analysis (Section 5.2 + Fig. 4.22): start from the
// candidate tags a GEA screen produces, then walk the auxiliary genomic
// databases with join queries:
//
//   GeneRel = pi_gene  sigma (TagRel  |x| Unigene)     (5.2.1)
//   ProtRel = pi_seq   sigma (GeneRel |x| Swissprot)   (5.2.2)
//   ... then PFAM families, KEGG pathways, OMIM diseases and PUBMED
//   publications per gene.
//
// Run:  ./integrated_annotation

#include <cstdio>
#include <cstdlib>

#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_ops.h"
#include "core/operators.h"
#include "meta/annotate.h"
#include "meta/annotation.h"
#include "meta/eadb.h"
#include "sage/cleaning.h"
#include "sage/generator.h"

namespace {

void Check(const gea::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(gea::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace gea;

  // ---- A quick screen to get candidate tags (as in quickstart). ----
  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);

  core::EnumTable brain = core::EnumTable::FromDataSet(
      "brain", synth.dataset.FilterByTissue(sage::TissueType::kBrain));
  cluster::FascicleParams params;
  params.min_compact_tags = 150;
  params.tolerances = core::MakeToleranceMetadata(brain, 25.0);
  params.min_size = 3;
  std::vector<core::MinedFascicle> mined =
      CheckResult(core::Mine(brain, params, "brain25k"));
  const core::MinedFascicle* fascicle = nullptr;
  for (const core::MinedFascicle& m : mined) {
    if (core::IsPure(m.members, core::PurityProperty::kCancer)) {
      fascicle = &m;
      break;
    }
  }
  if (fascicle == nullptr) {
    std::fprintf(stderr, "no pure cancer fascicle\n");
    return 1;
  }
  core::EnumTable normals =
      CheckResult(
          brain.RestrictTags("brain_compact", fascicle->members.tags()))
          .FilterLibraries("normals", [](const sage::LibraryMeta& lib) {
            return lib.state == sage::NeoplasticState::kNormal;
          });
  core::SumyTable normal_sumy =
      CheckResult(core::Aggregate(normals, "normalTable"));
  core::GapTable gap =
      CheckResult(core::Diff(fascicle->sumy, normal_sumy, "gap"));
  core::GapTable top = CheckResult(
      core::TopGap(gap, 8, core::TopGapMode::kLargestMagnitude, "gap_8"));
  std::printf("screen produced %zu candidate tags\n", top.NumTags());

  // ---- The auxiliary databases (synthetic UNIGENE/SWISSPROT/...). ----
  meta::AnnotationConfig annotation_config;
  annotation_config.seed = 7;
  annotation_config.min_publications = 1;
  // Pin the Fig. 4.22 walkthrough gene onto the top candidate so the
  // printed report mirrors the thesis's example.
  if (top.NumTags() > 0) {
    annotation_config.pinned_genes[top.entry(0).tag] = "aldolase C";
  }
  meta::AnnotationDatabase db = meta::AnnotationDatabase::Generate(
      synth.dataset.TagUniverse(), annotation_config);
  meta::EadbSearch search(db);

  // ---- Pipeline step 1: GeneRel via the Unigene join (5.2.1). ----
  rel::Table tag_rel = top.ToRelTable();
  rel::Table gene_rel =
      CheckResult(meta::GeneRelFromTagRel(tag_rel, db.unigene(), "GeneRel"));
  std::printf("GeneRel: %zu genes for %zu candidate tags\n\n",
              gene_rel.NumRows(), top.NumTags());

  // ---- Pipeline step 2 + per-gene walkthrough (Fig. 4.22). ----
  rel::Table prot_rel = CheckResult(
      meta::ProtRelFromGeneRel(gene_rel, db.swissprot(), "ProtRel"));
  std::printf("ProtRel: %zu protein sequences\n\n", prot_rel.NumRows());

  for (size_t r1_ = 0; r1_ < gene_rel.NumRows(); ++r1_) {

    const rel::Row row = gene_rel.GetRow(r1_);
    const std::string& gene = row[0].AsString();
    std::printf("gene: %s\n", gene.c_str());
    Result<meta::ProteinRecord> protein = search.GeneToProtein(gene);
    if (protein.ok()) {
      std::printf("  protein:  %s\n", protein->protein.c_str());
      std::printf("  sequence: %.48s...\n", protein->sequence.c_str());
      Result<std::string> family = search.ProteinToFamily(protein->protein);
      if (family.ok()) {
        std::printf("  PFAM family: %s\n", family->c_str());
      }
    }
    for (const std::string& pathway : search.GeneToPathways(gene)) {
      std::printf("  KEGG pathway: %s\n", pathway.c_str());
    }
    for (const std::string& disease : search.GeneToDiseases(gene)) {
      std::printf("  OMIM disease: %s\n", disease.c_str());
    }
    for (const meta::Publication& pub : search.GeneToPublications(gene)) {
      std::printf("  PUBMED: %s (%s %d)\n", pub.title.c_str(),
                  pub.journal.c_str(), pub.year);
    }
    std::printf("\n");
  }

  // ---- The OMIM-style question of Section 5.2.6. ----
  std::printf("genes related to glioblastoma on any chromosome: %zu\n\n",
              search.GenesForDisease("glioblastoma").size());

  // ---- The one-call report: the whole candidate list annotated. ----
  rel::Table report =
      CheckResult(meta::AnnotateGapTable(top, db, "annotated_candidates"));
  std::printf("%s", report.ToText(10).c_str());
  return 0;
}
